//! Offline stub for `bytes`: the little-endian cursor methods
//! `serr-trace::encode` uses, over plain `Vec<u8>` storage.
//!
//! `Bytes`/`BytesMut` here are thin wrappers around `Vec<u8>` — no
//! refcounted buffer sharing — which matches how the workspace uses them
//! (build, freeze, read once).

use std::ops::Deref;

/// Read cursor over a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Current readable slice.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor by `n` bytes.
    ///
    /// # Panics
    ///
    /// Panics when fewer than `n` bytes remain — same contract as the real
    /// crate.
    fn advance(&mut self, n: usize);

    /// Copies `dst.len()` bytes out, advancing.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "buffer underflow");
        *self = &self[n..];
    }
}

/// Write cursor over a growable byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_u64_le(v.to_bits());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Immutable byte buffer (plain owned storage here).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(data.to_vec())
    }

    /// The contents as a `Vec`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(v)
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// New buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut(Vec::with_capacity(cap))
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }

    /// Current length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_little_endian_fields() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"MAGC");
        buf.put_u8(3);
        buf.put_u64_le(0x0102_0304_0506_0708);
        buf.put_f64_le(-0.5);
        let frozen = buf.freeze();
        let mut cur: &[u8] = &frozen;
        let mut magic = [0u8; 4];
        cur.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MAGC");
        assert_eq!(cur.get_u8(), 3);
        assert_eq!(cur.get_u64_le(), 0x0102_0304_0506_0708);
        assert_eq!(cur.get_f64_le().to_bits(), (-0.5f64).to_bits());
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics_like_the_real_crate() {
        let mut cur: &[u8] = &[1, 2];
        let _ = cur.get_u64_le();
    }
}
