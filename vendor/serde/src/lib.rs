//! Offline stub for `serde`: marker traits plus the derive re-exports.
//!
//! The workspace never serializes through serde (all formats are
//! hand-rolled in `serr-core::jsonio` and `serr-store`); types derive the
//! traits only to advertise that they are plain data. Blanket impls make
//! every type satisfy any `T: Serialize` bound that might appear.

/// Marker trait; see module docs.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait; see module docs.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

/// Marker trait mirroring serde's owned-deserialization shorthand.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
