//! Offline stub for `rand` 0.8, faithful where it matters.
//!
//! The workspace seeds every generator explicitly (`seed_from_u64`) and
//! relies on the seeded stream being stable, so this stub reimplements the
//! exact algorithms rand 0.8 uses on 64-bit targets:
//!
//! * `SmallRng` = xoshiro256++ with the PCG32-based `seed_from_u64` state
//!   fill (identical stream to `rand 0.8` + `rand_xoshiro`).
//! * `gen::<f64>()` = 53-bit multiply mapping into `[0, 1)`.
//! * Float ranges = the mantissa-into-`[1, 2)` affine map.
//! * Integer ranges = Lemire widening-multiply rejection with the
//!   `(range << leading_zeros) - 1` zone.
//!
//! Only the surface the workspace uses is provided.

/// Error type for fallible generator methods (never produced here).
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// Core generator interface, as in rand 0.8.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible fill; infallible for every generator here.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Values samplable from the `Standard` distribution.
pub trait StandardSample: Sized {
    /// Draws one value.
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // rand 0.8 Standard: 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn sample_f64<R: RngCore + ?Sized>(rng: &mut R, low: f64, high: f64) -> f64 {
    debug_assert!(low < high, "gen_range called with empty range");
    // rand 0.8 UniformFloat::sample_single: 52 mantissa bits into [1, 2),
    // then one fused affine map.
    let value1_2 = f64::from_bits(0x3FF0_0000_0000_0000 | (rng.next_u64() >> 12));
    let scale = high - low;
    let offset = low - scale;
    value1_2 * scale + offset
}

#[inline]
fn sample_u64_lemire<R: RngCore + ?Sized>(rng: &mut R, range: u64) -> u64 {
    // rand 0.8 UniformInt::sample_single zone.
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = u128::from(v) * u128::from(range);
        let lo = m as u64;
        if lo <= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(sample_u64_lemire(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64 domain.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(sample_u64_lemire(rng, span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        sample_f64(rng, self.start, self.end)
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        sample_f64(rng, *self.start(), *self.end())
    }
}

/// Extension methods over any [`RngCore`], as in rand 0.8.
pub trait Rng: RngCore {
    /// Draws a value from the `Standard` distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generator interface, as in rand 0.8.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with rand 0.8's PCG32 fill, so
    /// seeded streams match the real crate exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let x = xorshifted.rotate_right(rot);
            chunk.copy_from_slice(&x.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// rand 0.8's `SmallRng` on 64-bit targets: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            let mut chunks = dest.chunks_exact_mut(8);
            for chunk in &mut chunks {
                chunk.copy_from_slice(&self.next_u64().to_le_bytes());
            }
            let rem = chunks.into_remainder();
            if !rem.is_empty() {
                let last = self.next_u64().to_le_bytes();
                rem.copy_from_slice(&last[..rem.len()]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut raw = [0u8; 8];
                raw.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(raw);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn seeded_stream_is_stable() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_draws_live_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_are_uniform_enough_and_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            let v = rng.gen_range(0usize..10);
            counts[v] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} far from uniform");
        }
        for _ in 0..1_000 {
            let v = rng.gen_range(5u64..7);
            assert!((5..7).contains(&v));
            let w = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&w));
        }
    }
}
