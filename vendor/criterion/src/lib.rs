//! Offline stub for `criterion`: just enough to compile and run the bench
//! targets. Each benchmark closure is executed a handful of times and a
//! min/mean wall time is printed — no statistics, no reports. Tier-1 does
//! not gate on these targets; the real numbers come from `bench_smoke`.

use std::time::{Duration, Instant};

/// Iteration driver handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` a few times, timing each run.
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut f: F) {
        const RUNS: usize = 10;
        for _ in 0..RUNS {
            let t0 = Instant::now();
            let out = f();
            self.samples.push(t0.elapsed());
            std::hint::black_box(out);
        }
    }
}

/// Identifies a parameterized benchmark case.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId { label: format!("{}/{parameter}", function.into()) }
    }
}

/// Throughput annotation (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    fn report(&self, label: &str, b: &Bencher) {
        if b.samples.is_empty() {
            return;
        }
        let min = b.samples.iter().min().copied().unwrap_or_default();
        let total: Duration = b.samples.iter().sum();
        let mean = total / b.samples.len() as u32;
        println!(
            "bench {}/{label}: min {:.3} ms, mean {:.3} ms ({} runs)",
            self.name,
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3,
            b.samples.len()
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::default();
        f(&mut b);
        self.report(label, &b);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        let label = id.label.clone();
        self.report(&label, &b);
        self
    }

    /// Sample-size hint (ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Throughput annotation (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion;

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup { name: name.into() }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, label: &str, f: F) -> &mut Self {
        let mut g = BenchmarkGroup { name: "bench".to_owned() };
        g.bench_function(label, f);
        self
    }
}

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
