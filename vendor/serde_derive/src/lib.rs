//! Offline stub for `serde_derive`: the derives expand to nothing. The
//! workspace only derives `Serialize`/`Deserialize` for API politeness —
//! every on-disk format is hand-rolled — so an empty expansion satisfies
//! every use site. `#[serde(...)]` helper attributes are accepted and
//! ignored.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
