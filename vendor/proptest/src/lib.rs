//! Offline stub for `proptest`: the same macro and strategy surface the
//! workspace uses, run as deterministic direct sampling.
//!
//! Differences from the real crate, deliberately accepted:
//!
//! * No shrinking — a failing case reports its case number and the run is
//!   deterministic (per-test seed derived from the test name), so failures
//!   reproduce exactly without persistence files.
//! * String strategies ignore their regex pattern and generate arbitrary
//!   strings (ASCII incl. quotes/escapes/controls plus multibyte scalars),
//!   which is what the workspace's patterns (`".*"`, `".{0,64}"`) ask for
//!   in practice.
//!
//! Everything else — `proptest!`, ranges, `any`, tuples,
//! `collection::vec`, `prop_map`, `Just`, `prop_oneof!`, the assert
//! macros, `ProptestConfig` — behaves as call sites expect.

pub mod test_runner {
    //! Config, error, and RNG types for the generated test runners.

    /// Subset of proptest's run configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property case.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        /// Failure carrying `msg`.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// SplitMix64 generator seeded deterministically per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a), so every run of a given test
        /// sees the same case sequence.
        #[must_use]
        pub fn deterministic(name: &str) -> TestRng {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` on the 53-bit grid.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            let zone = (bound << bound.leading_zeros()).wrapping_sub(1);
            loop {
                let v = self.next_u64();
                let m = u128::from(v) * u128::from(bound);
                if (m as u64) <= zone {
                    return (m >> 64) as u64;
                }
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted union of strategies, built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Union over `arms` of `(weight, generator)`.
        ///
        /// # Panics
        ///
        /// Panics when `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Fn(&mut TestRng) -> T>)>) -> Union<T> {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs a nonzero total weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, gen) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return gen(rng);
                }
                pick -= w;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                    if span == 0 {
                        return start.wrapping_add(rng.next_u64() as $t);
                    }
                    start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + (self.end - self.start) * rng.unit_f64();
            // Float rounding can land exactly on the excluded endpoint;
            // fold that sliver back onto the start.
            if v >= self.start && v < self.end {
                v
            } else {
                self.start
            }
        }
    }

    impl Strategy for std::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (start, end) = (*self.start(), *self.end());
            assert!(start <= end, "empty range strategy");
            start + (end - start) * rng.unit_f64()
        }
    }

    /// Pattern string strategies: the pattern is treated as "any string"
    /// (see crate docs) — lengths 0..=64, drawing from ASCII incl. quotes,
    /// backslashes, and controls, plus multibyte scalars, to exercise
    /// escaping paths.
    impl Strategy for &str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            const EXOTIC: [char; 8] = ['é', 'ß', '→', '日', '𝒮', '\u{200B}', '😀', '\u{7F}'];
            let len = rng.below(65) as usize;
            let mut out = String::new();
            for _ in 0..len {
                let c = match rng.below(10) {
                    0 => '"',
                    1 => '\\',
                    2 => char::from(rng.below(32) as u8),
                    3 => EXOTIC[rng.below(EXOTIC.len() as u64) as usize],
                    _ => char::from(32 + rng.below(95) as u8),
                };
                out.push(c);
            }
            out
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical "anything" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy for any value of `T`.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    /// The `any::<T>()` entry point.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Like the real crate: finite values only.
            loop {
                let v = f64::from_bits(rng.next_u64());
                if v.is_finite() {
                    return v;
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            loop {
                if let Some(c) = char::from_u32(rng.below(0x11_0000) as u32) {
                    return c;
                }
            }
        }
    }
}

pub mod num {
    //! Numeric bit-pattern strategies (`num::f64::ANY` and friends).

    /// Strategies over every `f64` bit pattern.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy drawing uniformly over all 2^64 bit patterns — unlike
        /// `any::<f64>()`, this includes NaN payloads and the infinities.
        #[derive(Debug, Clone, Copy, Default)]
        pub struct Any;

        /// Any `f64`, including non-finite values.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = core::primitive::f64;

            fn generate(&self, rng: &mut TestRng) -> core::primitive::f64 {
                core::primitive::f64::from_bits(rng.next_u64())
            }
        }
    }
}

pub mod collection {
    //! `vec(strategy, size)` support.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Acceptable size arguments: exact, `a..b`, `a..=b`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for vectors of `element` values.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generates vectors whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi_inclusive - self.size.lo + 1;
            let len = self.size.lo + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

    /// Mirror of the real prelude's `prop` module path.
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
        pub use crate::strategy;
    }
}

/// Defines property tests. See crate docs for shim semantics.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                ::std::module_path!(), "::", ::std::stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        { $body }
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(__e) = __result {
                    ::std::panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __cfg.cases,
                        ::std::stringify!($name),
                        __e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Property-test assertion: fails the current case, not the process.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
                            ::std::stringify!($left),
                            ::std::stringify!($right),
                            __l,
                            __r
                        ),
                    ));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!($($fmt)+),
                    ));
                }
            }
        }
    };
}

/// Inequality assertion for property tests.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                        ::std::format!(
                            "assertion failed: `{} != {}` (both: `{:?}`)",
                            ::std::stringify!($left),
                            ::std::stringify!($right),
                            __l
                        ),
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $({
                let __s = $strat;
                (
                    ($weight) as u32,
                    ::std::boxed::Box::new(move |__rng: &mut $crate::test_runner::TestRng| {
                        $crate::strategy::Strategy::generate(&__s, __rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>,
                )
            }),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runner_is_deterministic_per_test_name() {
        let mut a = crate::test_runner::TestRng::deterministic("x::y");
        let mut b = crate::test_runner::TestRng::deterministic("x::y");
        let mut c = crate::test_runner::TestRng::deterministic("x::z");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..17,
            y in -2.5f64..2.5,
            z in 0..=4u8,
            v in prop::collection::vec(any::<u16>(), 2..9),
            exact in prop::collection::vec(any::<bool>(), 5),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..2.5).contains(&y));
            prop_assert!(z <= 4);
            prop_assert!(v.len() >= 2 && v.len() < 9);
            prop_assert_eq!(exact.len(), 5);
        }

        #[test]
        fn map_oneof_and_assume_compose(
            q in prop_oneof![
                3 => (0u32..10).prop_map(|n| n * 2),
                1 => Just(999u32),
            ],
        ) {
            prop_assume!(q != 999);
            prop_assert!(q < 20 && q % 2 == 0);
            prop_assert_ne!(q, 21);
        }
    }
}
