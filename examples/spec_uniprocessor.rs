//! A uniprocessor reliability study: simulate SPEC-like benchmarks on the
//! paper's POWER4-like core, extract masking traces, and project processor
//! MTTF with AVF+SOFR versus first principles (the Section 5.1 scenario).
//!
//! Run with: `cargo run --release --example spec_uniprocessor [benchmark...]`

use std::sync::Arc;

use serr_core::experiments::ExperimentConfig;
use serr_core::pipeline::simulate_benchmark;
use serr_core::prelude::*;

fn main() -> Result<(), SerrError> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benchmarks: Vec<String> =
        if args.is_empty() { vec!["gzip".into(), "mcf".into(), "swim".into()] } else { args };

    let cfg = ExperimentConfig { sim_instructions: 200_000, ..ExperimentConfig::quick() };
    let rates = UnitRates::paper();
    let validator = Validator::new(cfg.frequency, cfg.mc);

    for name in &benchmarks {
        let run = simulate_benchmark(name, cfg.sim_instructions, cfg.seed)?;
        let stats = &run.output.stats;
        println!(
            "\n=== {name}: {} instructions, {} cycles, IPC {:.2}, L1D miss {:.1}% ===",
            stats.instructions,
            stats.cycles,
            stats.ipc(),
            stats.l1d_miss_rate * 100.0
        );

        let t = &run.output.traces;
        let units: [(&str, RawErrorRate, Arc<dyn VulnerabilityTrace>); 4] = [
            ("int", rates.int_unit, Arc::new(t.int_unit.clone())),
            ("fp", rates.fp_unit, Arc::new(t.fp_unit.clone())),
            ("decode", rates.decode, Arc::new(t.decode.clone())),
            ("regfile", rates.regfile, Arc::new(t.regfile.clone())),
        ];
        for (unit, rate, trace) in &units {
            if trace.is_never_vulnerable() {
                println!("  {unit:>7}: idle for the whole run (AVF 0, cannot fail)");
                continue;
            }
            let v = validator.component(trace, *rate)?;
            println!(
                "  {unit:>7}: AVF {:.3}  MTTF(AVF) {:.1} yr  MTTF(MC) {:.1} yr  err {:.2}%",
                v.avf,
                v.mttf_avf.as_years(),
                v.mttf_mc.mttf.as_years(),
                v.avf_error_vs_mc * 100.0
            );
        }

        // Processor-level: SOFR across the four components vs ground truth.
        let parts: Vec<(RawErrorRate, Arc<dyn VulnerabilityTrace>)> =
            units.iter().map(|(_, r, t)| (*r, t.clone())).collect();
        let sys = validator.system_parts(&parts)?;
        println!(
            "  processor: SOFR {:.1} yr vs MC {:.1} yr -> SOFR error {:.2}% (SoftArch {:.2}%)",
            sys.mttf_sofr.as_years(),
            sys.mttf_mc.mttf.as_years(),
            sys.sofr_error_vs_mc * 100.0,
            sys.softarch_error_vs_mc * 100.0
        );
    }
    println!("\npaper finding (Section 5.1): for uniprocessors running SPEC,");
    println!("every discrepancy stays below the Monte-Carlo noise floor.");
    Ok(())
}
