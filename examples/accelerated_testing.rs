//! Accelerated-testing and high-altitude analysis: how far can the raw
//! error rate be scaled (beam testing, avionics, space) before AVF-derated
//! projections diverge from reality? Reproduces the Figure 3 phenomenon on
//! a real simulated workload instead of the synthetic busy/idle loop.
//!
//! Run with: `cargo run --release --example accelerated_testing`

use serr_core::experiments::{combined_trace, ExperimentConfig};
use serr_core::prelude::*;

fn main() -> Result<(), SerrError> {
    let cfg = ExperimentConfig { sim_instructions: 150_000, ..ExperimentConfig::quick() };
    let freq = cfg.frequency;

    // The `combined` workload: gzip for 12 hours, then swim for 12 hours —
    // a realistic "different jobs day and night" server.
    let trace = combined_trace(&cfg)?;
    println!("workload: combined (gzip 12h + swim 12h), overall AVF = {:.3}\n", trace.avf());

    // A 100 MB cache-class component, exactly Figure 3's subject.
    let n_bits = 8.0 * 100.0 * 1024.0 * 1024.0;
    let base = RawErrorRate::baseline_per_bit().scale(n_bits);
    let mc = MonteCarlo::new(MonteCarloConfig { trials: 60_000, ..Default::default() });

    println!(
        "{:>12} {:>16} {:>16} {:>16} {:>10}",
        "scale S", "raw rate", "AVF-step MTTF", "true MTTF", "AVF err"
    );
    for &s in &[1.0, 5.0, 100.0, 2_000.0, 5_000.0] {
        let rate = base.scale(s);
        let avf_mttf = serr_core::avf::avf_step_mttf(&trace, rate)?;
        let truth = mc.component_mttf(&trace, rate, freq)?;
        let err = (avf_mttf.as_secs() - truth.mttf.as_secs()).abs() / truth.mttf.as_secs();
        println!(
            "{:>12} {:>16} {:>16} {:>16} {:>9.1}%",
            format!("{s}x"),
            format!("{:.1}/yr", rate.events_per_year()),
            format!("{:.4} yr", avf_mttf.as_years()),
            format!("{:.4} yr", truth.mttf.as_years()),
            err * 100.0
        );
    }

    println!("\ninterpretation: accelerated-test conditions (large S) are exactly");
    println!("where naive AVF derating misprojects field MTTF; extrapolate beam");
    println!("results with a first-principles model instead.");
    Ok(())
}
