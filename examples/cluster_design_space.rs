//! A cluster-operator's question: "can I trust AVF+SOFR for my fleet?"
//!
//! Sweeps cluster size and component raw error rate for a day/night server
//! workload and prints where the SOFR projection starts lying — the
//! Figure 6(b) scenario as a decision table.
//!
//! Run with: `cargo run --release --example cluster_design_space`

use std::sync::Arc;

use serr_core::prelude::*;

fn main() -> Result<(), SerrError> {
    let freq = Frequency::base();
    let day: Arc<dyn VulnerabilityTrace> = Arc::new(serr_workload::synthesized::day(freq));
    let validator = Validator::new(freq, MonteCarloConfig { trials: 50_000, ..Default::default() });

    println!("SOFR trustworthiness map: day/night workload, per-processor");
    println!("storage N bits at terrestrial baseline (0.001 FIT/bit)\n");
    println!(
        "{:>10} {:>10} {:>14} {:>14} {:>10}",
        "N (bits)", "cluster C", "SOFR MTTF", "true MTTF", "error"
    );

    for &n in &[1e6, 1e8, 1e9] {
        let rate = RawErrorRate::baseline_per_bit().scale(n);
        for &c in &[8u64, 5_000, 50_000] {
            let v = validator.system_identical(day.clone(), rate, c)?;
            let flag = if v.sofr_error_vs_mc > 0.10 { "  <-- do not trust" } else { "" };
            println!(
                "{:>10.0e} {:>10} {:>14} {:>14} {:>9.1}%{}",
                n,
                c,
                human(v.mttf_sofr.as_secs()),
                human(v.mttf_mc.mttf.as_secs()),
                v.sofr_error_vs_mc * 100.0,
                flag
            );
        }
    }

    println!("\nrule of thumb from the paper: SOFR needs BOTH the per-component");
    println!("rate and the component count to be small relative to the workload's");
    println!("utilization period; large clusters with day-scale phases break it.");
    Ok(())
}

fn human(secs: f64) -> String {
    if secs > 365.0 * 86_400.0 {
        format!("{:.2} yr", secs / (365.0 * 86_400.0))
    } else if secs > 86_400.0 {
        format!("{:.2} d", secs / 86_400.0)
    } else if secs > 3_600.0 {
        format!("{:.2} h", secs / 3_600.0)
    } else {
        format!("{secs:.1} s")
    }
}
