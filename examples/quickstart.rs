//! Quickstart: estimate a component's soft-error MTTF four ways and see
//! where the textbook AVF method stands.
//!
//! Run with: `cargo run --release --example quickstart`

use serr_core::prelude::*;

fn main() -> Result<(), SerrError> {
    // A server-style workload: a 24-hour loop, busy 12 hours a day — the
    // paper's `day` workload.
    let freq = Frequency::base();
    let trace = serr_workload::synthesized::day(freq);
    println!("workload: 24h loop, busy 12h -> AVF = {}", trace.avf());

    // A 12.5 MB component (1e8 bits) at the terrestrial baseline rate: the
    // paper's Figure 6(b) checkpoint.
    let rate = RawErrorRate::baseline_per_bit().scale(1e8);
    println!("component raw rate: {rate}");

    // 1. The AVF step (the method under examination).
    let avf_mttf = serr_core::avf::avf_step_mttf(&trace, rate)?;

    // 2. Monte Carlo from first principles (the paper's ground truth).
    let mc = MonteCarlo::new(MonteCarloConfig { trials: 100_000, ..Default::default() });
    let mc_est = mc.component_mttf(&trace, rate, freq)?;

    // 3. Exact renewal analysis (this workspace's closed form).
    let renewal = serr_core::prelude::analytic::renewal::renewal_mttf(&trace, rate, freq)?;

    // 4. SoftArch-style discrete bookkeeping.
    let softarch = SoftArch::new(freq).component_mttf(&trace, rate)?;

    println!("\n  AVF step : {:.4} years", avf_mttf.as_years());
    println!(
        "  MonteCarlo: {:.4} years (95% CI ±{:.2}%)",
        mc_est.mttf.as_years(),
        mc_est.relative_ci95() * 100.0
    );
    println!("  renewal  : {:.4} years", renewal.as_years());
    println!("  SoftArch : {:.4} years", softarch.as_years());

    // At this λ·L the AVF step is fine — scale the error rate up 5000x
    // (accelerated test / outer space) and watch it break while the
    // first-principles methods keep agreeing.
    let hot = rate.scale(5_000.0);
    let avf_hot = serr_core::avf::avf_step_mttf(&trace, hot)?;
    let mc_hot = mc.component_mttf(&trace, hot, freq)?;
    let sa_hot = SoftArch::new(freq).component_mttf(&trace, hot)?;
    let err_avf = (avf_hot.as_secs() - mc_hot.mttf.as_secs()).abs() / mc_hot.mttf.as_secs();
    let err_sa = (sa_hot.as_secs() - mc_hot.mttf.as_secs()).abs() / mc_hot.mttf.as_secs();
    println!("\nat 5000x the raw rate (accelerated test conditions):");
    println!("  AVF step error vs Monte Carlo : {:.1}%", err_avf * 100.0);
    println!("  SoftArch error vs Monte Carlo : {:.2}%", err_sa * 100.0);
    Ok(())
}
