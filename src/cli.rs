//! Argument model for the `serr` command-line tool.
//!
//! The CLI exposes the workspace's estimators over the paper's workloads:
//!
//! ```console
//! $ serr mttf --workload day --n-s 1e8                # all four estimators
//! $ serr mttf --workload spec:gzip --rate 1e-4        # simulated benchmark
//! $ serr sofr --workload week --n-s 1e8 -c 5000       # cluster projection
//! $ serr chaos --campaigns 50 --seed 7                # fault-injection campaigns
//! $ serr serve --bind unix:/tmp/serr.sock             # estimation daemon
//! $ serr request --connect unix:/tmp/serr.sock --cmd mttf -w day --n-s 1e8
//! $ serr workloads                                    # list what's available
//! ```
//!
//! Parsing is hand-rolled (no CLI dependency) and lives here so it is unit
//! testable; `src/bin/serr.rs` is a thin shell around [`Command::parse`]
//! and [`run`].

use serr_core::experiments::ExperimentConfig;
use serr_core::prelude::*;
use serr_obs::Obs;
use serr_serve::{Bind, RequestBody, ServeConfig, Server};
use serr_types::SerrError;

// The spec grammar and trace construction live in serr-core so the `serr
// serve` daemon provably shares them; re-exported here for API stability.
pub use serr_core::workspec::WorkloadSpec;

/// A parsed `serr` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print AVF and the four MTTF estimates for one component.
    Mttf {
        /// The workload.
        workload: WorkloadSpec,
        /// Component raw error rate in errors/year.
        rate_per_year: f64,
        /// Monte Carlo trials.
        trials: u64,
        /// Which time-to-failure sampler the Monte Carlo engine runs.
        sampler: SamplerKind,
        /// Wall-clock budget for the Monte Carlo run, in seconds.
        deadline_s: Option<f64>,
        /// Protection transforms applied to the trace before estimation.
        protect: ProtectionSpec,
        /// Write stage timings, convergence events, and a metrics snapshot
        /// as JSONL to this path.
        metrics: Option<std::path::PathBuf>,
    },
    /// SOFR cluster projection vs ground truth.
    Sofr {
        /// The workload each component runs.
        workload: WorkloadSpec,
        /// Per-component raw error rate in errors/year.
        rate_per_year: f64,
        /// Number of components.
        components: u64,
        /// Monte Carlo trials.
        trials: u64,
        /// Which time-to-failure sampler the Monte Carlo engine runs.
        sampler: SamplerKind,
        /// Wall-clock budget for the Monte Carlo run, in seconds.
        deadline_s: Option<f64>,
        /// Protection transforms applied to each component's trace.
        protect: ProtectionSpec,
        /// Write stage timings, convergence events, and a metrics snapshot
        /// as JSONL to this path.
        metrics: Option<std::path::PathBuf>,
    },
    /// Run one of the paper's figure sweeps with checkpoint/resume.
    Sweep {
        /// Which figure to regenerate.
        figure: SweepFigure,
        /// Discard any existing checkpoint journal first.
        fresh: bool,
        /// Monte Carlo trials override.
        trials: Option<u64>,
        /// Mirror the binary journal into a human-readable JSONL sidecar.
        debug_journal: bool,
        /// Write checkpoint events and a metrics snapshot as JSONL to this
        /// path.
        metrics: Option<std::path::PathBuf>,
    },
    /// Dump a `.store` file's header, page CRCs, and record counts.
    StoreInspect {
        /// The store file (checkpoint journal, trace cache entry, ...).
        path: std::path::PathBuf,
    },
    /// Run deterministic fault-injection campaigns across the stack and
    /// check the detect-or-degrade invariant.
    Chaos {
        /// Number of campaigns.
        campaigns: usize,
        /// Master seed (campaign `i` uses plan seed `mix(seed, i)`).
        seed: u64,
        /// Monte Carlo trials per guarded estimate.
        trials: u64,
        /// Which sampler the guarded campaigns run.
        sampler: SamplerKind,
        /// Restrict campaigns to these fault kinds (`None` = all ten).
        kinds: Option<Vec<FaultKind>>,
        /// Write one JSON line per campaign outcome to this path.
        jsonl: Option<std::path::PathBuf>,
    },
    /// Run the supervised estimation daemon (`serr serve`).
    Serve {
        /// Where to listen (`unix:PATH` or `tcp:ADDR`).
        bind: Bind,
        /// Estimate-stage worker slots.
        workers: usize,
        /// Compile-stage worker slots.
        compile_workers: usize,
        /// Bounded queue depth; admission control sheds beyond it.
        queue_depth: usize,
        /// Checkpoint directory for drain/resume journals.
        journal_dir: Option<std::path::PathBuf>,
    },
    /// Send one JSONL request to a running daemon and print the response.
    Request {
        /// The daemon's address (`unix:PATH` or `tcp:ADDR`).
        connect: Bind,
        /// Correlation id echoed on the response.
        id: u64,
        /// Wall-clock budget for the request, in milliseconds.
        deadline_ms: Option<u64>,
        /// What to ask for.
        body: RequestBody,
    },
    /// List available workloads and benchmark profiles.
    Workloads,
    /// Print usage.
    Help,
}

/// The figure sweeps reachable from `serr sweep`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepFigure {
    /// Section 5.1: uniprocessor AVF/SOFR vs Monte Carlo.
    Sec51,
    /// Figure 5: AVF-step error, synthesized workloads.
    Fig5,
    /// Figure 6(a): SOFR-step error, SPEC clusters.
    Fig6a,
    /// Figure 6(b): SOFR-step error, synthesized-workload clusters.
    Fig6b,
    /// Section 5.4: SoftArch across the design space.
    Sec54,
}

impl SweepFigure {
    fn parse(s: &str) -> Result<Self, SerrError> {
        match s {
            "sec5_1" => Ok(SweepFigure::Sec51),
            "fig5" => Ok(SweepFigure::Fig5),
            "fig6a" => Ok(SweepFigure::Fig6a),
            "fig6b" => Ok(SweepFigure::Fig6b),
            "sec5_4" => Ok(SweepFigure::Sec54),
            other => Err(SerrError::invalid_config(format!(
                "unknown sweep `{other}`; expected sec5_1, fig5, fig6a, fig6b, or sec5_4"
            ))),
        }
    }
}

impl Command {
    /// Parses an argument vector (excluding `argv[0]`).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] on malformed arguments.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, SerrError> {
        let mut it = args.iter().map(AsRef::as_ref);
        let sub = it.next().unwrap_or("help");
        match sub {
            "workloads" => Ok(Command::Workloads),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "sweep" => {
                let figure = SweepFigure::parse(it.next().ok_or_else(|| {
                    SerrError::invalid_config(
                        "sweep needs a figure: sec5_1, fig5, fig6a, fig6b, or sec5_4",
                    )
                })?)?;
                let mut fresh = false;
                let mut trials: Option<u64> = None;
                let mut debug_journal = false;
                let mut metrics: Option<std::path::PathBuf> = None;
                while let Some(flag) = it.next() {
                    match flag {
                        "--fresh" => fresh = true,
                        "--resume" => fresh = false, // the default, spelled out
                        "--debug-journal" => debug_journal = true,
                        "--trials" => {
                            let v = it.next().ok_or_else(|| {
                                SerrError::invalid_config("--trials needs a value")
                            })?;
                            trials = Some(parse_count("--trials", v)?);
                        }
                        "--metrics" => {
                            let v = it.next().ok_or_else(|| {
                                SerrError::invalid_config("--metrics needs a path")
                            })?;
                            metrics = Some(std::path::PathBuf::from(v));
                        }
                        other => {
                            return Err(SerrError::invalid_config(format!(
                                "unknown flag `{other}`"
                            )))
                        }
                    }
                }
                Ok(Command::Sweep { figure, fresh, trials, debug_journal, metrics })
            }
            "store" => match it.next() {
                Some("inspect") => {
                    let path = it.next().ok_or_else(|| {
                        SerrError::invalid_config("store inspect needs a file path")
                    })?;
                    if let Some(extra) = it.next() {
                        return Err(SerrError::invalid_config(format!(
                            "unexpected argument `{extra}`"
                        )));
                    }
                    Ok(Command::StoreInspect { path: std::path::PathBuf::from(path) })
                }
                Some(other) => Err(SerrError::invalid_config(format!(
                    "unknown store subcommand `{other}`; expected inspect"
                ))),
                None => Err(SerrError::invalid_config("store needs a subcommand: inspect")),
            },
            "chaos" => {
                let defaults = serr_core::chaos::ChaosConfig::default();
                let mut campaigns = defaults.campaigns;
                let mut seed = defaults.seed;
                let mut trials = defaults.trials;
                let mut sampler = defaults.sampler;
                let mut kinds: Option<Vec<FaultKind>> = None;
                let mut jsonl: Option<std::path::PathBuf> = None;
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next().map(str::to_owned).ok_or_else(|| {
                            SerrError::invalid_config(format!("{name} needs a value"))
                        })
                    };
                    match flag {
                        "--campaigns" => {
                            campaigns = parse_count("--campaigns", &value("--campaigns")?)?
                                .try_into()
                                .map_err(|_| {
                                    SerrError::invalid_config("--campaigns is out of range")
                                })?;
                        }
                        "--seed" => seed = parse_seed(&value("--seed")?)?,
                        "--trials" => trials = parse_count("--trials", &value("--trials")?)?,
                        "--sampler" => sampler = SamplerKind::parse(&value("--sampler")?)?,
                        "--kinds" => kinds = Some(parse_kinds(&value("--kinds")?)?),
                        "--jsonl" => {
                            jsonl = Some(std::path::PathBuf::from(value("--jsonl")?));
                        }
                        other => {
                            return Err(SerrError::invalid_config(format!(
                                "unknown flag `{other}`"
                            )))
                        }
                    }
                }
                Ok(Command::Chaos { campaigns, seed, trials, sampler, kinds, jsonl })
            }
            "mttf" | "sofr" => {
                let mut workload: Option<WorkloadSpec> = None;
                let mut rate: Option<f64> = None;
                let mut components: u64 = 1;
                let mut trials: u64 = 100_000;
                let mut sampler = SamplerKind::default();
                let mut deadline_s: Option<f64> = None;
                let mut protect = ProtectionSpec::none();
                let mut metrics: Option<std::path::PathBuf> = None;
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next().map(str::to_owned).ok_or_else(|| {
                            SerrError::invalid_config(format!("{name} needs a value"))
                        })
                    };
                    match flag {
                        "--workload" | "-w" => {
                            workload = Some(WorkloadSpec::parse(&value("--workload")?)?);
                        }
                        "--rate" => {
                            rate = Some(parse_positive_f64("--rate", &value("--rate")?)?);
                        }
                        "--n-s" => {
                            let prod = parse_positive_f64("--n-s", &value("--n-s")?)?;
                            rate = Some(prod * serr_types::BASELINE_RAW_RATE_PER_BIT_PER_YEAR);
                        }
                        "--components" | "-c" => {
                            components = parse_count("-c", &value("-c")?)?;
                        }
                        "--trials" => {
                            trials = parse_count("--trials", &value("--trials")?)?;
                        }
                        "--sampler" => {
                            sampler = SamplerKind::parse(&value("--sampler")?)?;
                        }
                        "--deadline" => {
                            deadline_s =
                                Some(parse_positive_f64("--deadline", &value("--deadline")?)?);
                        }
                        "--protect" => {
                            protect = ProtectionSpec::parse(&value("--protect")?)?;
                        }
                        "--metrics" => {
                            metrics = Some(std::path::PathBuf::from(value("--metrics")?));
                        }
                        other => {
                            return Err(SerrError::invalid_config(format!(
                                "unknown flag `{other}`"
                            )))
                        }
                    }
                }
                let workload =
                    workload.ok_or_else(|| SerrError::invalid_config("--workload is required"))?;
                let rate_per_year = rate.ok_or_else(|| {
                    SerrError::invalid_config("--rate <errors/year> or --n-s <product> is required")
                })?;
                if sub == "mttf" {
                    Ok(Command::Mttf {
                        workload,
                        rate_per_year,
                        trials,
                        sampler,
                        deadline_s,
                        protect,
                        metrics,
                    })
                } else {
                    Ok(Command::Sofr {
                        workload,
                        rate_per_year,
                        components,
                        trials,
                        sampler,
                        deadline_s,
                        protect,
                        metrics,
                    })
                }
            }
            "serve" => {
                let mut bind: Option<Bind> = None;
                let mut workers: usize = 2;
                let mut compile_workers: usize = 2;
                let mut queue_depth: usize = 64;
                let mut journal_dir: Option<std::path::PathBuf> = None;
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next().map(str::to_owned).ok_or_else(|| {
                            SerrError::invalid_config(format!("{name} needs a value"))
                        })
                    };
                    match flag {
                        "--bind" => bind = Some(Bind::parse(&value("--bind")?)?),
                        "--workers" => {
                            workers = parse_small_count("--workers", &value("--workers")?)?;
                        }
                        "--compile-workers" => {
                            compile_workers = parse_small_count(
                                "--compile-workers",
                                &value("--compile-workers")?,
                            )?;
                        }
                        "--queue" => {
                            queue_depth = parse_small_count("--queue", &value("--queue")?)?;
                        }
                        "--journal-dir" => {
                            journal_dir = Some(std::path::PathBuf::from(value("--journal-dir")?));
                        }
                        other => {
                            return Err(SerrError::invalid_config(format!(
                                "unknown flag `{other}`"
                            )))
                        }
                    }
                }
                let bind = bind.ok_or_else(|| {
                    SerrError::invalid_config("--bind is required (unix:PATH or tcp:ADDR)")
                })?;
                Ok(Command::Serve { bind, workers, compile_workers, queue_depth, journal_dir })
            }
            "request" => {
                let mut connect: Option<Bind> = None;
                let mut cmd: Option<String> = None;
                let mut workload: Option<WorkloadSpec> = None;
                let mut rate: Option<f64> = None;
                let mut rates: Option<Vec<f64>> = None;
                let mut components: u64 = 1;
                let mut trials: u64 = 100_000;
                let mut sampler = SamplerKind::default();
                let mut deadline_ms: Option<u64> = None;
                let mut id: u64 = 0;
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next().map(str::to_owned).ok_or_else(|| {
                            SerrError::invalid_config(format!("{name} needs a value"))
                        })
                    };
                    match flag {
                        "--connect" => connect = Some(Bind::parse(&value("--connect")?)?),
                        "--cmd" => cmd = Some(value("--cmd")?),
                        "--workload" | "-w" => {
                            workload = Some(WorkloadSpec::parse(&value("--workload")?)?);
                        }
                        "--rate" => {
                            rate = Some(parse_positive_f64("--rate", &value("--rate")?)?);
                        }
                        "--n-s" => {
                            let prod = parse_positive_f64("--n-s", &value("--n-s")?)?;
                            rate = Some(prod * serr_types::BASELINE_RAW_RATE_PER_BIT_PER_YEAR);
                        }
                        "--rates" => {
                            rates = Some(
                                value("--rates")?
                                    .split(',')
                                    .map(|s| parse_positive_f64("--rates", s.trim()))
                                    .collect::<Result<Vec<f64>, SerrError>>()?,
                            );
                        }
                        "--components" | "-c" => {
                            components = parse_count("-c", &value("-c")?)?;
                        }
                        "--trials" => trials = parse_count("--trials", &value("--trials")?)?,
                        "--sampler" => sampler = SamplerKind::parse(&value("--sampler")?)?,
                        "--deadline-ms" => {
                            deadline_ms =
                                Some(parse_count("--deadline-ms", &value("--deadline-ms")?)?);
                        }
                        "--id" => id = parse_count("--id", &value("--id")?)?,
                        other => {
                            return Err(SerrError::invalid_config(format!(
                                "unknown flag `{other}`"
                            )))
                        }
                    }
                }
                let connect = connect.ok_or_else(|| {
                    SerrError::invalid_config("--connect is required (unix:PATH or tcp:ADDR)")
                })?;
                let estimation = |components: Option<u64>| -> Result<RequestBody, SerrError> {
                    let workload = workload.clone().ok_or_else(|| {
                        SerrError::invalid_config("--workload is required for this --cmd")
                    })?;
                    let rate_per_year = rate.ok_or_else(|| {
                        SerrError::invalid_config(
                            "--rate <errors/year> or --n-s <product> is required for this --cmd",
                        )
                    })?;
                    Ok(match components {
                        Some(components) => RequestBody::Sofr {
                            workload,
                            rate_per_year,
                            components,
                            trials,
                            sampler,
                        },
                        None => RequestBody::Mttf { workload, rate_per_year, trials, sampler },
                    })
                };
                let body = match cmd.as_deref() {
                    Some("mttf") => estimation(None)?,
                    Some("sofr") => estimation(Some(components))?,
                    Some("sweep") => {
                        let workload = workload.clone().ok_or_else(|| {
                            SerrError::invalid_config("--workload is required for --cmd sweep")
                        })?;
                        let rates_per_year = rates.ok_or_else(|| {
                            SerrError::invalid_config(
                                "--rates <r1,r2,...> (errors/year) is required for --cmd sweep",
                            )
                        })?;
                        RequestBody::Sweep { workload, rates_per_year, trials, sampler }
                    }
                    Some("stats") => RequestBody::Stats,
                    Some("shutdown") => RequestBody::Shutdown,
                    Some(other) => {
                        return Err(SerrError::invalid_config(format!(
                            "unknown --cmd `{other}`; expected mttf, sofr, sweep, stats, or \
                             shutdown"
                        )))
                    }
                    None => {
                        return Err(SerrError::invalid_config(
                            "--cmd is required (mttf, sofr, sweep, stats, or shutdown)",
                        ))
                    }
                };
                Ok(Command::Request { connect, id, deadline_ms, body })
            }
            other => Err(SerrError::invalid_config(format!("unknown subcommand `{other}`"))),
        }
    }
}

/// Parses a count that must also fit a `usize` (worker slots, queue depth).
fn parse_small_count(name: &str, v: &str) -> Result<usize, SerrError> {
    usize::try_from(parse_count(name, v)?)
        .map_err(|_| SerrError::invalid_config(format!("{name} is out of range")))
}

fn parse_f64(name: &str, v: &str) -> Result<f64, SerrError> {
    v.parse::<f64>()
        .map_err(|_| SerrError::invalid_config(format!("{name}: `{v}` is not a number")))
}

/// Parses a strictly positive, finite number — NaN, ±∞, zero, and negatives
/// all get an error naming the flag, so bad numerics die at the command
/// line instead of deep inside an estimator.
fn parse_positive_f64(name: &str, v: &str) -> Result<f64, SerrError> {
    let x = parse_f64(name, v)?;
    if !(x.is_finite() && x > 0.0) {
        return Err(SerrError::invalid_config(format!(
            "{name} must be a positive finite number, got `{v}`"
        )));
    }
    Ok(x)
}

/// Parses a campaign seed: decimal or `0x`-prefixed hex (the form chaos
/// reports print, so a seed can be pasted back verbatim to replay).
fn parse_seed(v: &str) -> Result<u64, SerrError> {
    let parsed = match v.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => v.parse::<u64>().ok(),
    };
    parsed.ok_or_else(|| {
        SerrError::invalid_config(format!("--seed: `{v}` is not a u64 (decimal or 0x-hex)"))
    })
}

/// Parses a comma-separated list of fault-kind labels.
fn parse_kinds(v: &str) -> Result<Vec<FaultKind>, SerrError> {
    v.split(',')
        .map(|s| {
            FaultKind::parse(s.trim()).ok_or_else(|| {
                SerrError::invalid_config(format!(
                    "--kinds: unknown fault kind `{s}`; known: {} \
                     (serve-* kinds belong to the serr-serve chaos soak)",
                    FaultKind::CORE.map(FaultKind::label).join(", ")
                ))
            })
        })
        .collect()
}

/// Parses a whole-number count of at least 1. Scientific notation is
/// accepted (`-c 5e3`), but fractional values (`-c 2.5`) and values too
/// large to represent exactly as an integer (`> 2^53`) are rejected rather
/// than silently truncated.
fn parse_count(name: &str, v: &str) -> Result<u64, SerrError> {
    if let Ok(n) = v.parse::<u64>() {
        if n >= 1 {
            return Ok(n);
        }
        return Err(SerrError::invalid_config(format!("{name} must be at least 1, got {v}")));
    }
    let f = parse_f64(name, v)?;
    if !(f.is_finite() && f >= 1.0 && f.fract() == 0.0 && f <= 9_007_199_254_740_992.0) {
        return Err(SerrError::invalid_config(format!(
            "{name} must be a whole number between 1 and 2^53, got `{v}`"
        )));
    }
    Ok(f as u64)
}

/// Usage text.
pub const USAGE: &str = "\
serr — architecture-level soft error analysis (DSN 2007 reproduction)

USAGE:
  serr mttf --workload <W> (--rate <errors/year> | --n-s <N*S>) [--trials N] [--sampler batched-inversion|inversion|event-loop] [--deadline <secs>] [--protect SPEC] [--metrics PATH]
  serr sofr --workload <W> (--rate <errors/year> | --n-s <N*S>) -c <count> [--trials N] [--sampler batched-inversion|inversion|event-loop] [--deadline <secs>] [--protect SPEC] [--metrics PATH]
  serr sweep <sec5_1|fig5|fig6a|fig6b|sec5_4> [--fresh | --resume] [--trials N] [--debug-journal] [--metrics PATH]
  serr store inspect <FILE>
  serr chaos [--campaigns N] [--seed S] [--trials N] [--sampler batched-inversion|inversion|event-loop] [--kinds k1,k2,...] [--jsonl PATH]
  serr serve --bind <unix:PATH|tcp:ADDR> [--workers N] [--compile-workers N] [--queue N] [--journal-dir DIR]
  serr request --connect <unix:PATH|tcp:ADDR> --cmd <mttf|sofr|sweep|stats|shutdown> [-w <W>] [--rate R | --n-s P | --rates R1,R2,...] [-c N] [--trials N] [--sampler S] [--deadline-ms N] [--id N]
  serr workloads
  serr help

WORKLOADS <W>:
  day | week | combined | spec:<benchmark> | duty:<period_seconds>:<busy_fraction>

FLAGS:
  --sampler <S>      time-to-failure sampler for the Monte Carlo trials:
                     `batched-inversion` (default) inverts the cumulative-
                     vulnerability function over whole trial chunks at once —
                     counter-based RNG, structure-of-arrays buffers, branchless
                     array passes; `inversion` is the same O(1)-per-trial
                     transform one scalar trial at a time (the batched
                     sampler's oracle); `event-loop` replays the classic
                     per-error walk — same distribution, slowest, the
                     assumption-free cross-check
  --deadline <secs>  wall-clock budget for the Monte Carlo run; on expiry the
                     estimate is returned from the trials completed so far,
                     marked truncated, with a correspondingly wider CI
  --protect SPEC     protection transforms applied to the workload trace
                     before estimation, comma-separated, left to right:
                     `ecc:<word_bits>` SEC-DED word coverage (single-bit
                     upsets corrected; fails only when a second bit in the
                     word is already vulnerable), `scrub:<interval_cycles>`
                     periodic scrubbing (vulnerability ramps from zero after
                     each scrub), `delay:<window_cycles>` delayed reporting
                     (errors within the window of the period end never
                     surface). Cycle counts accept scientific notation;
                     `none` is the identity. Example: ecc:64,scrub:1e6
  --resume           resume from the journal if one exists (the default);
                     journals are CRC-paged binary `.store` files under
                     target/serr-checkpoints/ (override with
                     SERR_CHECKPOINT_DIR); a legacy `.jsonl` journal found
                     there is migrated in place on first open
  --debug-journal    also mirror every checkpointed row into a `.jsonl`
                     sidecar next to the binary journal, in the legacy
                     line format, for grep/jq debugging (the binary file
                     stays authoritative)
  --campaigns N      number of fault-injection campaigns to run (default 200)
  --seed S           chaos master seed, decimal or 0x-hex; the same seed
                     replays the identical campaign sequence and outcome
                     tags at any thread count
  --kinds k1,k2      restrict chaos campaigns to these injectors; known:
                     trace-value-flip, trace-prefix-perturb,
                     trace-consistent-corrupt, trace-transform, chunk-panic,
                     deadline-exhaust, rate-poison, checkpoint-io,
                     journal-corrupt, journal-lock, cache-corrupt,
                     store-torn-tail, store-bit-flip, store-header-corrupt,
                     store-stale-version
  --jsonl PATH       write one JSON line per campaign outcome to PATH
  --bind <ADDR>      where the daemon listens: unix:PATH or tcp:HOST:PORT
                     (tcp:HOST:0 picks a free port, printed at startup)
  --workers N        estimate-stage worker slots (default 2); workers are
                     panic-isolated and restarted under bounded backoff
  --compile-workers N
                     compile-stage worker slots (default 2)
  --queue N          bounded queue depth per stage (default 64); admission
                     control sheds with a typed response beyond this
  --journal-dir DIR  persist drain/resume journals here: shutdown journals
                     in-flight requests, a fresh `serr serve` on the same
                     directory replays them, and re-requests are answered
                     from the results journal bit-identically
  --connect <ADDR>   the daemon to talk to (same grammar as --bind)
  --cmd <C>          request kind: mttf | sofr | sweep | stats | shutdown
  --rates <LIST>     comma-separated errors/year list for --cmd sweep; the
                     daemon answers every point off one shared-stream
                     kernel run (common random numbers), each point
                     bit-identical to the equivalent single mttf request
  --deadline-ms N    wall-clock budget for the request; overload sheds
                     up front, a tight budget degrades to a truncated
                     estimate with an honestly wider CI
  --metrics PATH     stream structured telemetry to PATH as JSON lines:
                     per-stage wall time (trace compile, renewal quadrature,
                     SoftArch, MC run), per-chunk Monte Carlo convergence
                     snapshots (running mean + 95% CI half-width), and a
                     closing counters/gauges/histograms snapshot; event
                     sequence keys are identical at any SERR_THREADS

ENVIRONMENT:
  SERR_THREADS       Monte Carlo worker threads for mttf/sofr (0 or unset =
                     all cores); estimates are bit-identical at any setting

EXAMPLES:
  serr mttf --workload day --n-s 1e8
  serr mttf --workload spec:mcf --rate 1e-4 --deadline 10
  serr mttf --workload day --n-s 1e8 --sampler event-loop
  serr mttf --workload day --n-s 1e8 --metrics out.jsonl
  serr mttf --workload day --n-s 1e8 --protect ecc:64,scrub:1e6
  serr sofr --workload week --n-s 1e8 -c 5000
  serr sweep fig5 --trials 20000
  serr store inspect target/serr-checkpoints/fig5-00c0ffee00c0ffee.store
  serr chaos --campaigns 50 --seed 0xC0FFEE --jsonl chaos.jsonl
  serr serve --bind unix:/tmp/serr.sock --journal-dir /var/lib/serr
  serr request --connect unix:/tmp/serr.sock --cmd mttf -w day --n-s 1e8
  serr request --connect unix:/tmp/serr.sock --cmd sofr -w week --n-s 1e8 -c 5000 --deadline-ms 2000
  serr request --connect unix:/tmp/serr.sock --cmd sweep -w day --rates 1e5,2e5,4e5 --trials 20000
  serr request --connect unix:/tmp/serr.sock --cmd stats
  serr request --connect unix:/tmp/serr.sock --cmd shutdown

WIRE PROTOCOL (serr serve):
  JSON Lines, one request and one response per line. Every request ends in
  exactly one typed terminal state:
    result    full-fidelity estimate, bit-identical to the batch CLI
    degraded  honest estimate from a truncated run (deadline pressure)
    shed      refused by admission control before any work was done
    error     typed failure (bad frame, estimator error, injected fault)
  request : {\"id\":1,\"cmd\":\"mttf\",\"workload\":\"day\",\"rate_per_year\":1.0,
             \"trials\":100000,\"deadline_ms\":2000}
  response: {\"id\":1,\"state\":\"result\",\"mttf_mc_s\":...,\"rel_ci95\":...,
             \"provenance\":\"clean\",\"trials_done\":100000,\"resumed\":false,...}
";

/// Executes a parsed command, writing human-readable output to stdout.
///
/// # Errors
///
/// Propagates estimator errors.
pub fn run(cmd: &Command) -> Result<(), SerrError> {
    let cfg = ExperimentConfig::cli();
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Workloads => {
            println!("synthesized: day (24h, busy 12h)  week (7d, busy 5d)  combined (gzip+swim)");
            println!("parametric : duty:<period_seconds>:<busy_fraction>");
            println!("benchmarks (spec:<name>):");
            for p in BenchmarkProfile::all() {
                println!(
                    "  {:>9}  {:?}  branches {:.0}%  working set {} KiB{}",
                    p.name,
                    p.suite,
                    p.mix.branch * 100.0,
                    p.working_set_bytes / 1024,
                    if p.phases.is_some() { "  [phased]" } else { "" },
                );
            }
            Ok(())
        }
        Command::Mttf {
            workload,
            rate_per_year,
            trials,
            sampler,
            deadline_s,
            protect,
            metrics,
        } => {
            let obs = metrics_obs(metrics.as_deref())?;
            let trace = protect.apply(workload.trace(&cfg)?)?;
            let rate = RawErrorRate::try_per_year(*rate_per_year)?;
            let freq = cfg.frequency;
            let mut v = Validator::new(freq, mc_config(*trials, *sampler, *deadline_s));
            if let Some(obs) = &obs {
                v = v.with_observer(obs.clone());
            }
            let r = v.component(&trace, rate)?;
            println!(
                "workload period : {}",
                Seconds::new(trace.period_cycles() as f64 / freq.hz())
            );
            if !protect.is_none() {
                println!("protection      : {}", protect.canonical());
            }
            println!("AVF             : {:.4}", r.avf);
            println!("MTTF, AVF step  : {}", r.mttf_avf.as_seconds());
            println!(
                "MTTF, MonteCarlo: {} (±{:.2}% at 95%, {} sampler)",
                r.mttf_mc.mttf.as_seconds(),
                r.mttf_mc.relative_ci95() * 100.0,
                r.mttf_mc.sampler.label()
            );
            println!("provenance      : {}", classify_estimate(&r.mttf_mc));
            if r.mttf_mc.truncated {
                println!(
                    "note: deadline hit after {} of {trials} trials; the CI above \
                     reflects the completed subset",
                    r.mttf_mc.ttf_seconds.count
                );
            }
            println!("MTTF, renewal   : {}", r.mttf_renewal.as_seconds());
            println!("MTTF, SoftArch  : {}", r.mttf_softarch.as_seconds());
            println!(
                "AVF-step error  : {:.2}% vs MC, {:.2}% vs exact",
                r.avf_error_vs_mc * 100.0,
                r.avf_error_vs_renewal * 100.0
            );
            finish_metrics(obs.as_ref(), metrics.as_deref());
            Ok(())
        }
        Command::Sofr {
            workload,
            rate_per_year,
            components,
            trials,
            sampler,
            deadline_s,
            protect,
            metrics,
        } => {
            let obs = metrics_obs(metrics.as_deref())?;
            let trace = protect.apply(workload.trace(&cfg)?)?;
            let rate = RawErrorRate::try_per_year(*rate_per_year)?;
            let mut v = Validator::new(cfg.frequency, mc_config(*trials, *sampler, *deadline_s));
            if let Some(obs) = &obs {
                v = v.with_observer(obs.clone());
            }
            let r = v.system_identical(trace, rate, *components)?;
            println!("components      : {components}");
            if !protect.is_none() {
                println!("protection      : {}", protect.canonical());
            }
            println!("MTTF, SOFR      : {}", r.mttf_sofr.as_seconds());
            println!(
                "MTTF, MonteCarlo: {} (±{:.2}% at 95%, {} sampler)",
                r.mttf_mc.mttf.as_seconds(),
                r.mttf_mc.relative_ci95() * 100.0,
                r.mttf_mc.sampler.label()
            );
            println!("provenance      : {}", classify_estimate(&r.mttf_mc));
            if r.mttf_mc.truncated {
                println!(
                    "note: deadline hit after {} of {trials} trials; the CI above \
                     reflects the completed subset",
                    r.mttf_mc.ttf_seconds.count
                );
            }
            println!("MTTF, renewal   : {}", r.mttf_renewal.as_seconds());
            println!("MTTF, SoftArch  : {}", r.mttf_softarch.as_seconds());
            println!(
                "SOFR-step error : {:.2}% vs MC, {:.2}% vs exact",
                r.sofr_error_vs_mc * 100.0,
                r.sofr_error_vs_renewal * 100.0
            );
            if r.sofr_error_vs_renewal > 0.10 {
                println!("warning: SOFR is unreliable for this configuration (see DSN'07)");
            }
            finish_metrics(obs.as_ref(), metrics.as_deref());
            Ok(())
        }
        Command::Serve { bind, workers, compile_workers, queue_depth, journal_dir } => {
            let mut scfg = ServeConfig::new(bind.clone());
            scfg.estimate_workers = *workers;
            scfg.compile_workers = *compile_workers;
            scfg.queue_depth = *queue_depth;
            scfg.journal_dir = journal_dir.clone();
            let server = Server::start(scfg)?;
            println!("serr serve: listening on {}", server.bind_addr());
            println!(
                "stop with a {{\"cmd\":\"shutdown\"}} request (`serr request ... --cmd shutdown`); \
                 in-flight work is journaled and resumed on restart"
            );
            server.wait();
            println!("serr serve: drained and stopped");
            Ok(())
        }
        Command::Request { connect, id, deadline_ms, body } => {
            let mut client = serr_serve::Client::connect(connect)
                .map_err(|e| SerrError::io(format!("connect {connect}"), e.to_string()))?;
            let req = serr_serve::Request {
                id: *id,
                deadline_ms: *deadline_ms,
                tag: None,
                body: body.clone(),
            };
            let resp = client
                .roundtrip(&req)
                .map_err(|e| SerrError::io("request", e.to_string()))?
                .ok_or_else(|| {
                    SerrError::io("request", "connection closed before a complete response")
                })?;
            println!("{}", resp.to_line());
            Ok(())
        }
        Command::Sweep { figure, fresh, trials, debug_journal, metrics } => {
            let obs = metrics_obs(metrics.as_deref())?;
            let mut cfg = cfg;
            if let Some(t) = trials {
                cfg.mc.trials = *t;
            }
            let mut opts = if *fresh { SweepOptions::fresh() } else { SweepOptions::resume() };
            if *debug_journal {
                opts = opts.with_debug_journal();
            }
            if let Some(obs) = &obs {
                opts = opts.with_obs(obs.clone());
            }
            run_sweep_command(*figure, &cfg, &opts)?;
            finish_metrics(obs.as_ref(), metrics.as_deref());
            Ok(())
        }
        Command::StoreInspect { path } => {
            let r = serr_store::pages::inspect(path)?;
            println!("store           : {}", path.display());
            println!(
                "header          : format v{}, kind {} ({}), app v{}",
                r.header.format,
                r.header.kind,
                serr_store::kind::label(r.header.kind),
                r.header.app
            );
            println!("file length     : {} bytes ({} valid)", r.file_len, r.valid_len);
            println!("pages           : {} ({} records)", r.pages.len(), r.records);
            for p in &r.pages {
                println!(
                    "  @{:>8}  {:>6} bytes  {:>5} records  first #{:<6}  crc 0x{:08x}",
                    p.offset, p.payload_len, p.records, p.first_index, p.payload_crc
                );
            }
            match &r.damage {
                Some(d) => println!("damage          : {d} (tail past the valid prefix is dead)"),
                None => println!("damage          : none"),
            }
            Ok(())
        }
        Command::Chaos { campaigns, seed, trials, sampler, kinds, jsonl } => {
            let ccfg = ChaosConfig {
                campaigns: *campaigns,
                seed: *seed,
                trials: *trials,
                sampler: *sampler,
                kinds: kinds.clone().unwrap_or_else(|| FaultKind::CORE.to_vec()),
                ..ChaosConfig::default()
            };
            let report = run_chaos(&ccfg)?;
            println!(
                "golden MTTF     : {} (±{:.2}% at 95%)",
                Seconds::new(report.golden_mttf_seconds),
                report.golden_rel_ci95 * 100.0
            );
            println!("campaigns       : {}", report.outcomes.len());
            for p in Provenance::ALL {
                println!("  {:<9}: {}", p.label(), report.count(p));
            }
            for o in report.outcomes.iter().filter(|o| o.miss) {
                println!(
                    "MISS: campaign {} ({}, seed {:#018x}): {}",
                    o.campaign, o.kind, o.seed, o.detail
                );
            }
            if let Some(path) = jsonl {
                let mut text = String::new();
                for o in &report.outcomes {
                    text.push_str(&o.to_json().to_json());
                    text.push('\n');
                }
                std::fs::write(path, text)
                    .map_err(|e| SerrError::io("write chaos jsonl", e.to_string()))?;
                println!("wrote {} JSONL rows to {}", report.outcomes.len(), path.display());
            }
            if report.is_sound() {
                println!(
                    "detect-or-degrade invariant: PASS ({} campaigns, 0 misses)",
                    report.outcomes.len()
                );
                Ok(())
            } else {
                Err(SerrError::engine_fault(
                    "chaos campaign",
                    format!(
                        "{} of {} campaigns produced silently wrong results",
                        report.misses(),
                        report.outcomes.len()
                    ),
                ))
            }
        }
    }
}

/// Assembles the Monte Carlo configuration for the `mttf`/`sofr` commands.
/// `SERR_THREADS` overrides the worker-thread count (unset, empty, or `0`
/// means all cores); estimates are bit-identical at any setting — the
/// variable exists so that invariance can be demonstrated from the shell.
fn mc_config(trials: u64, sampler: SamplerKind, deadline_s: Option<f64>) -> MonteCarloConfig {
    let threads = std::env::var("SERR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .unwrap_or(0);
    MonteCarloConfig {
        trials,
        threads,
        sampler,
        deadline: deadline_s.map(std::time::Duration::from_secs_f64),
        ..Default::default()
    }
}

/// Opens the `--metrics` JSONL observer, when one was requested.
fn metrics_obs(path: Option<&std::path::Path>) -> Result<Option<Obs>, SerrError> {
    path.map(|p| Obs::jsonl(p).map_err(|e| SerrError::io("open --metrics jsonl", e.to_string())))
        .transpose()
}

/// Closes out a `--metrics` run: appends the counter/gauge/histogram
/// snapshot to the event stream, flushes the file, and tells the user
/// where it landed.
fn finish_metrics(obs: Option<&Obs>, path: Option<&std::path::Path>) {
    if let (Some(obs), Some(path)) = (obs, path) {
        obs.emit_metrics_snapshot();
        println!("wrote metrics JSONL to {}", path.display());
    }
}

/// Prints a sweep's outcome: resumed/computed counts, one line per row, and
/// one line per failed point (index + typed error). The process succeeds as
/// long as the sweep infrastructure ran; failed points are reported, not
/// fatal, so a resumed invocation can fill them in.
fn report_sweep<R>(report: &SweepReport<R>, line: impl Fn(&R) -> String) -> Result<(), SerrError> {
    println!(
        "{} rows ({} resumed from checkpoint, {} computed, {} failed)",
        report.rows.len(),
        report.resumed,
        report.computed,
        report.failures.len()
    );
    for r in &report.rows {
        println!("  {}", line(r));
    }
    for f in &report.failures {
        println!("  FAILED point {}: {}", f.index, f.error);
    }
    Ok(())
}

fn run_sweep_command(
    figure: SweepFigure,
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<(), SerrError> {
    use serr_core::experiments as exp;
    // The bench binaries' design points (their `--quick` scale); the CLI
    // adds checkpoint/resume on top.
    let cs: [u64; 5] = [2, 8, 5_000, 50_000, 500_000];
    match figure {
        SweepFigure::Sec51 => {
            let report = exp::sec5_1_sweep(&exp::REPRESENTATIVE_BENCHMARKS, cfg, opts)?;
            report_sweep(&report, |r| {
                format!(
                    "{:>8}  worst AVF err {:.2}%  SOFR err {:.2}%",
                    r.benchmark,
                    r.max_component_error * 100.0,
                    r.sofr_error * 100.0
                )
            })
        }
        SweepFigure::Fig5 => {
            let n_s = [1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 5e12];
            let report = exp::fig5_sweep(&Workload::synthesized(), &n_s, cfg, opts)?;
            report_sweep(&report, |r| {
                format!(
                    "{:>8}  N*S {:>8.1e}  AVF err {:.2}%",
                    r.workload,
                    r.n_times_s,
                    r.error * 100.0
                )
            })
        }
        SweepFigure::Fig6a => {
            let n_s = [1e8, 1e9, 2e12, 5e12];
            let report = exp::fig6a_sweep(&exp::REPRESENTATIVE_BENCHMARKS, &cs, &n_s, cfg, opts)?;
            report_sweep(&report, |r| {
                format!(
                    "{:>8}  C {:>6}  N*S {:>8.1e}  SOFR err {:.2}%",
                    r.workload,
                    r.c,
                    r.n_times_s,
                    r.error * 100.0
                )
            })
        }
        SweepFigure::Fig6b => {
            let n_s = [1e7, 1e8, 1e9];
            let report = exp::fig6b_sweep(&Workload::synthesized(), &cs, &n_s, cfg, opts)?;
            report_sweep(&report, |r| {
                format!(
                    "{:>8}  C {:>6}  N*S {:>8.1e}  SOFR err {:.2}%",
                    r.workload,
                    r.c,
                    r.n_times_s,
                    r.error * 100.0
                )
            })
        }
        SweepFigure::Sec54 => {
            let n_s = [1e7, 1e8, 1e9, 1e12];
            let report = exp::sec5_4_sweep(&Workload::synthesized(), &cs, &n_s, cfg, opts)?;
            report_sweep(&report, |r| {
                format!(
                    "{:>8}  C {:>6}  N*S {:>8.1e}  SoftArch err {:.2}% (vs exact {:.4}%)",
                    r.workload,
                    r.c,
                    r.n_times_s,
                    r.softarch_error * 100.0,
                    r.softarch_error_vs_renewal * 100.0
                )
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_parse() {
        assert_eq!(WorkloadSpec::parse("day").unwrap(), WorkloadSpec::Day);
        assert_eq!(WorkloadSpec::parse("week").unwrap(), WorkloadSpec::Week);
        assert_eq!(WorkloadSpec::parse("combined").unwrap(), WorkloadSpec::Combined);
        assert_eq!(WorkloadSpec::parse("spec:mcf").unwrap(), WorkloadSpec::Spec("mcf".into()));
        assert_eq!(
            WorkloadSpec::parse("duty:3600:0.25").unwrap(),
            WorkloadSpec::Duty { period_s: 3600.0, busy: 0.25 }
        );
        assert!(WorkloadSpec::parse("quake").is_err());
        assert!(WorkloadSpec::parse("duty:1:2:3").is_err());
        assert!(WorkloadSpec::parse("duty:x:0.5").is_err());
    }

    #[test]
    fn commands_parse() {
        let cmd = Command::parse(&["mttf", "--workload", "day", "--n-s", "1e8"]).unwrap();
        assert_eq!(
            cmd,
            Command::Mttf {
                workload: WorkloadSpec::Day,
                rate_per_year: 1.0,
                trials: 100_000,
                sampler: SamplerKind::BatchedInversion,
                deadline_s: None,
                protect: ProtectionSpec::none(),
                metrics: None
            }
        );
        let cmd = Command::parse(&[
            "sofr",
            "-w",
            "week",
            "--rate",
            "2.5",
            "-c",
            "5e3",
            "--trials",
            "5000",
            "--deadline",
            "1.5",
            "--sampler",
            "event-loop",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sofr {
                workload: WorkloadSpec::Week,
                rate_per_year: 2.5,
                components: 5000,
                trials: 5000,
                sampler: SamplerKind::EventLoop,
                deadline_s: Some(1.5),
                protect: ProtectionSpec::none(),
                metrics: None
            }
        );
        assert_eq!(Command::parse(&["workloads"]).unwrap(), Command::Workloads);
        assert_eq!(Command::parse::<&str>(&[]).unwrap(), Command::Help);
        assert_eq!(Command::parse(&["--help"]).unwrap(), Command::Help);
    }

    /// `--sampler` parses all three kinds, defaults to batched-inversion
    /// everywhere, and rejects unknown names with a message naming the bad
    /// value.
    #[test]
    fn sampler_flag_parses_and_defaults() {
        for (sub, tail) in [("mttf", vec![]), ("sofr", vec!["-c", "10"])] {
            let mut base = vec![sub, "-w", "day", "--n-s", "1e8"];
            base.extend(&tail);
            let default = Command::parse(&base).unwrap();
            let mut explicit = base.clone();
            explicit.extend(["--sampler", "batched-inversion"]);
            assert_eq!(default, Command::parse(&explicit).unwrap());

            for (label, want) in
                [("inversion", SamplerKind::Inversion), ("event-loop", SamplerKind::EventLoop)]
            {
                let mut flagged = base.clone();
                flagged.extend(["--sampler", label]);
                let got = match Command::parse(&flagged).unwrap() {
                    Command::Mttf { sampler, .. } | Command::Sofr { sampler, .. } => sampler,
                    other => panic!("expected mttf/sofr, got {other:?}"),
                };
                assert_eq!(got, want);
            }

            let mut bad = base.clone();
            bad.extend(["--sampler", "quantum"]);
            match Command::parse(&bad).unwrap_err() {
                SerrError::InvalidConfig { reason } => {
                    assert!(reason.contains("quantum"), "message `{reason}` omits the value");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
        match Command::parse(&["chaos", "--sampler", "event-loop"]).unwrap() {
            Command::Chaos { sampler, .. } => assert_eq!(sampler, SamplerKind::EventLoop),
            other => panic!("expected Chaos, got {other:?}"),
        }
        assert!(Command::parse(&["chaos", "--sampler", "bogus"]).is_err());
    }

    /// `--protect` parses on both estimation commands, defaults to no
    /// protection, and rejects malformed specs naming the bad stage.
    #[test]
    fn protect_flag_parses_and_defaults() {
        for (sub, tail) in [("mttf", vec![]), ("sofr", vec!["-c", "10"])] {
            let mut base = vec![sub, "-w", "day", "--n-s", "1e8"];
            base.extend(&tail);
            let got = match Command::parse(&base).unwrap() {
                Command::Mttf { protect, .. } | Command::Sofr { protect, .. } => protect,
                other => panic!("expected mttf/sofr, got {other:?}"),
            };
            assert!(got.is_none());

            let mut flagged = base.clone();
            flagged.extend(["--protect", "ecc:64,scrub:1e6,delay:5e3"]);
            let got = match Command::parse(&flagged).unwrap() {
                Command::Mttf { protect, .. } | Command::Sofr { protect, .. } => protect,
                other => panic!("expected mttf/sofr, got {other:?}"),
            };
            assert_eq!(got.canonical(), "ecc:64,scrub:1000000,delay:5000");

            let mut bad = base.clone();
            bad.extend(["--protect", "parity:1"]);
            match Command::parse(&bad).unwrap_err() {
                SerrError::InvalidConfig { reason } => {
                    assert!(reason.contains("parity"), "message `{reason}` omits the stage");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn sweep_commands_parse() {
        assert_eq!(
            Command::parse(&["sweep", "fig5", "--fresh"]).unwrap(),
            Command::Sweep {
                figure: SweepFigure::Fig5,
                fresh: true,
                trials: None,
                debug_journal: false,
                metrics: None
            }
        );
        assert_eq!(
            Command::parse(&["sweep", "sec5_1", "--resume", "--trials", "9000"]).unwrap(),
            Command::Sweep {
                figure: SweepFigure::Sec51,
                fresh: false,
                trials: Some(9000),
                debug_journal: false,
                metrics: None
            }
        );
        assert_eq!(
            Command::parse(&["sweep", "fig5", "--debug-journal", "--metrics", "m.jsonl"]).unwrap(),
            Command::Sweep {
                figure: SweepFigure::Fig5,
                fresh: false,
                trials: None,
                debug_journal: true,
                metrics: Some(std::path::PathBuf::from("m.jsonl"))
            }
        );
        assert!(Command::parse(&["sweep", "fig5", "--metrics"]).is_err());
        for figure in ["fig6a", "fig6b", "sec5_4"] {
            assert!(Command::parse(&["sweep", figure]).is_ok());
        }
        assert!(Command::parse(&["sweep"]).is_err());
        assert!(Command::parse(&["sweep", "fig7"]).is_err());
        assert!(Command::parse(&["sweep", "fig5", "--trials", "0"]).is_err());
    }

    #[test]
    fn store_inspect_parses_and_dumps_a_journal() {
        assert_eq!(
            Command::parse(&["store", "inspect", "j.store"]).unwrap(),
            Command::StoreInspect { path: std::path::PathBuf::from("j.store") }
        );
        assert!(Command::parse(&["store"]).is_err(), "subcommand required");
        assert!(Command::parse(&["store", "inspect"]).is_err(), "path required");
        assert!(Command::parse(&["store", "vacuum", "j.store"]).is_err());
        assert!(Command::parse(&["store", "inspect", "a.store", "b.store"]).is_err());

        // End to end: build a real two-page store, inspect it, then tear its
        // tail and verify inspect still answers (degraded, not an error).
        let dir = std::env::temp_dir().join(format!("serr-cli-inspect-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.store");
        let mut b = serr_store::pages::StoreBuilder::with_page_limit(1, 1, 16);
        for r in [b"one".as_slice(), b"two", b"three"] {
            b.push_record(r);
        }
        serr_store::pages::write_atomic(&path, &b.finish()).unwrap();
        let whole = serr_store::pages::inspect(&path).unwrap();
        assert_eq!(whole.records, 3);
        assert!(whole.damage.is_none());
        run(&Command::StoreInspect { path: path.clone() }).unwrap();

        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        run(&Command::StoreInspect { path: path.clone() }).unwrap();
        let torn = serr_store::pages::inspect(&path).unwrap();
        assert!(torn.records < 3);
        assert!(torn.damage.is_some());

        // A dead header is a typed error, not a report.
        let mut bad = bytes;
        bad[0] ^= 0xFF;
        std::fs::write(&path, &bad).unwrap();
        assert!(run(&Command::StoreInspect { path }).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parse_errors_are_actionable() {
        for bad in [
            vec!["mttf"],
            vec!["mttf", "--workload", "day"],
            vec!["mttf", "--workload"],
            vec!["mttf", "--workload", "day", "--rate", "abc"],
            vec!["mttf", "--workload", "day", "--rate", "1", "--bogus", "1"],
            vec!["frobnicate"],
        ] {
            let e = Command::parse(&bad).unwrap_err();
            assert!(matches!(
                e,
                SerrError::InvalidConfig { .. } | SerrError::UnknownWorkload { .. }
            ));
        }
    }

    /// Every numeric flag rejects NaN/∞/negative/zero/fractional abuse with
    /// an [`SerrError::InvalidConfig`] whose message names the flag.
    #[test]
    fn numeric_flags_are_validated_at_parse_time() {
        let rejects = |args: &[&str], needle: &str| match Command::parse(args) {
            Err(SerrError::InvalidConfig { reason }) => {
                assert!(
                    reason.contains(needle),
                    "args {args:?}: message `{reason}` does not name `{needle}`"
                );
            }
            other => panic!("args {args:?}: expected InvalidConfig, got {other:?}"),
        };
        rejects(&["mttf", "-w", "day", "--rate", "-1"], "--rate");
        rejects(&["mttf", "-w", "day", "--rate", "0"], "--rate");
        rejects(&["mttf", "-w", "day", "--rate", "inf"], "--rate");
        rejects(&["mttf", "-w", "day", "--rate", "NaN"], "--rate");
        rejects(&["mttf", "-w", "day", "--n-s", "-2"], "--n-s");
        rejects(&["mttf", "-w", "day", "--n-s", "1e8", "--trials", "0"], "--trials");
        rejects(&["mttf", "-w", "day", "--n-s", "1e8", "--trials", "2.5"], "--trials");
        rejects(&["sofr", "-w", "day", "--n-s", "1e8", "-c", "0"], "-c");
        rejects(&["sofr", "-w", "day", "--n-s", "1e8", "-c", "2.5"], "-c");
        rejects(&["sofr", "-w", "day", "--n-s", "1e8", "-c", "1e20"], "-c");
        rejects(&["sofr", "-w", "day", "--n-s", "1e8", "-c", "-3"], "-c");
        rejects(&["mttf", "-w", "day", "--n-s", "1e8", "--deadline", "0"], "--deadline");
        rejects(&["mttf", "-w", "day", "--n-s", "1e8", "--deadline", "-5"], "--deadline");
        rejects(&["mttf", "-w", "duty:3600:1.5", "--n-s", "1e8"], "busy fraction");
        rejects(&["mttf", "-w", "duty:3600:-0.5", "--n-s", "1e8"], "busy fraction");
        rejects(&["mttf", "-w", "duty:-1:0.5", "--n-s", "1e8"], "period");
        rejects(&["mttf", "-w", "duty:inf:0.5", "--n-s", "1e8"], "period");
    }

    #[test]
    fn run_mttf_on_duty_workload() {
        // End-to-end through the CLI layer on a tiny config.
        let cmd = Command::parse(&[
            "mttf",
            "--workload",
            "duty:0.001:0.5",
            "--rate",
            "1e6",
            "--trials",
            "2000",
        ])
        .unwrap();
        run(&cmd).unwrap();
    }

    #[test]
    fn run_mttf_with_metrics_writes_parseable_jsonl() {
        let dir = std::env::temp_dir().join(format!("serr-cli-metrics-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("mttf.jsonl");
        let cmd = Command::parse(&[
            "mttf",
            "--workload",
            "duty:0.001:0.5",
            "--rate",
            "1e6",
            "--trials",
            "3000",
            "--metrics",
            path.to_str().unwrap(),
        ])
        .unwrap();
        run(&cmd).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut stage_lines = 0;
        let mut chunk_lines = 0;
        for line in text.lines() {
            let parsed = serr_core::jsonio::Json::parse(line)
                .unwrap_or_else(|| panic!("unparseable metrics line `{line}`"));
            match parsed.get("event").and_then(serr_core::jsonio::Json::as_str) {
                Some("stage") => stage_lines += 1,
                Some("mc.chunk") => chunk_lines += 1,
                _ => {}
            }
        }
        assert!(stage_lines >= 3, "expected stage timings, saw {stage_lines}");
        assert!(chunk_lines >= 1, "expected >=1 convergence snapshot, saw {chunk_lines}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_mttf_with_exhausted_deadline_is_a_typed_error() {
        // 1e-15 s rounds to a zero Duration, so the budget is exhausted
        // before the first chunk: the engine must refuse with the typed
        // error instead of returning an empty (NaN-ridden) estimate.
        let cmd = Command::parse(&[
            "mttf",
            "--workload",
            "duty:0.001:0.5",
            "--rate",
            "1e6",
            "--trials",
            "50000",
            "--deadline",
            "1e-15",
        ])
        .unwrap();
        match run(&cmd) {
            Err(SerrError::DeadlineExhausted { .. }) => {}
            other => panic!("expected DeadlineExhausted, got {other:?}"),
        }
    }

    #[test]
    fn chaos_commands_parse() {
        let cmd = Command::parse(&[
            "chaos",
            "--campaigns",
            "40",
            "--seed",
            "0xBEEF",
            "--trials",
            "2500",
            "--kinds",
            "chunk-panic,rate-poison",
            "--jsonl",
            "/tmp/out.jsonl",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Chaos {
                campaigns: 40,
                seed: 0xBEEF,
                trials: 2500,
                sampler: SamplerKind::BatchedInversion,
                kinds: Some(vec![FaultKind::ChunkPanic, FaultKind::RatePoison]),
                jsonl: Some(std::path::PathBuf::from("/tmp/out.jsonl")),
            }
        );
        // Defaults mirror ChaosConfig::default().
        let defaults = serr_core::chaos::ChaosConfig::default();
        match Command::parse(&["chaos"]).unwrap() {
            Command::Chaos { campaigns, seed, trials, sampler, kinds, jsonl } => {
                assert_eq!(campaigns, defaults.campaigns);
                assert_eq!(seed, defaults.seed);
                assert_eq!(trials, defaults.trials);
                assert_eq!(sampler, defaults.sampler);
                assert_eq!(kinds, None);
                assert_eq!(jsonl, None);
            }
            other => panic!("expected Chaos, got {other:?}"),
        }
        assert!(Command::parse(&["chaos", "--seed", "zzz"]).is_err());
        assert!(Command::parse(&["chaos", "--kinds", "no-such-fault"]).is_err());
        assert!(Command::parse(&["chaos", "--campaigns", "0"]).is_err());
    }

    #[test]
    fn serve_and_request_commands_parse() {
        assert_eq!(
            Command::parse(&["serve", "--bind", "unix:/tmp/s.sock"]).unwrap(),
            Command::Serve {
                bind: Bind::Unix("/tmp/s.sock".into()),
                workers: 2,
                compile_workers: 2,
                queue_depth: 64,
                journal_dir: None,
            }
        );
        assert_eq!(
            Command::parse(&[
                "serve",
                "--bind",
                "tcp:127.0.0.1:0",
                "--workers",
                "4",
                "--compile-workers",
                "1",
                "--queue",
                "16",
                "--journal-dir",
                "/tmp/j",
            ])
            .unwrap(),
            Command::Serve {
                bind: Bind::Tcp("127.0.0.1:0".to_owned()),
                workers: 4,
                compile_workers: 1,
                queue_depth: 16,
                journal_dir: Some(std::path::PathBuf::from("/tmp/j")),
            }
        );
        assert!(Command::parse(&["serve"]).is_err(), "--bind is required");
        assert!(Command::parse(&["serve", "--bind", "udp:nope"]).is_err());
        assert!(Command::parse(&["serve", "--bind", "unix:/s", "--queue", "0"]).is_err());

        let cmd = Command::parse(&[
            "request",
            "--connect",
            "unix:/tmp/s.sock",
            "--cmd",
            "sofr",
            "-w",
            "week",
            "--rate",
            "2.5",
            "-c",
            "5000",
            "--trials",
            "4000",
            "--deadline-ms",
            "1500",
            "--id",
            "9",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Request {
                connect: Bind::Unix("/tmp/s.sock".into()),
                id: 9,
                deadline_ms: Some(1500),
                body: RequestBody::Sofr {
                    workload: WorkloadSpec::Week,
                    rate_per_year: 2.5,
                    components: 5000,
                    trials: 4000,
                    sampler: SamplerKind::BatchedInversion,
                },
            }
        );
        // A sweep request carries the comma-separated rate list verbatim.
        let cmd = Command::parse(&[
            "request",
            "--connect",
            "unix:/tmp/s.sock",
            "--cmd",
            "sweep",
            "-w",
            "day",
            "--rates",
            "1e5, 2e5,4e5",
            "--trials",
            "4000",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Request {
                connect: Bind::Unix("/tmp/s.sock".into()),
                id: 0,
                deadline_ms: None,
                body: RequestBody::Sweep {
                    workload: WorkloadSpec::Day,
                    rates_per_year: vec![1e5, 2e5, 4e5],
                    trials: 4000,
                    sampler: SamplerKind::default(),
                },
            }
        );
        assert!(
            Command::parse(&["request", "--connect", "unix:/s", "--cmd", "sweep", "-w", "day"])
                .is_err(),
            "sweep needs --rates"
        );
        // stats/shutdown need no workload or rate.
        for c in ["stats", "shutdown"] {
            assert!(Command::parse(&["request", "--connect", "unix:/s", "--cmd", c]).is_ok());
        }
        assert!(Command::parse(&["request", "--cmd", "stats"]).is_err(), "--connect required");
        assert!(Command::parse(&["request", "--connect", "unix:/s"]).is_err(), "--cmd required");
        assert!(
            Command::parse(&["request", "--connect", "unix:/s", "--cmd", "mttf"]).is_err(),
            "mttf needs a workload and a rate"
        );
        assert!(
            Command::parse(&["request", "--connect", "unix:/s", "--cmd", "reboot"]).is_err(),
            "unknown request kinds are rejected"
        );
    }

    #[test]
    fn run_serve_daemon_answers_requests_end_to_end() {
        let dir = std::env::temp_dir().join(format!("serr-cli-serve-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("serve.sock");
        let bind_arg = format!("unix:{}", sock.display());
        let serve = Command::parse(&[
            "serve",
            "--bind",
            &bind_arg,
            "--workers",
            "1",
            "--compile-workers",
            "1",
        ])
        .unwrap();
        let daemon = std::thread::spawn(move || run(&serve));

        // Wait for the daemon's socket, then drive it with the library
        // client and with `serr request` itself.
        let bind = Bind::Unix(sock.clone());
        let mut client = None;
        for _ in 0..500 {
            match serr_serve::Client::connect(&bind) {
                Ok(c) => {
                    client = Some(c);
                    break;
                }
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(10)),
            }
        }
        let mut client = client.expect("daemon came up");
        let req = serr_serve::Request {
            id: 1,
            deadline_ms: None,
            tag: Some(1),
            body: RequestBody::Mttf {
                workload: WorkloadSpec::parse("duty:0.001:0.5").unwrap(),
                rate_per_year: 1e6,
                trials: 800,
                sampler: SamplerKind::default(),
            },
        };
        let resp = client.roundtrip(&req).unwrap().expect("typed response");
        assert_eq!(resp.state(), "result", "{resp:?}");

        // `serr request` end-to-end: stats, then shutdown.
        let stats = Command::parse(&["request", "--connect", &bind_arg, "--cmd", "stats"]).unwrap();
        run(&stats).unwrap();
        let shutdown =
            Command::parse(&["request", "--connect", &bind_arg, "--cmd", "shutdown"]).unwrap();
        run(&shutdown).unwrap();
        daemon.join().expect("daemon thread").expect("daemon ran");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn run_small_chaos_campaign_end_to_end() {
        let dir = std::env::temp_dir().join(format!("serr-cli-chaos-{}", std::process::id()));
        let jsonl = dir.join("chaos.jsonl");
        let _ = std::fs::create_dir_all(&dir);
        let cmd = Command::parse(&[
            "chaos",
            "--campaigns",
            "4",
            "--seed",
            "11",
            "--trials",
            "1500",
            "--kinds",
            "trace-value-flip,journal-corrupt",
            "--jsonl",
        ])
        .map(|_| ())
        .unwrap_err(); // --jsonl without a value is rejected
        assert!(matches!(cmd, SerrError::InvalidConfig { .. }));

        let cmd = Command::parse(&[
            "chaos",
            "--campaigns",
            "4",
            "--seed",
            "11",
            "--trials",
            "1500",
            "--kinds",
            "trace-value-flip,journal-corrupt",
            "--jsonl",
            jsonl.to_str().unwrap(),
        ])
        .unwrap();
        run(&cmd).unwrap();
        let text = std::fs::read_to_string(&jsonl).unwrap();
        assert_eq!(text.lines().count(), 4);
        assert!(text.contains("\"outcome\""));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
