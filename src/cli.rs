//! Argument model for the `serr` command-line tool.
//!
//! The CLI exposes the workspace's estimators over the paper's workloads:
//!
//! ```console
//! $ serr mttf --workload day --n-s 1e8                # all four estimators
//! $ serr mttf --workload spec:gzip --rate 1e-4        # simulated benchmark
//! $ serr sofr --workload week --n-s 1e8 -c 5000       # cluster projection
//! $ serr workloads                                    # list what's available
//! ```
//!
//! Parsing is hand-rolled (no CLI dependency) and lives here so it is unit
//! testable; `src/bin/serr.rs` is a thin shell around [`Command::parse`]
//! and [`run`].

use std::sync::Arc;

use serr_core::experiments::ExperimentConfig;
use serr_core::prelude::*;
use serr_types::SerrError;

/// Which workload a command targets.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The 24-hour half-busy loop.
    Day,
    /// The 7-day business-week loop.
    Week,
    /// The gzip+swim 24-hour combined loop.
    Combined,
    /// A simulated SPEC-like benchmark by name.
    Spec(String),
    /// `duty:<period_seconds>:<busy_fraction>`.
    Duty {
        /// Loop period in seconds.
        period_s: f64,
        /// Fraction of the period that is busy.
        busy: f64,
    },
}

impl WorkloadSpec {
    /// Parses the `--workload` argument value.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::UnknownWorkload`] for unrecognized syntax.
    pub fn parse(s: &str) -> Result<Self, SerrError> {
        match s {
            "day" => return Ok(WorkloadSpec::Day),
            "week" => return Ok(WorkloadSpec::Week),
            "combined" => return Ok(WorkloadSpec::Combined),
            _ => {}
        }
        if let Some(name) = s.strip_prefix("spec:") {
            return Ok(WorkloadSpec::Spec(name.to_owned()));
        }
        if let Some(rest) = s.strip_prefix("duty:") {
            let mut it = rest.split(':');
            let period = it.next().and_then(|v| v.parse::<f64>().ok());
            let busy = it.next().and_then(|v| v.parse::<f64>().ok());
            if let (Some(period_s), Some(busy), None) = (period, busy, it.next()) {
                return Ok(WorkloadSpec::Duty { period_s, busy });
            }
        }
        Err(SerrError::UnknownWorkload { name: s.to_owned() })
    }

    /// Materializes the workload's vulnerability trace.
    ///
    /// # Errors
    ///
    /// Propagates workload construction and simulation errors.
    pub fn trace(&self, cfg: &ExperimentConfig) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
        use serr_core::experiments as exp;
        match self {
            WorkloadSpec::Day => exp::synthesized_trace(Workload::Day, cfg),
            WorkloadSpec::Week => exp::synthesized_trace(Workload::Week, cfg),
            WorkloadSpec::Combined => exp::synthesized_trace(Workload::Combined, cfg),
            WorkloadSpec::Spec(name) => exp::spec_processor_trace(name, cfg),
            WorkloadSpec::Duty { period_s, busy } => {
                let t = serr_workload::synthesized::duty_cycle(
                    Seconds::new(*period_s),
                    *busy,
                    cfg.frequency,
                )?;
                Ok(Arc::new(t))
            }
        }
    }
}

/// A parsed `serr` invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Print AVF and the four MTTF estimates for one component.
    Mttf {
        /// The workload.
        workload: WorkloadSpec,
        /// Component raw error rate in errors/year.
        rate_per_year: f64,
        /// Monte Carlo trials.
        trials: u64,
    },
    /// SOFR cluster projection vs ground truth.
    Sofr {
        /// The workload each component runs.
        workload: WorkloadSpec,
        /// Per-component raw error rate in errors/year.
        rate_per_year: f64,
        /// Number of components.
        components: u64,
        /// Monte Carlo trials.
        trials: u64,
    },
    /// List available workloads and benchmark profiles.
    Workloads,
    /// Print usage.
    Help,
}

impl Command {
    /// Parses an argument vector (excluding `argv[0]`).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] on malformed arguments.
    pub fn parse<S: AsRef<str>>(args: &[S]) -> Result<Command, SerrError> {
        let mut it = args.iter().map(AsRef::as_ref);
        let sub = it.next().unwrap_or("help");
        match sub {
            "workloads" => Ok(Command::Workloads),
            "help" | "--help" | "-h" => Ok(Command::Help),
            "mttf" | "sofr" => {
                let mut workload: Option<WorkloadSpec> = None;
                let mut rate: Option<f64> = None;
                let mut components: u64 = 1;
                let mut trials: u64 = 100_000;
                while let Some(flag) = it.next() {
                    let mut value = |name: &str| {
                        it.next()
                            .map(str::to_owned)
                            .ok_or_else(|| SerrError::invalid_config(format!("{name} needs a value")))
                    };
                    match flag {
                        "--workload" | "-w" => {
                            workload = Some(WorkloadSpec::parse(&value("--workload")?)?);
                        }
                        "--rate" => {
                            rate = Some(parse_f64("--rate", &value("--rate")?)?);
                        }
                        "--n-s" => {
                            let prod = parse_f64("--n-s", &value("--n-s")?)?;
                            rate = Some(prod * serr_types::BASELINE_RAW_RATE_PER_BIT_PER_YEAR);
                        }
                        "--components" | "-c" => {
                            components = parse_f64("-c", &value("-c")?)? as u64;
                        }
                        "--trials" => {
                            trials = parse_f64("--trials", &value("--trials")?)? as u64;
                        }
                        other => {
                            return Err(SerrError::invalid_config(format!(
                                "unknown flag `{other}`"
                            )))
                        }
                    }
                }
                let workload = workload
                    .ok_or_else(|| SerrError::invalid_config("--workload is required"))?;
                let rate_per_year = rate.ok_or_else(|| {
                    SerrError::invalid_config("--rate <errors/year> or --n-s <product> is required")
                })?;
                if sub == "mttf" {
                    Ok(Command::Mttf { workload, rate_per_year, trials })
                } else {
                    if components < 1 {
                        return Err(SerrError::invalid_config("-c must be at least 1"));
                    }
                    Ok(Command::Sofr { workload, rate_per_year, components, trials })
                }
            }
            other => Err(SerrError::invalid_config(format!("unknown subcommand `{other}`"))),
        }
    }
}

fn parse_f64(name: &str, v: &str) -> Result<f64, SerrError> {
    v.parse::<f64>()
        .map_err(|_| SerrError::invalid_config(format!("{name}: `{v}` is not a number")))
}

/// Usage text.
pub const USAGE: &str = "\
serr — architecture-level soft error analysis (DSN 2007 reproduction)

USAGE:
  serr mttf --workload <W> (--rate <errors/year> | --n-s <N*S>) [--trials N]
  serr sofr --workload <W> (--rate <errors/year> | --n-s <N*S>) -c <count> [--trials N]
  serr workloads
  serr help

WORKLOADS <W>:
  day | week | combined | spec:<benchmark> | duty:<period_seconds>:<busy_fraction>

EXAMPLES:
  serr mttf --workload day --n-s 1e8
  serr mttf --workload spec:mcf --rate 1e-4
  serr sofr --workload week --n-s 1e8 -c 5000
";

/// Executes a parsed command, writing human-readable output to stdout.
///
/// # Errors
///
/// Propagates estimator errors.
pub fn run(cmd: &Command) -> Result<(), SerrError> {
    let cfg = ExperimentConfig { sim_instructions: 300_000, ..ExperimentConfig::quick() };
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Workloads => {
            println!("synthesized: day (24h, busy 12h)  week (7d, busy 5d)  combined (gzip+swim)");
            println!("parametric : duty:<period_seconds>:<busy_fraction>");
            println!("benchmarks (spec:<name>):");
            for p in BenchmarkProfile::all() {
                println!(
                    "  {:>9}  {:?}  branches {:.0}%  working set {} KiB{}",
                    p.name,
                    p.suite,
                    p.mix.branch * 100.0,
                    p.working_set_bytes / 1024,
                    if p.phases.is_some() { "  [phased]" } else { "" },
                );
            }
            Ok(())
        }
        Command::Mttf { workload, rate_per_year, trials } => {
            let trace = workload.trace(&cfg)?;
            let rate = RawErrorRate::per_year(*rate_per_year);
            let freq = cfg.frequency;
            let v = Validator::new(
                freq,
                MonteCarloConfig { trials: *trials, ..Default::default() },
            );
            let r = v.component(&trace, rate)?;
            println!("workload period : {}", Seconds::new(trace.period_cycles() as f64 / freq.hz()));
            println!("AVF             : {:.4}", r.avf);
            println!("MTTF, AVF step  : {}", r.mttf_avf.as_seconds());
            println!(
                "MTTF, MonteCarlo: {} (±{:.2}% at 95%)",
                r.mttf_mc.mttf.as_seconds(),
                r.mttf_mc.relative_ci95() * 100.0
            );
            println!("MTTF, renewal   : {}", r.mttf_renewal.as_seconds());
            println!("MTTF, SoftArch  : {}", r.mttf_softarch.as_seconds());
            println!("AVF-step error  : {:.2}% vs MC, {:.2}% vs exact",
                r.avf_error_vs_mc * 100.0, r.avf_error_vs_renewal * 100.0);
            Ok(())
        }
        Command::Sofr { workload, rate_per_year, components, trials } => {
            let trace = workload.trace(&cfg)?;
            let rate = RawErrorRate::per_year(*rate_per_year);
            let v = Validator::new(
                cfg.frequency,
                MonteCarloConfig { trials: *trials, ..Default::default() },
            );
            let r = v.system_identical(trace, rate, *components)?;
            println!("components      : {components}");
            println!("MTTF, SOFR      : {}", r.mttf_sofr.as_seconds());
            println!(
                "MTTF, MonteCarlo: {} (±{:.2}% at 95%)",
                r.mttf_mc.mttf.as_seconds(),
                r.mttf_mc.relative_ci95() * 100.0
            );
            println!("MTTF, renewal   : {}", r.mttf_renewal.as_seconds());
            println!("MTTF, SoftArch  : {}", r.mttf_softarch.as_seconds());
            println!("SOFR-step error : {:.2}% vs MC, {:.2}% vs exact",
                r.sofr_error_vs_mc * 100.0, r.sofr_error_vs_renewal * 100.0);
            if r.sofr_error_vs_renewal > 0.10 {
                println!("warning: SOFR is unreliable for this configuration (see DSN'07)");
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_specs_parse() {
        assert_eq!(WorkloadSpec::parse("day").unwrap(), WorkloadSpec::Day);
        assert_eq!(WorkloadSpec::parse("week").unwrap(), WorkloadSpec::Week);
        assert_eq!(WorkloadSpec::parse("combined").unwrap(), WorkloadSpec::Combined);
        assert_eq!(
            WorkloadSpec::parse("spec:mcf").unwrap(),
            WorkloadSpec::Spec("mcf".into())
        );
        assert_eq!(
            WorkloadSpec::parse("duty:3600:0.25").unwrap(),
            WorkloadSpec::Duty { period_s: 3600.0, busy: 0.25 }
        );
        assert!(WorkloadSpec::parse("quake").is_err());
        assert!(WorkloadSpec::parse("duty:1:2:3").is_err());
        assert!(WorkloadSpec::parse("duty:x:0.5").is_err());
    }

    #[test]
    fn commands_parse() {
        let cmd = Command::parse(&["mttf", "--workload", "day", "--n-s", "1e8"]).unwrap();
        assert_eq!(
            cmd,
            Command::Mttf {
                workload: WorkloadSpec::Day,
                rate_per_year: 1.0,
                trials: 100_000
            }
        );
        let cmd = Command::parse(&[
            "sofr", "-w", "week", "--rate", "2.5", "-c", "5000", "--trials", "5000",
        ])
        .unwrap();
        assert_eq!(
            cmd,
            Command::Sofr {
                workload: WorkloadSpec::Week,
                rate_per_year: 2.5,
                components: 5000,
                trials: 5000
            }
        );
        assert_eq!(Command::parse(&["workloads"]).unwrap(), Command::Workloads);
        assert_eq!(Command::parse::<&str>(&[]).unwrap(), Command::Help);
        assert_eq!(Command::parse(&["--help"]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_errors_are_actionable() {
        for bad in [
            vec!["mttf"],
            vec!["mttf", "--workload", "day"],
            vec!["mttf", "--workload"],
            vec!["mttf", "--workload", "day", "--rate", "abc"],
            vec!["mttf", "--workload", "day", "--rate", "1", "--bogus", "1"],
            vec!["frobnicate"],
        ] {
            let e = Command::parse(&bad).unwrap_err();
            assert!(matches!(
                e,
                SerrError::InvalidConfig { .. } | SerrError::UnknownWorkload { .. }
            ));
        }
    }

    #[test]
    fn run_mttf_on_duty_workload() {
        // End-to-end through the CLI layer on a tiny config.
        let cmd = Command::parse(&[
            "mttf", "--workload", "duty:0.001:0.5", "--rate", "1e6", "--trials", "2000",
        ])
        .unwrap();
        run(&cmd).unwrap();
    }
}
