//! The `serr` command-line tool: soft-error MTTF estimation over the
//! paper's workloads. See `soft_error_analysis::cli::USAGE`.

use soft_error_analysis::cli::{run, Command, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match Command::parse(&args) {
        Ok(cmd) => {
            if let Err(e) = run(&cmd) {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    }
}
