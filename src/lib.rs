//! Umbrella library for the soft-error-analysis workspace: re-exports the
//! component crates and hosts the `serr` command-line tool's argument
//! model.
//!
//! Most users want a component crate directly (start with
//! [`serr_core::prelude`]); this crate exists so the repository root can
//! carry runnable examples, cross-crate integration tests, and the CLI.

#![warn(missing_docs)]

pub use serr_analytic as analytic;
pub use serr_core as core;
pub use serr_mc as mc;
pub use serr_numeric as numeric;
pub use serr_serve as serve;
pub use serr_sim as sim;
pub use serr_softarch as softarch;
pub use serr_trace as trace;
pub use serr_types as types;
pub use serr_workload as workload;

pub mod cli;
