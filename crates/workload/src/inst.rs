//! The instruction model consumed by the timing simulator.

use serde::{Deserialize, Serialize};

/// An architectural register identifier.
///
/// The simulated ISA has 32 integer and 32 floating-point architectural
/// registers; the renamer in `serr-sim` maps these onto the 256-entry
/// physical file of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum RegId {
    /// Integer register `Ri`.
    Int(u8),
    /// Floating-point register `Fi`.
    Fp(u8),
}

impl RegId {
    /// Number of architectural registers per bank.
    pub const BANK_SIZE: u8 = 32;

    /// A dense index in `0..64` (integer bank first).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            RegId::Int(i) => i as usize,
            RegId::Fp(i) => Self::BANK_SIZE as usize + i as usize,
        }
    }

    /// Total number of architectural registers across both banks.
    #[must_use]
    pub const fn universe() -> usize {
        2 * Self::BANK_SIZE as usize
    }
}

/// Operation classes matching the functional units and latencies of the
/// paper's Table 1 (integer add/multiply/divide at 1/4/35 cycles; FP default
/// 5, divide 28; loads/stores through the memory hierarchy; branches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer ALU operation (1 cycle).
    IntAlu,
    /// Integer multiply (4 cycles).
    IntMul,
    /// Integer divide (35 cycles).
    IntDiv,
    /// Floating-point add/multiply-class operation (5 cycles, pipelined).
    FpOp,
    /// Floating-point divide (28 cycles, pipelined per Table 1).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
}

impl OpClass {
    /// Whether this op executes on an integer unit.
    #[must_use]
    pub fn is_integer(self) -> bool {
        matches!(self, OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv)
    }

    /// Whether this op executes on a floating-point unit.
    #[must_use]
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpOp | OpClass::FpDiv)
    }

    /// Whether this op is a load.
    #[must_use]
    pub fn is_load(self) -> bool {
        matches!(self, OpClass::Load)
    }

    /// Whether this op accesses memory.
    #[must_use]
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether this op is a branch.
    #[must_use]
    pub fn is_branch(self) -> bool {
        matches!(self, OpClass::Branch)
    }
}

/// Control-flow information carried by branch instructions.
///
/// Branches reference a static *site* (the branch's address identity) so
/// that history-based predictors in the simulator see realistic per-site
/// direction bias, carry the *actual* direction taken (traces are execution
/// traces), and an annotation-mode misprediction hint drawn at the
/// profile's rate for simulators that skip predictor modeling (the paper's
/// approach).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Static branch site identifier (stable across dynamic instances).
    pub site: u32,
    /// Whether the branch is taken on this execution.
    pub taken: bool,
    /// Statistical misprediction annotation (used when the simulator is
    /// configured with `BranchPredictorKind::TraceAnnotation`).
    pub mispredict_hint: bool,
}

/// One instruction of a workload trace.
///
/// Traces are *execution* traces (the path actually taken), as consumed by
/// trace-driven simulators like Turandot: branch outcomes are part of the
/// trace and misprediction is either annotated statistically or decided by
/// a modeled predictor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Instruction {
    /// Operation class.
    pub op: OpClass,
    /// Up to two source registers.
    pub srcs: [Option<RegId>; 2],
    /// Destination register, if the op writes one.
    pub dst: Option<RegId>,
    /// Effective address for loads/stores.
    pub mem_addr: Option<u64>,
    /// Control-flow information; present iff `op` is a branch.
    pub branch: Option<BranchInfo>,
}

impl Instruction {
    /// A register-to-register ALU instruction.
    #[must_use]
    pub fn alu(op: OpClass, dst: RegId, srcs: [Option<RegId>; 2]) -> Self {
        debug_assert!(!op.is_memory() && !op.is_branch());
        Instruction { op, srcs, dst: Some(dst), mem_addr: None, branch: None }
    }

    /// A load from `addr` into `dst`.
    #[must_use]
    pub fn load(dst: RegId, addr_reg: Option<RegId>, addr: u64) -> Self {
        Instruction {
            op: OpClass::Load,
            srcs: [addr_reg, None],
            dst: Some(dst),
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// A store of `src` to `addr`.
    #[must_use]
    pub fn store(src: RegId, addr_reg: Option<RegId>, addr: u64) -> Self {
        Instruction {
            op: OpClass::Store,
            srcs: [Some(src), addr_reg],
            dst: None,
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// A branch at `site`, with its executed direction and an
    /// annotation-mode misprediction hint.
    #[must_use]
    pub fn branch(cond: Option<RegId>, info: BranchInfo) -> Self {
        Instruction {
            op: OpClass::Branch,
            srcs: [cond, None],
            dst: None,
            mem_addr: None,
            branch: Some(info),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_indices_are_dense_and_unique() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..RegId::BANK_SIZE {
            assert!(seen.insert(RegId::Int(i).index()));
            assert!(seen.insert(RegId::Fp(i).index()));
        }
        assert_eq!(seen.len(), RegId::universe());
        assert!(seen.iter().all(|&i| i < RegId::universe()));
    }

    #[test]
    fn op_class_predicates_partition() {
        use OpClass::*;
        for op in [IntAlu, IntMul, IntDiv, FpOp, FpDiv, Load, Store, Branch] {
            let cats = [op.is_integer(), op.is_fp(), op.is_memory(), op.is_branch()];
            assert_eq!(cats.iter().filter(|&&b| b).count(), 1, "{op:?}");
        }
    }

    #[test]
    fn constructors_set_fields() {
        let l = Instruction::load(RegId::Int(3), Some(RegId::Int(1)), 0x1000);
        assert!(l.op.is_load());
        assert_eq!(l.mem_addr, Some(0x1000));
        assert_eq!(l.dst, Some(RegId::Int(3)));

        let s = Instruction::store(RegId::Fp(2), None, 64);
        assert_eq!(s.dst, None);
        assert_eq!(s.srcs[0], Some(RegId::Fp(2)));

        let b = Instruction::branch(
            Some(RegId::Int(0)),
            BranchInfo { site: 9, taken: true, mispredict_hint: true },
        );
        let info = b.branch.expect("branch info present");
        assert!(info.mispredict_hint && info.taken);
        assert_eq!(info.site, 9);
        assert!(b.op.is_branch());

        let a = Instruction::alu(OpClass::IntMul, RegId::Int(5), [Some(RegId::Int(1)), None]);
        assert_eq!(a.dst, Some(RegId::Int(5)));
        assert!(a.op.is_integer());
    }
}
