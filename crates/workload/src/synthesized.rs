//! The paper's synthesized long-horizon workloads (Section 4.2).
//!
//! > "The first (called *day*) is a continuous loop where the loop iteration
//! > size is set to 24 hours. The loop is busy during the day (half the
//! > time) and idle at night. The second (called *week*) is a loop with
//! > iteration size one week. It is busy during the five business days of
//! > the week and idle for the weekend. The third (called *combined*)
//! > concatenates two SPEC benchmarks in a loop with iteration size of 24
//! > hours."

use std::sync::Arc;

use serr_trace::{ConcatTrace, IntervalTrace, VulnerabilityTrace};
use serr_types::{Frequency, Seconds, SerrError};

/// The `day` workload: a 24-hour loop, fully busy for the first 12 hours,
/// idle for the rest.
///
/// # Panics
///
/// Never panics for a valid frequency.
///
/// ```
/// use serr_trace::VulnerabilityTrace;
/// use serr_types::Frequency;
/// let t = serr_workload::synthesized::day(Frequency::base());
/// assert_eq!(t.avf(), 0.5);
/// assert_eq!(t.period_cycles(), 24 * 3600 * 2_000_000_000);
/// ```
#[must_use]
pub fn day(freq: Frequency) -> IntervalTrace {
    duty_cycle(Seconds::from_hours(24.0), 0.5, freq).expect("day workload parameters are valid")
}

/// The `week` workload: a 7-day loop, busy for the 5 business days, idle for
/// the weekend.
#[must_use]
pub fn week(freq: Frequency) -> IntervalTrace {
    duty_cycle(Seconds::from_days(7.0), 5.0 / 7.0, freq)
        .expect("week workload parameters are valid")
}

/// A general periodic busy/idle workload: a loop of `period` with the first
/// `busy_fraction` of it fully vulnerable.
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] if `busy_fraction` is outside
/// `(0, 1]` or the period is non-finite or shorter than one cycle.
pub fn duty_cycle(
    period: Seconds,
    busy_fraction: f64,
    freq: Frequency,
) -> Result<IntervalTrace, SerrError> {
    if !(busy_fraction > 0.0 && busy_fraction <= 1.0) {
        return Err(SerrError::invalid_config(format!(
            "busy fraction must be in (0,1], got {busy_fraction}"
        )));
    }
    let total = period.to_cycles(freq);
    // The finiteness check runs first so NaN (never finite) cannot slip
    // past the `<` comparison and underflow the idle-cycle subtraction
    // below; an infinite period cannot be a loop iteration either.
    if !total.is_finite() || total < 1.0 {
        return Err(SerrError::invalid_config(format!(
            "workload period must be finite and at least one cycle, got {} cycles",
            total
        )));
    }
    let total = total as u64;
    let busy = ((total as f64 * busy_fraction) as u64).max(1);
    IntervalTrace::busy_idle(busy, total - busy)
}

/// The `combined` workload: a 24-hour loop running workload `a` for the
/// first 12 hours and workload `b` for the second 12 (each tiled from its
/// own iteration-level masking trace, e.g. two simulated SPEC benchmarks).
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] if either benchmark trace is longer
/// than 12 hours of cycles.
pub fn combined(
    a: Arc<dyn VulnerabilityTrace>,
    b: Arc<dyn VulnerabilityTrace>,
    freq: Frequency,
) -> Result<ConcatTrace, SerrError> {
    let half = Seconds::from_hours(12.0).to_cycles(freq) as u64;
    ConcatTrace::two_phase(a, half, b, half)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_and_week_match_paper_description() {
        let f = Frequency::base();
        let d = day(f);
        assert_eq!(d.period_cycles(), (86_400.0 * f.hz()) as u64);
        assert_eq!(d.avf(), 0.5);
        // Busy at 6am, idle at 6pm (first half busy).
        assert_eq!(d.vulnerability_at((6.0 * 3600.0 * f.hz()) as u64), 1.0);
        assert_eq!(d.vulnerability_at((18.0 * 3600.0 * f.hz()) as u64), 0.0);

        let w = week(f);
        assert_eq!(w.period_cycles(), (7.0 * 86_400.0 * f.hz()) as u64);
        assert!((w.avf() - 5.0 / 7.0).abs() < 1e-9);
        // Busy on Wednesday, idle on Sunday.
        assert_eq!(w.vulnerability_at((2.5 * 86_400.0 * f.hz()) as u64), 1.0);
        assert_eq!(w.vulnerability_at((6.5 * 86_400.0 * f.hz()) as u64), 0.0);
    }

    #[test]
    fn duty_cycle_respects_fraction() {
        let f = Frequency::ghz(1.0);
        let t = duty_cycle(Seconds::new(100.0), 0.25, f).unwrap();
        assert!((t.avf() - 0.25).abs() < 1e-9);
        assert!(duty_cycle(Seconds::new(100.0), 0.0, f).is_err());
        assert!(duty_cycle(Seconds::new(100.0), 1.5, f).is_err());
        assert!(duty_cycle(Seconds::new(100.0), f64::NAN, f).is_err());
        assert!(duty_cycle(Seconds::new(1e-10), 0.5, f).is_err());
        assert!(duty_cycle(Seconds::new(f64::INFINITY), 0.5, f).is_err());
    }

    #[test]
    fn combined_tiles_two_benchmarks() {
        let f = Frequency::base();
        // Two toy "benchmark" traces with different utilization.
        let a: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::busy_idle(800_000, 200_000).unwrap());
        let b: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::busy_idle(100_000, 900_000).unwrap());
        let c = combined(a, b, f).unwrap();
        // 24h of cycles (rounded down to whole benchmark iterations).
        let day_cycles = (86_400.0 * f.hz()) as u64;
        assert!(c.period_cycles() <= day_cycles);
        assert!(c.period_cycles() > day_cycles - 2_000_000);
        // Overall AVF is the average of the halves.
        assert!((c.avf() - 0.45).abs() < 1e-6);
        // First half behaves like benchmark a, second like b.
        assert_eq!(c.vulnerability_at(0), 1.0);
        let in_b = c.period_cycles() - 1_000_000 + 500_000;
        assert_eq!(c.vulnerability_at(in_b), 0.0);
    }
}
