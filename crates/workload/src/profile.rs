//! Synthetic benchmark profiles imitating the SPEC CPU2000 programs the
//! paper evaluates (9 integer + 12 floating-point, Section 4.1).

use serde::{Deserialize, Serialize};
use serr_types::SerrError;

/// Which SPEC suite a profile imitates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPEC CPU2000 integer.
    Int,
    /// SPEC CPU2000 floating point.
    Fp,
}

/// Fractions of each operation class in the dynamic instruction stream.
/// Must sum to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InstructionMix {
    /// Integer ALU ops.
    pub int_alu: f64,
    /// Integer multiplies.
    pub int_mul: f64,
    /// Integer divides.
    pub int_div: f64,
    /// FP add/mul-class ops.
    pub fp_op: f64,
    /// FP divides.
    pub fp_div: f64,
    /// Loads.
    pub load: f64,
    /// Stores.
    pub store: f64,
    /// Branches.
    pub branch: f64,
}

impl InstructionMix {
    /// Validates that the fractions are non-negative and sum to 1 (±1e-9).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] otherwise.
    pub fn validate(&self) -> Result<(), SerrError> {
        let parts = [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_op,
            self.fp_div,
            self.load,
            self.store,
            self.branch,
        ];
        if parts.iter().any(|&p| p < 0.0) {
            return Err(SerrError::invalid_config("instruction mix fractions must be >= 0"));
        }
        let total: f64 = parts.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(SerrError::invalid_config(format!(
                "instruction mix sums to {total}, expected 1"
            )));
        }
        Ok(())
    }

    /// The fractions as an array in [`crate::OpClass`] declaration order.
    #[must_use]
    pub fn as_array(&self) -> [f64; 8] {
        [
            self.int_alu,
            self.int_mul,
            self.int_div,
            self.fp_op,
            self.fp_div,
            self.load,
            self.store,
            self.branch,
        ]
    }
}

/// Coarse program-phase behavior: real SPEC programs alternate between
/// compute-dense and memory-bound stages at 10⁶–10⁸ instruction
/// granularity (the observation behind SimPoint-style sampling). During a
/// memory phase the generator abandons spatial locality and shortens
/// dependency distances, collapsing IPC and with it unit utilization — the
/// coarse masking-trace structure that makes long-horizon AVF/SOFR
/// questions interesting for SPEC-class workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PhaseBehavior {
    /// Instructions per full compute+memory phase cycle.
    pub period_instructions: u64,
    /// Fraction of the cycle spent in the memory-bound phase.
    pub memory_fraction: f64,
}

impl PhaseBehavior {
    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for a zero period or a fraction
    /// outside `(0, 1)`.
    pub fn validate(&self) -> Result<(), SerrError> {
        if self.period_instructions == 0 {
            return Err(SerrError::invalid_config("phase period must be positive"));
        }
        if !(self.memory_fraction > 0.0 && self.memory_fraction < 1.0) {
            return Err(SerrError::invalid_config("memory fraction must be in (0,1)"));
        }
        Ok(())
    }
}

/// A synthetic stand-in for one SPEC CPU2000 program.
///
/// The parameters shape the masking traces the timing simulator produces:
/// the mix drives unit utilization (integer/FP/decode busy cycles), the
/// dependency distance throttles ILP, misprediction and memory-locality
/// parameters create stalls that idle the units.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// The SPEC program this profile imitates (e.g. `"gzip"`).
    pub name: &'static str,
    /// Which suite the program belongs to.
    pub suite: Suite,
    /// Dynamic instruction mix.
    pub mix: InstructionMix,
    /// Mean register dependency distance in instructions (geometric).
    pub mean_dep_distance: f64,
    /// Fraction of branches the front end mispredicts.
    pub branch_mispredict_rate: f64,
    /// Bytes of the synthetic working set (drives cache miss rates).
    pub working_set_bytes: u64,
    /// Probability that a memory access continues sequentially from the
    /// previous one (vs. jumping randomly within the working set).
    pub spatial_locality: f64,
    /// Coarse program-phase behavior, if the program exhibits it.
    pub phases: Option<PhaseBehavior>,
}

impl BenchmarkProfile {
    /// Validates all parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] on any out-of-range parameter.
    pub fn validate(&self) -> Result<(), SerrError> {
        self.mix.validate()?;
        if self.mean_dep_distance < 1.0 {
            return Err(SerrError::invalid_config("mean dependency distance must be >= 1"));
        }
        if !(0.0..=1.0).contains(&self.branch_mispredict_rate) {
            return Err(SerrError::invalid_config("mispredict rate must be in [0,1]"));
        }
        if !(0.0..=1.0).contains(&self.spatial_locality) {
            return Err(SerrError::invalid_config("spatial locality must be in [0,1]"));
        }
        if self.working_set_bytes < 64 {
            return Err(SerrError::invalid_config("working set must be at least one line"));
        }
        if let Some(p) = &self.phases {
            p.validate()?;
        }
        Ok(())
    }

    /// The nine SPECint profiles the paper uses.
    #[must_use]
    pub fn spec_int() -> Vec<BenchmarkProfile> {
        fn p(
            name: &'static str,
            mix: InstructionMix,
            dep: f64,
            br_miss: f64,
            ws_kb: u64,
            locality: f64,
        ) -> BenchmarkProfile {
            BenchmarkProfile {
                name,
                suite: Suite::Int,
                mix,
                mean_dep_distance: dep,
                branch_mispredict_rate: br_miss,
                working_set_bytes: ws_kb * 1024,
                spatial_locality: locality,
                phases: None,
            }
        }
        let m = |int_alu, int_mul, int_div, load, store, branch| InstructionMix {
            int_alu,
            int_mul,
            int_div,
            fp_op: 0.0,
            fp_div: 0.0,
            load,
            store,
            branch,
        };
        let mut v = vec![
            // Compression: tight loops, good locality, moderate branches.
            p("gzip", m(0.45, 0.01, 0.00, 0.24, 0.12, 0.18), 4.0, 0.06, 192, 0.85),
            // FPGA place & route: pointer-heavy, moderate working set.
            p("vpr", m(0.42, 0.02, 0.01, 0.28, 0.11, 0.16), 5.0, 0.09, 1024, 0.55),
            // Compiler: branchy, irregular.
            p("gcc", m(0.40, 0.01, 0.00, 0.26, 0.14, 0.19), 5.5, 0.08, 2048, 0.50),
            // Min-cost flow: notoriously memory-bound pointer chasing.
            p("mcf", m(0.35, 0.00, 0.00, 0.35, 0.09, 0.21), 3.0, 0.10, 65536, 0.15),
            // Chess: compute-dense, predictable branches.
            p("crafty", m(0.50, 0.02, 0.00, 0.24, 0.09, 0.15), 4.5, 0.07, 512, 0.70),
            // Natural-language parser: branchy with pointer structures.
            p("parser", m(0.41, 0.01, 0.00, 0.27, 0.12, 0.19), 4.5, 0.09, 8192, 0.45),
            // Perl interpreter: dispatch-heavy indirect branches.
            p("perlbmk", m(0.43, 0.01, 0.00, 0.26, 0.13, 0.17), 5.0, 0.11, 4096, 0.55),
            // Group theory: integer multiply heavy.
            p("gap", m(0.44, 0.05, 0.01, 0.25, 0.10, 0.15), 5.0, 0.06, 8192, 0.60),
            // Compression (Burrows-Wheeler): sequential scans.
            p("bzip2", m(0.46, 0.01, 0.00, 0.26, 0.11, 0.16), 4.0, 0.07, 4096, 0.80),
        ];
        // Programs with pronounced phase behavior (per SimPoint-era
        // characterization studies).
        for prog in &mut v {
            let phases = match prog.name {
                "gcc" => {
                    Some(PhaseBehavior { period_instructions: 2_000_000, memory_fraction: 0.35 })
                }
                "mcf" => {
                    Some(PhaseBehavior { period_instructions: 3_000_000, memory_fraction: 0.60 })
                }
                "bzip2" => {
                    Some(PhaseBehavior { period_instructions: 1_500_000, memory_fraction: 0.30 })
                }
                _ => None,
            };
            prog.phases = phases;
        }
        v
    }

    /// The twelve SPECfp profiles the paper uses.
    #[must_use]
    pub fn spec_fp() -> Vec<BenchmarkProfile> {
        fn p(
            name: &'static str,
            mix: InstructionMix,
            dep: f64,
            br_miss: f64,
            ws_kb: u64,
            locality: f64,
        ) -> BenchmarkProfile {
            BenchmarkProfile {
                name,
                suite: Suite::Fp,
                mix,
                mean_dep_distance: dep,
                branch_mispredict_rate: br_miss,
                working_set_bytes: ws_kb * 1024,
                spatial_locality: locality,
                phases: None,
            }
        }
        let m = |int_alu, fp_op, fp_div, load, store, branch| InstructionMix {
            int_alu,
            int_mul: 0.01,
            int_div: 0.0,
            fp_op,
            fp_div,
            load,
            store,
            branch,
        };
        let mut v = vec![
            // Quantum chromodynamics: dense FP kernels.
            p("wupwise", m(0.17, 0.38, 0.01, 0.29, 0.10, 0.04), 7.0, 0.02, 16384, 0.90),
            // Shallow water: long vectorizable loops, streaming.
            p("swim", m(0.14, 0.40, 0.00, 0.31, 0.11, 0.03), 8.0, 0.01, 32768, 0.95),
            // Multigrid solver: streaming with strided reuse.
            p("mgrid", m(0.15, 0.42, 0.00, 0.30, 0.09, 0.03), 8.0, 0.01, 24576, 0.92),
            // Parabolic PDEs: dense linear algebra.
            p("applu", m(0.16, 0.39, 0.02, 0.29, 0.10, 0.03), 7.5, 0.02, 24576, 0.90),
            // OpenGL rendering: mixed int/FP with more branches.
            p("mesa", m(0.30, 0.24, 0.01, 0.27, 0.11, 0.06), 5.5, 0.04, 2048, 0.75),
            // Neural-net image recognition: small kernel, tiny working set.
            p("art", m(0.20, 0.34, 0.00, 0.33, 0.08, 0.04), 5.0, 0.02, 4096, 0.60),
            // Earthquake simulation: sparse matrix-vector, poor locality.
            p("equake", m(0.22, 0.30, 0.01, 0.33, 0.09, 0.04), 6.0, 0.03, 32768, 0.40),
            // Face recognition: FFT-style kernels.
            p("facerec", m(0.19, 0.36, 0.01, 0.29, 0.10, 0.04), 6.5, 0.03, 8192, 0.80),
            // Computational chemistry: divide-heavy FP.
            p("ammp", m(0.21, 0.31, 0.04, 0.30, 0.09, 0.04), 6.0, 0.03, 16384, 0.65),
            // Number theory (Lucas-Lehmer): FFT multiply, streaming.
            p("lucas", m(0.16, 0.41, 0.00, 0.29, 0.10, 0.03), 8.0, 0.01, 16384, 0.93),
            // Crash simulation: irregular FP with branches.
            p("fma3d", m(0.24, 0.29, 0.01, 0.29, 0.11, 0.05), 6.0, 0.04, 16384, 0.70),
            // Particle accelerator: loop-nest FP.
            p("sixtrack", m(0.20, 0.37, 0.02, 0.27, 0.09, 0.04), 7.0, 0.02, 8192, 0.85),
        ];
        for prog in &mut v {
            let phases = match prog.name {
                "art" => {
                    Some(PhaseBehavior { period_instructions: 2_000_000, memory_fraction: 0.45 })
                }
                "equake" => {
                    Some(PhaseBehavior { period_instructions: 3_000_000, memory_fraction: 0.50 })
                }
                _ => None,
            };
            prog.phases = phases;
        }
        v
    }

    /// All 21 profiles, integer suite first.
    #[must_use]
    pub fn all() -> Vec<BenchmarkProfile> {
        let mut v = Self::spec_int();
        v.extend(Self::spec_fp());
        v
    }

    /// Looks a profile up by SPEC program name.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::UnknownWorkload`] if no profile has that name.
    pub fn by_name(name: &str) -> Result<BenchmarkProfile, SerrError> {
        Self::all()
            .into_iter()
            .find(|p| p.name == name)
            .ok_or_else(|| SerrError::UnknownWorkload { name: name.to_owned() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_counts_nine_int_twelve_fp() {
        assert_eq!(BenchmarkProfile::spec_int().len(), 9);
        assert_eq!(BenchmarkProfile::spec_fp().len(), 12);
        assert_eq!(BenchmarkProfile::all().len(), 21);
    }

    #[test]
    fn every_profile_validates() {
        for p in BenchmarkProfile::all() {
            p.validate().unwrap_or_else(|e| panic!("{}: {e}", p.name));
        }
    }

    #[test]
    fn names_are_unique() {
        let names: std::collections::HashSet<_> =
            BenchmarkProfile::all().iter().map(|p| p.name).collect();
        assert_eq!(names.len(), 21);
    }

    #[test]
    fn lookup_by_name() {
        let p = BenchmarkProfile::by_name("swim").unwrap();
        assert_eq!(p.suite, Suite::Fp);
        assert!(BenchmarkProfile::by_name("doom").is_err());
    }

    #[test]
    fn suites_have_characteristic_mixes() {
        for p in BenchmarkProfile::spec_int() {
            assert_eq!(p.mix.fp_op + p.mix.fp_div, 0.0, "{} should not use FP", p.name);
            assert!(p.mix.branch >= 0.10, "{} int code is branchy", p.name);
        }
        for p in BenchmarkProfile::spec_fp() {
            assert!(p.mix.fp_op > 0.2, "{} should be FP-heavy", p.name);
            assert!(p.mix.branch <= 0.10, "{} fp code has few branches", p.name);
        }
    }

    #[test]
    fn mix_validation_catches_errors() {
        let mut mix = BenchmarkProfile::by_name("gzip").unwrap().mix;
        mix.load += 0.5;
        assert!(mix.validate().is_err());
        mix.load -= 1.0;
        assert!(mix.validate().is_err());
    }
}
