//! Deterministic synthetic instruction-trace generation.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::{BenchmarkProfile, BranchInfo, Instruction, OpClass, RegId};

/// Cache-line size assumed by the address generator (matches Table 1's
/// 128-byte lines).
const LINE: u64 = 128;

/// Registers `BANK_SIZE - PINNED ..` of each bank hold long-lived values
/// (loop-carried variables, base pointers): they are read throughout the
/// program and rarely rewritten, giving register-file values realistic
/// lifetimes.
const PINNED: u8 = 4;
/// Probability a source operand names a pinned register.
const PINNED_READ_PROB: f64 = 0.15;
/// Probability an ALU result refreshes a pinned register.
const PINNED_WRITE_PROB: f64 = 0.002;

/// Static branch sites per program. Real programs execute a few hundred hot
/// branches; per-site direction bias is what lets history-based predictors
/// work.
const BRANCH_SITES: usize = 512;

/// An infinite, deterministic stream of instructions statistically matching
/// a [`BenchmarkProfile`].
///
/// Dependencies are modeled by drawing each source register from the
/// destination written a geometrically distributed number of instructions
/// ago; memory addresses mix sequential striding with uniform jumps inside
/// the profile's working set; branches are marked mispredicted at the
/// profile's rate.
///
/// ```
/// use serr_workload::{BenchmarkProfile, TraceGenerator};
/// let p = BenchmarkProfile::by_name("swim").unwrap();
/// let a: Vec<_> = TraceGenerator::new(p.clone(), 7).take(100).collect();
/// let b: Vec<_> = TraceGenerator::new(p, 7).take(100).collect();
/// assert_eq!(a, b); // same seed, same trace
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    rng: SmallRng,
    /// Cumulative mix thresholds for op-class selection.
    cdf: [f64; 8],
    /// Ring buffer of recent destination registers, newest last.
    recent_dsts: Vec<RegId>,
    /// Rolling cursor for sequential memory accesses.
    next_addr: u64,
    /// Round-robin destination allocation cursors.
    next_int_dst: u8,
    next_fp_dst: u8,
    /// Instructions emitted so far (drives program-phase alternation).
    emitted: u64,
    /// Per-site taken probability; most sites are strongly biased (the
    /// empirical bimodality of real branch behavior).
    branch_bias: Vec<f64>,
}

impl TraceGenerator {
    /// Maximum dependency distance tracked.
    const WINDOW: usize = 64;

    /// Creates a generator for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails validation; construct profiles through
    /// [`BenchmarkProfile`] to avoid this.
    #[must_use]
    pub fn new(profile: BenchmarkProfile, seed: u64) -> Self {
        profile.validate().expect("invalid benchmark profile");
        let mix = profile.mix.as_array();
        let mut cdf = [0.0; 8];
        let mut acc = 0.0;
        for (slot, frac) in cdf.iter_mut().zip(mix) {
            acc += frac;
            *slot = acc;
        }
        cdf[7] = 1.0 + 1e-12; // guard against rounding at the top
        let mut rng = SmallRng::seed_from_u64(seed);
        let branch_bias = (0..BRANCH_SITES)
            .map(|_| {
                // ~80% of sites strongly biased (taken or not-taken loops
                // and guards), the rest genuinely data-dependent.
                let u: f64 = rng.gen_range(0.0..1.0);
                if u < 0.4 {
                    rng.gen_range(0.90..0.995) // loop back-edges
                } else if u < 0.8 {
                    rng.gen_range(0.005..0.10) // rarely-taken guards
                } else {
                    rng.gen_range(0.25..0.75) // data-dependent
                }
            })
            .collect();
        TraceGenerator {
            profile,
            rng,
            cdf,
            recent_dsts: Vec::with_capacity(Self::WINDOW),
            next_addr: 0,
            next_int_dst: 0,
            next_fp_dst: 0,
            emitted: 0,
            branch_bias,
        }
    }

    /// The profile this generator imitates.
    #[must_use]
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Whether the program is currently inside its memory-bound phase
    /// (always false for profiles without [`crate::PhaseBehavior`]).
    #[must_use]
    pub fn in_memory_phase(&self) -> bool {
        match &self.profile.phases {
            Some(p) => {
                let pos = self.emitted % p.period_instructions;
                // The memory phase occupies the tail of each cycle.
                pos >= ((1.0 - p.memory_fraction) * p.period_instructions as f64) as u64
            }
            None => false,
        }
    }

    fn pick_op(&mut self) -> OpClass {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let idx = self.cdf.iter().position(|&t| u < t).unwrap_or(7);
        let op = [
            OpClass::IntAlu,
            OpClass::IntMul,
            OpClass::IntDiv,
            OpClass::FpOp,
            OpClass::FpDiv,
            OpClass::Load,
            OpClass::Store,
            OpClass::Branch,
        ][idx];
        // Memory phases are pointer chasing, not numerics: FP work is
        // displaced by loads and address arithmetic, idling the FP units
        // for the whole phase — the long-idle-window structure that makes
        // SPEC-class traces interesting at cluster scale.
        if op.is_fp() && self.in_memory_phase() {
            return if self.rng.gen_range(0.0..1.0) < 0.7 {
                OpClass::Load
            } else {
                OpClass::IntAlu
            };
        }
        op
    }

    /// Draws a source from the dependency-distance distribution, falling
    /// back to a random register when history is short. A small fraction of
    /// reads name the pinned long-lived registers.
    fn pick_src(&mut self, want_fp: bool) -> RegId {
        if self.rng.gen_range(0.0..1.0) < PINNED_READ_PROB {
            let r = RegId::BANK_SIZE - 1 - self.rng.gen_range(0..PINNED);
            return if want_fp { RegId::Fp(r) } else { RegId::Int(r) };
        }
        // Geometric with mean `mean_dep_distance` (shortened in memory
        // phases).
        let p = 1.0 / self.current_dep_distance();
        let u: f64 = self.rng.gen_range(f64::MIN_POSITIVE..1.0);
        let dist = (u.ln() / (1.0 - p).max(1e-12).ln()).floor() as usize + 1;
        if dist <= self.recent_dsts.len() {
            let candidate = self.recent_dsts[self.recent_dsts.len() - dist];
            // Keep bank affinity plausible: FP ops read FP registers.
            match (want_fp, candidate) {
                (true, RegId::Fp(_)) | (false, RegId::Int(_)) => return candidate,
                _ => {}
            }
        }
        let r = self.rng.gen_range(0..RegId::BANK_SIZE);
        if want_fp {
            RegId::Fp(r)
        } else {
            RegId::Int(r)
        }
    }

    fn alloc_dst(&mut self, fp: bool) -> RegId {
        // Occasionally refresh a pinned long-lived register; otherwise
        // round-robin over the short-lived range.
        if self.rng.gen_range(0.0..1.0) < PINNED_WRITE_PROB {
            let r = RegId::BANK_SIZE - 1 - self.rng.gen_range(0..PINNED);
            return if fp { RegId::Fp(r) } else { RegId::Int(r) };
        }
        let wrap = RegId::BANK_SIZE - PINNED;
        if fp {
            let r = RegId::Fp(self.next_fp_dst);
            self.next_fp_dst = (self.next_fp_dst + 1) % wrap;
            r
        } else {
            let r = RegId::Int(self.next_int_dst);
            self.next_int_dst = (self.next_int_dst + 1) % wrap;
            r
        }
    }

    fn record_dst(&mut self, dst: RegId) {
        if self.recent_dsts.len() == Self::WINDOW {
            self.recent_dsts.remove(0);
        }
        self.recent_dsts.push(dst);
    }

    fn pick_addr(&mut self) -> u64 {
        // Memory phases abandon spatial locality and roam a working set an
        // order of magnitude beyond the caches: pointer chasing through
        // cold data.
        let in_mem = self.in_memory_phase();
        let ws = if in_mem {
            self.profile.working_set_bytes.max(4 * 1024 * 1024).saturating_mul(32)
        } else {
            self.profile.working_set_bytes
        };
        let locality = if in_mem { 0.05 } else { self.profile.spatial_locality };
        let sequential: f64 = self.rng.gen_range(0.0..1.0);
        if sequential < locality {
            self.next_addr = (self.next_addr + 8) % ws;
        } else {
            self.next_addr = self.rng.gen_range(0..ws / 8) * 8;
        }
        self.next_addr
    }

    /// Dependency distance parameter for the current phase: memory phases
    /// chain dependences tightly (address computations feeding loads).
    fn current_dep_distance(&self) -> f64 {
        if self.in_memory_phase() {
            (self.profile.mean_dep_distance / 2.0).max(1.0)
        } else {
            self.profile.mean_dep_distance
        }
    }
}

impl Iterator for TraceGenerator {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        self.emitted += 1;
        let op = self.pick_op();
        let inst = match op {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => {
                let s0 = self.pick_src(false);
                let s1 = self.pick_src(false);
                let dst = self.alloc_dst(false);
                self.record_dst(dst);
                Instruction::alu(op, dst, [Some(s0), Some(s1)])
            }
            OpClass::FpOp | OpClass::FpDiv => {
                let s0 = self.pick_src(true);
                let s1 = self.pick_src(true);
                let dst = self.alloc_dst(true);
                self.record_dst(dst);
                Instruction::alu(op, dst, [Some(s0), Some(s1)])
            }
            OpClass::Load => {
                let addr_reg = self.pick_src(false);
                // FP suites load into FP registers roughly as often as they
                // compute in them.
                let fp_dest = self.profile.mix.fp_op > 0.0 && self.rng.gen_range(0.0..1.0) < 0.6;
                let dst = self.alloc_dst(fp_dest);
                let addr = self.pick_addr();
                self.record_dst(dst);
                Instruction::load(dst, Some(addr_reg), addr)
            }
            OpClass::Store => {
                let fp_src = self.profile.mix.fp_op > 0.0 && self.rng.gen_range(0.0..1.0) < 0.6;
                let src = self.pick_src(fp_src);
                let addr_reg = self.pick_src(false);
                let addr = self.pick_addr();
                Instruction::store(src, Some(addr_reg), addr)
            }
            OpClass::Branch => {
                let cond = self.pick_src(false);
                // Hot sites are reused much more than cold ones (u² skews
                // the distribution toward low indices).
                let u: f64 = self.rng.gen_range(0.0..1.0);
                let site = ((u * u) * BRANCH_SITES as f64) as u32;
                let bias = self.branch_bias[site as usize % BRANCH_SITES];
                let taken = self.rng.gen_range(0.0..1.0) < bias;
                let hint = self.rng.gen_range(0.0..1.0) < self.profile.branch_mispredict_rate;
                Instruction::branch(Some(cond), BranchInfo { site, taken, mispredict_hint: hint })
            }
        };
        Some(inst)
    }
}

/// Summary statistics of a generated instruction window, for validating the
/// generator against its profile.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceStats {
    /// Fraction of integer ops.
    pub int_frac: f64,
    /// Fraction of FP ops.
    pub fp_frac: f64,
    /// Fraction of loads.
    pub load_frac: f64,
    /// Fraction of stores.
    pub store_frac: f64,
    /// Fraction of branches.
    pub branch_frac: f64,
    /// Fraction of branches that are mispredicted.
    pub mispredict_rate: f64,
    /// Distinct cache lines touched.
    pub lines_touched: usize,
}

impl TraceStats {
    /// Measures `insts`.
    #[must_use]
    pub fn measure(insts: &[Instruction]) -> TraceStats {
        let n = insts.len().max(1) as f64;
        let mut s = TraceStats::default();
        let mut branches = 0usize;
        let mut misses = 0usize;
        let mut lines = std::collections::HashSet::new();
        for i in insts {
            if i.op.is_integer() {
                s.int_frac += 1.0;
            } else if i.op.is_fp() {
                s.fp_frac += 1.0;
            } else if i.op.is_load() {
                s.load_frac += 1.0;
            } else if i.op == crate::OpClass::Store {
                s.store_frac += 1.0;
            } else if i.op.is_branch() {
                s.branch_frac += 1.0;
                branches += 1;
                misses += usize::from(i.branch.is_some_and(|b| b.mispredict_hint));
            }
            if let Some(a) = i.mem_addr {
                lines.insert(a / LINE);
            }
        }
        s.int_frac /= n;
        s.fp_frac /= n;
        s.load_frac /= n;
        s.store_frac /= n;
        s.branch_frac /= n;
        s.mispredict_rate = if branches > 0 { misses as f64 / branches as f64 } else { 0.0 };
        s.lines_touched = lines.len();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, n: usize) -> Vec<Instruction> {
        TraceGenerator::new(BenchmarkProfile::by_name(name).unwrap(), 1234).take(n).collect()
    }

    #[test]
    fn mix_converges_to_profile() {
        for name in ["gzip", "mcf", "swim", "ammp"] {
            let p = BenchmarkProfile::by_name(name).unwrap();
            let stats = TraceStats::measure(&sample(name, 200_000));
            let want_int = p.mix.int_alu + p.mix.int_mul + p.mix.int_div;
            let want_fp = p.mix.fp_op + p.mix.fp_div;
            assert!((stats.int_frac - want_int).abs() < 0.01, "{name} int {stats:?}");
            assert!((stats.fp_frac - want_fp).abs() < 0.01, "{name} fp");
            assert!((stats.load_frac - p.mix.load).abs() < 0.01, "{name} load");
            assert!((stats.store_frac - p.mix.store).abs() < 0.01, "{name} store");
            assert!((stats.branch_frac - p.mix.branch).abs() < 0.01, "{name} branch");
        }
    }

    #[test]
    fn mispredict_rate_matches_profile() {
        let p = BenchmarkProfile::by_name("perlbmk").unwrap();
        let stats = TraceStats::measure(&sample("perlbmk", 300_000));
        assert!((stats.mispredict_rate - p.branch_mispredict_rate).abs() < 0.01, "{stats:?}");
    }

    #[test]
    fn working_set_bounds_lines_touched() {
        // gzip's 192 KiB working set = 1536 lines of 128 B.
        let stats = TraceStats::measure(&sample("gzip", 100_000));
        assert!(stats.lines_touched <= 1536);
        assert!(stats.lines_touched > 100, "should explore the working set");
        // mcf's 64 MiB working set with random chasing touches far more.
        let mcf = TraceStats::measure(&sample("mcf", 100_000));
        assert!(mcf.lines_touched > stats.lines_touched * 4);
    }

    #[test]
    fn determinism_and_divergence() {
        let a = sample("gcc", 1000);
        let b = sample("gcc", 1000);
        assert_eq!(a, b);
        let c: Vec<_> =
            TraceGenerator::new(BenchmarkProfile::by_name("gcc").unwrap(), 99).take(1000).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn dependencies_reference_recent_writes() {
        // With mean distance 3, most integer sources should name registers
        // written within the last ~16 instructions.
        let p = BenchmarkProfile::by_name("mcf").unwrap(); // dep distance 3.0
        let insts: Vec<_> = TraceGenerator::new(p, 5).take(10_000).collect();
        let mut last_writer: std::collections::HashMap<RegId, usize> =
            std::collections::HashMap::new();
        let mut near = 0usize;
        let mut total = 0usize;
        for (i, inst) in insts.iter().enumerate() {
            for src in inst.srcs.into_iter().flatten() {
                if let Some(&w) = last_writer.get(&src) {
                    total += 1;
                    if i - w <= 16 {
                        near += 1;
                    }
                }
            }
            if let Some(d) = inst.dst {
                last_writer.insert(d, i);
            }
        }
        assert!(total > 1000);
        assert!(near as f64 / total as f64 > 0.5, "near {near}/{total}");
    }

    /// Fraction of memory accesses that continue sequentially from the
    /// previous one, per window of `window` instructions.
    fn sequential_fractions(insts: &[Instruction], window: usize) -> Vec<f64> {
        let mut out = Vec::new();
        let mut prev: Option<u64> = None;
        for chunk in insts.chunks(window) {
            let mut seq = 0usize;
            let mut total = 0usize;
            for i in chunk {
                if let Some(a) = i.mem_addr {
                    if let Some(p) = prev {
                        total += 1;
                        if a == p + 8 {
                            seq += 1;
                        }
                    }
                    prev = Some(a);
                }
            }
            if total > 0 {
                out.push(seq as f64 / total as f64);
            }
        }
        out
    }

    #[test]
    fn phased_benchmarks_alternate_memory_behavior() {
        // A phased profile: compute windows access memory sequentially ~50%
        // of the time, memory windows ~5%. (Shipping profiles carry phase
        // periods of millions of instructions; a compressed period keeps
        // the test fast.)
        let mut p = BenchmarkProfile::by_name("gcc").unwrap();
        assert!(p.phases.is_some(), "gcc ships with phases");
        p.phases =
            Some(crate::PhaseBehavior { period_instructions: 300_000, memory_fraction: 0.35 });
        let phase = p.phases.expect("set above");
        let insts: Vec<_> = TraceGenerator::new(p, 77).take(900_000).collect();
        let window = (phase.period_instructions as f64 * phase.memory_fraction / 2.0) as usize;
        let fr = sequential_fractions(&insts, window);
        let max = fr.iter().copied().fold(0.0, f64::max);
        let min = fr.iter().copied().fold(1.0, f64::min);
        assert!(max > 0.4, "compute-phase windows should be sequential: {fr:?}");
        assert!(min < 0.15, "memory-phase windows should be chasing: {fr:?}");

        // Unphased gzip shows no such modulation.
        let gz = BenchmarkProfile::by_name("gzip").unwrap();
        assert!(gz.phases.is_none());
        let insts: Vec<_> = TraceGenerator::new(gz, 77).take(900_000).collect();
        let fr = sequential_fractions(&insts, window);
        let max = fr.iter().copied().fold(0.0, f64::max);
        let min = fr.iter().copied().fold(1.0, f64::min);
        assert!(max - min < 0.15, "gzip should be phase-free: {fr:?}");
    }

    #[test]
    fn fp_benchmarks_write_fp_registers() {
        let insts = sample("swim", 10_000);
        let fp_dsts = insts.iter().filter(|i| matches!(i.dst, Some(RegId::Fp(_)))).count();
        assert!(fp_dsts > 3000, "fp dsts {fp_dsts}");
    }
}
