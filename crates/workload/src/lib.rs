//! Workloads for soft-error analysis: synthetic SPEC CPU2000-like benchmark
//! instruction streams and the paper's synthesized long-horizon workloads.
//!
//! The paper drives its masking-trace generation with 100M-instruction
//! traces of 21 SPEC CPU2000 programs (9 integer + 12 floating-point) and
//! with three synthesized workloads (`day`, `week`, `combined`) that model
//! utilization swings over hours-to-days time scales (Section 4).
//!
//! SPEC binaries and the authors' traces are proprietary, so this crate
//! substitutes **synthetic benchmark profiles**: per-program instruction
//! mixes, dependency-distance distributions, branch-misprediction rates, and
//! memory-locality parameters chosen to imitate the named programs'
//! published characteristics. The downstream pipeline (timing simulation →
//! masking trace → MTTF estimation) is identical to the paper's; only the
//! instruction bytes differ. See DESIGN.md for the substitution rationale.
//!
//! # Example
//!
//! ```
//! use serr_workload::{BenchmarkProfile, TraceGenerator};
//!
//! let profile = BenchmarkProfile::by_name("mcf").unwrap();
//! let insts: Vec<_> = TraceGenerator::new(profile.clone(), 42).take(1000).collect();
//! assert_eq!(insts.len(), 1000);
//! // mcf is memory-bound: expect plenty of loads.
//! let loads = insts.iter().filter(|i| i.op.is_load()).count();
//! assert!(loads > 150);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod generator;
mod inst;
mod profile;
pub mod synthesized;

pub use generator::{TraceGenerator, TraceStats};
pub use inst::{BranchInfo, Instruction, OpClass, RegId};
pub use profile::{BenchmarkProfile, InstructionMix, PhaseBehavior, Suite};
