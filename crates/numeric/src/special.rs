//! Special functions: `erf`, `erfc`, and numerically stable exponential
//! helpers.

/// √π, the normalization constant of the paper's Section 3.2.2 density
/// `f(x) = 2/√π · e^{−x²}`.
pub const SQRT_PI: f64 = 1.772_453_850_905_516;

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// This is the CDF of the Section 3.2.2 time-to-failure density. Accurate to
/// ~1e-14 over the full real line: a non-alternating Taylor-type series for
/// small arguments and a Lentz continued fraction for the tail.
///
/// ```
/// use serr_numeric::special::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-12);
/// assert!((erf(-1.0) + 0.8427007929497149).abs() < 1e-12);
/// ```
#[must_use]
pub fn erf(x: f64) -> f64 {
    if x < 0.0 {
        return -erf(-x);
    }
    if x == 0.0 {
        return 0.0;
    }
    if x > 6.0 {
        // erfc(6) ~ 2e-17: indistinguishable from 1 in f64.
        return 1.0;
    }
    if x <= 2.0 {
        erf_series(x)
    } else {
        1.0 - erfc_cf(x)
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`, computed without
/// catastrophic cancellation for large `x`.
///
/// ```
/// use serr_numeric::special::erfc;
/// assert!((erfc(3.0) - 2.20904969985854e-5).abs() < 1e-15);
/// ```
#[must_use]
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x <= 2.0 {
        1.0 - erf_series(x)
    } else if x > 27.0 {
        // e^{-729} underflows f64.
        0.0
    } else {
        erfc_cf(x)
    }
}

/// Non-alternating series: `erf(x) = 2/√π · e^{−x²} · Σₙ 2ⁿ x^{2n+1} / (1·3·…·(2n+1))`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x;
    let mut sum = x;
    let mut n = 1u32;
    loop {
        term *= 2.0 * x2 / (2.0 * f64::from(n) + 1.0);
        let prev = sum;
        sum += term;
        n += 1;
        if sum == prev || n > 200 {
            break;
        }
    }
    2.0 / SQRT_PI * (-x2).exp() * sum
}

/// Continued fraction for `erfc`, evaluated with the modified Lentz
/// algorithm. The classic Laplace continued fraction is
/// `erfc(x) = e^{−x²}/√π · 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + 2/(x + …)))))`,
/// i.e. partial numerators `aⱼ = (j−1)/2` for `j ≥ 2`, `a₁ = 1`, and all
/// partial denominators equal to `x`.
fn erfc_cf(x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut f = TINY; // b0 = 0
    let mut c = f;
    let mut d = 0.0;
    for j in 1..400 {
        let a = if j == 1 { 1.0 } else { (f64::from(j) - 1.0) / 2.0 };
        let b = x;
        d = b + a * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + a / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    (-x * x).exp() / SQRT_PI * f
}

/// Numerically stable `1 − e^{−x}` for `x ≥ 0`.
///
/// For tiny `x` (e.g. `λ·L → 0`, exactly the limit the paper studies) the
/// naive expression loses all precision; this uses [`f64::exp_m1`].
///
/// ```
/// use serr_numeric::special::one_minus_exp_neg;
/// assert!((one_minus_exp_neg(1e-18) - 1e-18).abs() < 1e-30);
/// ```
#[must_use]
pub fn one_minus_exp_neg(x: f64) -> f64 {
    -(-x).exp_m1()
}

/// Log-sum-exp of two log-space values, `ln(e^a + e^b)`, without overflow.
#[must_use]
pub fn log_sum_exp(a: f64, b: f64) -> f64 {
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    if hi == f64::NEG_INFINITY {
        return f64::NEG_INFINITY;
    }
    hi + (lo - hi).exp().ln_1p()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference values from standard tables (15 significant digits).
    const TABLE: &[(f64, f64)] = &[
        (0.1, 0.112462916018285),
        (0.5, 0.520499877813047),
        (1.0, 0.842700792949715),
        (1.5, 0.966105146475311),
        (2.0, 0.995322265018953),
        (2.5, 0.999593047982555),
        (3.0, 0.999977909503001),
        (4.0, 0.999999984582742),
    ];

    #[test]
    fn erf_matches_reference_table() {
        for &(x, want) in TABLE {
            let got = erf(x);
            assert!((got - want).abs() < 1e-13, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc_matches_reference_for_large_x() {
        // erfc(5) = 1.53745979442803e-12
        assert!((erfc(5.0) - 1.537_459_794_428_03e-12).abs() < 1e-24);
        // erfc(10) = 2.08848758376254e-45
        assert!((erfc(10.0) - 2.088_487_583_762_54e-45).abs() < 1e-57);
    }

    #[test]
    fn erf_is_odd_and_bounded() {
        for i in 0..100 {
            let x = i as f64 * 0.07;
            assert!((erf(x) + erf(-x)).abs() < 1e-15);
            assert!(erf(x) <= 1.0 && erf(x) >= 0.0);
        }
    }

    #[test]
    fn erf_plus_erfc_is_one() {
        for i in 0..60 {
            let x = i as f64 * 0.1;
            let s = erf(x) + erfc(x);
            assert!((s - 1.0).abs() < 1e-13, "erf+erfc at {x} = {s}");
        }
    }

    #[test]
    fn erf_monotone_increasing() {
        let mut prev = -1.0;
        for i in -50..=50 {
            let v = erf(i as f64 * 0.1);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn erfc_extreme_tail_underflows_to_zero() {
        assert_eq!(erfc(30.0), 0.0);
        assert_eq!(erf(7.0), 1.0);
    }

    #[test]
    fn one_minus_exp_neg_stable() {
        assert_eq!(one_minus_exp_neg(0.0), 0.0);
        assert!((one_minus_exp_neg(1.0) - (1.0 - (-1.0f64).exp())).abs() < 1e-16);
        // Tiny argument: relative accuracy preserved.
        let x = 1e-15;
        assert!((one_minus_exp_neg(x) / x - 1.0).abs() < 1e-10);
    }

    #[test]
    fn log_sum_exp_basics() {
        assert!((log_sum_exp(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-15);
        assert_eq!(log_sum_exp(f64::NEG_INFINITY, f64::NEG_INFINITY), f64::NEG_INFINITY);
        // Huge magnitudes do not overflow.
        assert!((log_sum_exp(1000.0, 1000.0) - (1000.0 + std::f64::consts::LN_2)).abs() < 1e-12);
    }
}
