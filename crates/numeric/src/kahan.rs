//! Compensated (Kahan–Babuška) summation.

/// A compensated accumulator that sums `f64` values with O(1) rounding error
/// independent of the number of addends.
///
/// Monte-Carlo MTTF estimates average up to millions of times-to-failure that
/// span many orders of magnitude; naive summation loses several digits there.
///
/// ```
/// use serr_numeric::KahanSum;
/// let mut acc = KahanSum::new();
/// for _ in 0..1_000_000 {
///     acc.add(0.1);
/// }
/// assert!((acc.sum() - 100_000.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KahanSum {
    sum: f64,
    compensation: f64,
    count: u64,
}

impl KahanSum {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        // Neumaier's variant: works even when |value| > |sum|.
        let t = self.sum + value;
        if self.sum.abs() >= value.abs() {
            self.compensation += (self.sum - t) + value;
        } else {
            self.compensation += (value - t) + self.sum;
        }
        self.sum = t;
        self.count += 1;
    }

    /// The compensated total.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum + self.compensation
    }

    /// How many values have been added.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The mean of the added values, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum() / self.count as f64)
    }

    /// Merges another accumulator into this one (used to combine per-thread
    /// partial sums).
    pub fn merge(&mut self, other: &KahanSum) {
        self.add(other.sum);
        self.add(other.compensation);
        // `add` bumped count twice for what is really `other.count` samples.
        self.count = self.count - 2 + other.count;
    }
}

impl Extend<f64> for KahanSum {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.add(v);
        }
    }
}

impl FromIterator<f64> for KahanSum {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut acc = KahanSum::new();
        acc.extend(iter);
        acc
    }
}

/// Sums an iterator of values with compensation.
///
/// ```
/// use serr_numeric::kahan_sum;
/// assert_eq!(kahan_sum([1.0, 2.0, 3.0]), 6.0);
/// ```
#[must_use]
pub fn kahan_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    values.into_iter().collect::<KahanSum>().sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_naive_summation() {
        let n = 10_000_000u64;
        let v = 0.000_1_f64;
        let mut naive = 0.0;
        let mut comp = KahanSum::new();
        for _ in 0..n {
            naive += v;
            comp.add(v);
        }
        let exact = v * n as f64;
        assert!((comp.sum() - exact).abs() <= (naive - exact).abs());
        assert!((comp.sum() - exact).abs() < 1e-9);
    }

    #[test]
    fn neumaier_handles_large_then_small() {
        let mut acc = KahanSum::new();
        acc.add(1e100);
        acc.add(1.0);
        acc.add(-1e100);
        assert_eq!(acc.sum(), 1.0);
    }

    #[test]
    fn mean_and_count() {
        let acc: KahanSum = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(acc.count(), 4);
        assert_eq!(acc.mean(), Some(2.5));
        assert_eq!(KahanSum::new().mean(), None);
    }

    #[test]
    fn merge_combines_partials() {
        let mut a: KahanSum = (0..500).map(|i| i as f64).collect();
        let b: KahanSum = (500..1000).map(|i| i as f64).collect();
        a.merge(&b);
        assert_eq!(a.count(), 1000);
        assert_eq!(a.sum(), 499_500.0);
    }
}
