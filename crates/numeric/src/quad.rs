//! Numerical integration: adaptive Simpson and composite Gauss–Legendre
//! quadrature, plus semi-infinite integrals.
//!
//! The paper's Section 3.2.2 states "the above integration cannot be
//! calculated analytically. We solve it numerically using a software
//! package." — this module is that software package.

use serr_types::SerrError;

/// Maximum recursion depth of the adaptive Simpson rule before giving up.
const MAX_DEPTH: usize = 60;

/// Integrates `f` over `[a, b]` with adaptive Simpson quadrature to absolute
/// tolerance `tol`.
///
/// ```
/// use serr_numeric::quad::integrate;
/// let v = integrate(|x| x * x, 0.0, 3.0, 1e-12).unwrap();
/// assert!((v - 9.0).abs() < 1e-10);
/// ```
///
/// # Errors
///
/// Returns [`SerrError::NoConvergence`] if the requested tolerance cannot be
/// met within the maximum recursion depth, and [`SerrError::InvalidConfig`]
/// if `tol` is not positive or the interval is reversed.
pub fn integrate(f: impl Fn(f64) -> f64, a: f64, b: f64, tol: f64) -> Result<f64, SerrError> {
    if tol.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
        return Err(SerrError::invalid_config(format!("tolerance must be positive, got {tol}")));
    }
    if a.partial_cmp(&b).is_none_or(|o| o == std::cmp::Ordering::Greater) {
        return Err(SerrError::invalid_config(format!("reversed interval [{a}, {b}]")));
    }
    if a == b {
        return Ok(0.0);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson(a, b, fa, fm, fb);
    adaptive(&f, a, b, fa, fm, fb, whole, tol, MAX_DEPTH)
}

fn simpson(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive(
    f: &impl Fn(f64) -> f64,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> Result<f64, SerrError> {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson(a, m, fa, flm, fm);
    let right = simpson(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if delta.abs() <= 15.0 * tol {
        return Ok(left + right + delta / 15.0);
    }
    if depth == 0 {
        return Err(SerrError::NoConvergence {
            what: "adaptive simpson quadrature".into(),
            after: MAX_DEPTH,
        });
    }
    let l = adaptive(f, a, m, fa, flm, fm, left, tol / 2.0, depth - 1)?;
    let r = adaptive(f, m, b, fm, frm, fb, right, tol / 2.0, depth - 1)?;
    Ok(l + r)
}

/// Integrates `f` over `[0, ∞)` by summing adaptive-Simpson panels of
/// geometrically growing width until a panel contributes less than `tol`.
///
/// Suitable for integrands with (super-)exponentially decaying tails, like
/// every survival function in this workspace.
///
/// ```
/// use serr_numeric::quad::integrate_to_infinity;
/// // ∫₀^∞ e^{-x} dx = 1
/// let v = integrate_to_infinity(|x| (-x).exp(), 1e-12).unwrap();
/// assert!((v - 1.0).abs() < 1e-9);
/// ```
///
/// # Errors
///
/// Returns [`SerrError::NoConvergence`] if 200 panels do not suffice, or any
/// error from the underlying panel integration.
pub fn integrate_to_infinity(f: impl Fn(f64) -> f64, tol: f64) -> Result<f64, SerrError> {
    let mut total = 0.0;
    let mut a = 0.0;
    let mut width = 1.0;
    for _ in 0..200 {
        let b = a + width;
        let panel = integrate(&f, a, b, tol)?;
        total += panel;
        if panel.abs() < tol && a > 1.0 {
            return Ok(total);
        }
        a = b;
        width *= 2.0;
    }
    Err(SerrError::NoConvergence { what: "semi-infinite integral".into(), after: 200 })
}

/// Nodes and weights of 16-point Gauss–Legendre quadrature on `[-1, 1]`
/// (positive half; the rule is symmetric).
const GL16: [(f64, f64); 8] = [
    (0.095_012_509_837_637_44, 0.189_450_610_455_068_5),
    (0.281_603_550_779_258_9, 0.182_603_415_044_923_6),
    (0.458_016_777_657_227_4, 0.169_156_519_395_002_54),
    (0.617_876_244_402_643_7, 0.149_595_988_816_576_73),
    (0.755_404_408_355_003, 0.124_628_971_255_533_87),
    (0.865_631_202_387_831_7, 0.095_158_511_682_492_79),
    (0.944_575_023_073_232_6, 0.062_253_523_938_647_89),
    (0.989_400_934_991_649_9, 0.027_152_459_411_754_096),
];

/// Integrates `f` over `[a, b]` with `panels` equal-width composite 16-point
/// Gauss–Legendre panels. Non-adaptive, but extremely fast and accurate for
/// smooth integrands: used in the inner loops of renewal-equation solvers.
///
/// ```
/// use serr_numeric::quad::gauss_legendre;
/// let v = gauss_legendre(|x| x.sin(), 0.0, std::f64::consts::PI, 4);
/// assert!((v - 2.0).abs() < 1e-12);
/// ```
///
/// # Panics
///
/// Panics if `panels` is zero or the interval is reversed.
#[must_use]
pub fn gauss_legendre(f: impl Fn(f64) -> f64, a: f64, b: f64, panels: usize) -> f64 {
    assert!(panels > 0, "at least one panel required");
    assert!(a <= b, "reversed interval [{a}, {b}]");
    if a == b {
        return 0.0;
    }
    let h = (b - a) / panels as f64;
    let mut acc = crate::KahanSum::new();
    for p in 0..panels {
        let lo = a + h * p as f64;
        let mid = lo + 0.5 * h;
        let half = 0.5 * h;
        for &(x, w) in &GL16 {
            acc.add(w * half * f(mid + half * x));
            acc.add(w * half * f(mid - half * x));
        }
    }
    acc.sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::special::SQRT_PI;

    #[test]
    fn simpson_polynomial_exact() {
        // Simpson is exact for cubics.
        let v = integrate(|x| x.powi(3) - 2.0 * x + 1.0, -1.0, 2.0, 1e-14).unwrap();
        let exact = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((v - (exact(2.0) - exact(-1.0))).abs() < 1e-12);
    }

    #[test]
    fn simpson_oscillatory() {
        let v = integrate(|x| (10.0 * x).sin(), 0.0, 1.0, 1e-12).unwrap();
        let exact = (1.0 - (10.0f64).cos()) / 10.0;
        assert!((v - exact).abs() < 1e-10);
    }

    #[test]
    fn degenerate_interval_is_zero() {
        assert_eq!(integrate(|x| x, 2.0, 2.0, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(integrate(|x| x, 1.0, 0.0, 1e-9).is_err());
        assert!(integrate(|x| x, 0.0, 1.0, 0.0).is_err());
        assert!(integrate(|x| x, 0.0, 1.0, -1.0).is_err());
    }

    #[test]
    fn gaussian_integral_is_sqrt_pi_over_two() {
        let v = integrate_to_infinity(|x| (-x * x).exp(), 1e-13).unwrap();
        assert!((v - SQRT_PI / 2.0).abs() < 1e-10);
    }

    #[test]
    fn exponential_mean() {
        // ∫₀^∞ x λe^{-λx} dx = 1/λ
        for lambda in [0.1, 1.0, 10.0] {
            let v = integrate_to_infinity(|x| x * lambda * (-lambda * x).exp(), 1e-13).unwrap();
            assert!((v - 1.0 / lambda).abs() < 1e-8, "lambda={lambda}: {v}");
        }
    }

    #[test]
    fn gauss_legendre_matches_adaptive() {
        let f = |x: f64| (x * x).cos() * (-x).exp();
        let a = gauss_legendre(f, 0.0, 5.0, 8);
        let b = integrate(f, 0.0, 5.0, 1e-13).unwrap();
        assert!((a - b).abs() < 1e-10);
    }

    #[test]
    fn gauss_legendre_degenerate() {
        assert_eq!(gauss_legendre(|x| x, 1.0, 1.0, 3), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one panel")]
    fn gauss_legendre_zero_panels_panics() {
        let _ = gauss_legendre(|x| x, 0.0, 1.0, 0);
    }
}
