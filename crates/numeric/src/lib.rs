//! Numerical substrate for the soft-error analysis workspace.
//!
//! The paper's analysis needs a handful of numerical tools that we implement
//! from scratch rather than pulling in a scientific-computing dependency:
//!
//! * compensated ([`KahanSum`]) summation — Monte-Carlo averages over millions
//!   of trials must not lose precision;
//! * adaptive Simpson and composite Gauss–Legendre quadrature
//!   ([`quad`]) — Section 3.2.2 computes the MTTF of a min-of-N system by
//!   numerical integration ("we solve it numerically using a software
//!   package");
//! * the error function ([`special::erf`]) — the CDF of the paper's
//!   near-exponential density `f(x) = 2/√π · e^{−x²}` is `erf(x)`;
//! * streaming statistics with confidence intervals ([`stats`]) — to report
//!   Monte-Carlo MTTF estimates with error bars;
//! * empirical CDFs and Kolmogorov–Smirnov distances ([`ecdf`]) — to test the
//!   exponentiality assumption behind the SOFR step and Theorem 1's
//!   uniformity claim.
//!
//! # Example
//!
//! ```
//! use serr_numeric::quad::integrate_to_infinity;
//! use serr_numeric::special::SQRT_PI;
//!
//! // E(X) for the paper's Section 3.2.2 density f(x) = 2/√π e^{-x²} is 1/√π.
//! let mean = integrate_to_infinity(|x| x * 2.0 / SQRT_PI * (-x * x).exp(), 1e-12).unwrap();
//! assert!((mean - 1.0 / SQRT_PI).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ecdf;
pub mod quad;
pub mod series;
pub mod special;
pub mod stats;
pub mod vecmath;

mod kahan;

pub use kahan::{kahan_sum, KahanSum};
