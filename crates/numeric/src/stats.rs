//! Streaming descriptive statistics with confidence intervals.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance accumulator (Welford's algorithm) with
/// compensated mean updates.
///
/// Used to summarize Monte-Carlo time-to-failure samples: the paper reports
/// "the average of the time to failure as the MTTF" over 10⁶ trials; we also
/// report the standard error so discrepancy signals can be distinguished
/// from sampling noise.
///
/// ```
/// use serr_numeric::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        RunningStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Smallest sample seen (+∞ if empty).
    #[must_use]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample seen (−∞ if empty).
    #[must_use]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (divides by `n`).
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Unbiased sample variance (divides by `n − 1`; 0 if fewer than two
    /// samples).
    #[must_use]
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Standard error of the mean.
    #[must_use]
    pub fn standard_error(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            (self.sample_variance() / self.n as f64).sqrt()
        }
    }

    /// Half-width of the 95% confidence interval on the mean, using the
    /// Student-t critical value for the actual sample count: `t` from a
    /// lookup table through n = 30, the normal z = 1.96 beyond (where the
    /// two are indistinguishable at three digits). Returns NaN for n < 2,
    /// where no variance estimate exists — the old fixed `1.96 × SEM`
    /// silently reported a zero-width interval there.
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        match self.n {
            0 | 1 => f64::NAN,
            n => t_critical_975(n) * self.standard_error(),
        }
    }

    /// [`Self::ci95_half_width`] as an `Option`: `None` when fewer than two
    /// samples make the interval undefined.
    #[must_use]
    pub fn try_ci95_half_width(&self) -> Option<f64> {
        (self.n >= 2).then(|| self.ci95_half_width())
    }

    /// Builds the statistics of a whole sample in two vectorizable passes:
    /// a compensated (branch-free Kahan two-sum) lane-split sum for the
    /// mean, then `Σ(x − mean)²` for the second moment, with min/max folded
    /// into the first pass. The lane structure and combine order are fixed,
    /// so the result is a deterministic function of the slice contents
    /// alone; [`RunningStats::from_mapped_slice`] is the fused variant the
    /// batched Monte-Carlo sampler retires each trial chunk through.
    ///
    /// Against per-element [`RunningStats::push`] the accuracy is equal or
    /// better (the compensated sum beats Welford's running mean for large
    /// `n`), but the results are not bit-identical — callers choose one
    /// fold and stay with it.
    #[must_use]
    pub fn from_slice(xs: &[f64]) -> RunningStats {
        // 16 lanes, not 8: the compensated two-sum is a 4-op dependency chain
        // per lane, so at 8 lanes (one 512-bit vector) the loop is latency
        // bound; doubling the lanes overlaps two chains and measures ~4x
        // faster on AVX-512 hardware with identical accuracy.
        const LANES: usize = 16;
        if xs.is_empty() {
            return RunningStats::new();
        }
        // Pass 1: compensated sum + min/max. The two-sum form is branch
        // free (unlike Neumaier's |a| ≥ |b| test), so the lane loop stays
        // straight-line code.
        let mut sum = [0.0_f64; LANES];
        let mut comp = [0.0_f64; LANES];
        let mut lo = [f64::INFINITY; LANES];
        let mut hi = [f64::NEG_INFINITY; LANES];
        let mut chunks = xs.chunks_exact(LANES);
        for chunk in &mut chunks {
            for (j, &x) in chunk.iter().enumerate() {
                let s = sum[j] + x;
                let bb = s - sum[j];
                comp[j] += (sum[j] - (s - bb)) + (x - bb);
                sum[j] = s;
                lo[j] = lo[j].min(x);
                hi[j] = hi[j].max(x);
            }
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            let s = sum[j] + x;
            let bb = s - sum[j];
            comp[j] += (sum[j] - (s - bb)) + (x - bb);
            sum[j] = s;
            lo[j] = lo[j].min(x);
            hi[j] = hi[j].max(x);
        }
        let total: f64 = sum.iter().sum::<f64>() + comp.iter().sum::<f64>();
        let n = xs.len() as f64;
        let mean = total / n;
        // Pass 2: centered second moment; terms are non-negative, so plain
        // lane sums keep full relative accuracy.
        let mut m2 = [0.0_f64; LANES];
        let mut chunks = xs.chunks_exact(LANES);
        for chunk in &mut chunks {
            for (j, &x) in chunk.iter().enumerate() {
                let d = x - mean;
                m2[j] += d * d;
            }
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            let d = x - mean;
            m2[j] += d * d;
        }
        RunningStats {
            n: xs.len() as u64,
            mean,
            m2: m2.iter().sum(),
            min: lo.iter().copied().fold(f64::INFINITY, f64::min),
            max: hi.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Fused map-then-[`RunningStats::from_slice`]: rewrites every element
    /// as `map(index, old)` and folds the first statistics pass
    /// (compensated lane sums, min/max) over the mapped values in the same
    /// traversal, so the producer's arithmetic pays for the fold's memory
    /// pass. The lane structure and combine order are exactly
    /// `from_slice`'s, making the result bit-identical to mapping first
    /// and folding after — one full pass over the slice cheaper. The
    /// batched Monte-Carlo sampler retires each trial chunk through this:
    /// its final TTF fold is the `map`.
    #[must_use]
    pub fn from_mapped_slice(
        xs: &mut [f64],
        mut map: impl FnMut(usize, f64) -> f64,
    ) -> RunningStats {
        // 16 lanes, not 8: the compensated two-sum is a 4-op dependency chain
        // per lane, so at 8 lanes (one 512-bit vector) the loop is latency
        // bound; doubling the lanes overlaps two chains and measures ~4x
        // faster on AVX-512 hardware with identical accuracy.
        const LANES: usize = 16;
        if xs.is_empty() {
            return RunningStats::new();
        }
        let mut sum = [0.0_f64; LANES];
        let mut comp = [0.0_f64; LANES];
        let mut lo = [f64::INFINITY; LANES];
        let mut hi = [f64::NEG_INFINITY; LANES];
        let mut base = 0usize;
        let mut chunks = xs.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            for (j, slot) in chunk.iter_mut().enumerate() {
                let x = map(base + j, *slot);
                *slot = x;
                let s = sum[j] + x;
                let bb = s - sum[j];
                comp[j] += (sum[j] - (s - bb)) + (x - bb);
                sum[j] = s;
                lo[j] = lo[j].min(x);
                hi[j] = hi[j].max(x);
            }
            base += LANES;
        }
        for (j, slot) in chunks.into_remainder().iter_mut().enumerate() {
            let x = map(base + j, *slot);
            *slot = x;
            let s = sum[j] + x;
            let bb = s - sum[j];
            comp[j] += (sum[j] - (s - bb)) + (x - bb);
            sum[j] = s;
            lo[j] = lo[j].min(x);
            hi[j] = hi[j].max(x);
        }
        let total: f64 = sum.iter().sum::<f64>() + comp.iter().sum::<f64>();
        let n = xs.len() as f64;
        let mean = total / n;
        let mut m2 = [0.0_f64; LANES];
        let mut chunks = xs.chunks_exact(LANES);
        for chunk in &mut chunks {
            for (j, &x) in chunk.iter().enumerate() {
                let d = x - mean;
                m2[j] += d * d;
            }
        }
        for (j, &x) in chunks.remainder().iter().enumerate() {
            let d = x - mean;
            m2[j] += d * d;
        }
        RunningStats {
            n: xs.len() as u64,
            mean,
            m2: m2.iter().sum(),
            min: lo.iter().copied().fold(f64::INFINITY, f64::min),
            max: hi.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance combination) — used to fold per-thread Monte-Carlo partials.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Two-sided 97.5th-percentile Student-t critical values for ν = 1..=29
/// degrees of freedom (i.e. sample counts 2..=30).
const T975: [f64; 29] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, // ν = 1..=10
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, // ν = 11..=20
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, // ν = 21..=29
];

/// The 95%-CI critical multiplier for a mean estimated from `n ≥ 2`
/// samples: Student-t with ν = n − 1 through n = 30, z = 1.96 beyond.
fn t_critical_975(n: u64) -> f64 {
    debug_assert!(n >= 2);
    let df = (n - 1) as usize;
    if df <= T975.len() {
        T975[df - 1]
    } else {
        1.96
    }
}

impl Extend<f64> for RunningStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.push(v);
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = RunningStats::new();
        s.extend(iter);
        s
    }
}

/// A frozen summary of a sample, suitable for reports and serialization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95% CI on the mean.
    pub ci95: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl From<&RunningStats> for Summary {
    fn from(s: &RunningStats) -> Self {
        Summary {
            count: s.count(),
            mean: s.mean(),
            std_dev: s.sample_variance().sqrt(),
            ci95: s.ci95_half_width(),
            min: s.min(),
            max: s.max(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let data: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0 + 5.0).collect();
        let s: RunningStats = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var =
            data.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((s.mean() - mean).abs() < 1e-12);
        assert!((s.sample_variance() - var).abs() < 1e-10);
    }

    #[test]
    fn empty_stats_are_benign() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.standard_error(), 0.0);
    }

    #[test]
    fn single_sample() {
        let mut s = RunningStats::new();
        s.push(42.0);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.sample_variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..2000).map(|i| ((i * 37) % 101) as f64).collect();
        let sequential: RunningStats = data.iter().copied().collect();
        let mut a: RunningStats = data[..700].iter().copied().collect();
        let b: RunningStats = data[700..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), sequential.count());
        assert!((a.mean() - sequential.mean()).abs() < 1e-10);
        assert!((a.sample_variance() - sequential.sample_variance()).abs() < 1e-8);
        assert_eq!(a.min(), sequential.min());
        assert_eq!(a.max(), sequential.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningStats = [1.0, 2.0, 3.0].into_iter().collect();
        let before = a;
        a.merge(&RunningStats::new());
        assert_eq!(a, before);
        let mut e = RunningStats::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let small: RunningStats = (0..100).map(|i| (i % 10) as f64).collect();
        let large: RunningStats = (0..10000).map(|i| (i % 10) as f64).collect();
        assert!(large.ci95_half_width() < small.ci95_half_width());
    }

    /// Builds stats over `n` evenly spread points with sample std-dev
    /// exactly recoverable, then checks the CI multiplier in use.
    fn ci_multiplier(n: u64) -> f64 {
        let s: RunningStats = (0..n).map(|i| i as f64).collect();
        s.ci95_half_width() / s.standard_error()
    }

    #[test]
    fn ci95_uses_student_t_for_small_samples() {
        // Regression for the fixed-z bug: 1.96 at n=2 understated the
        // interval by a factor of 6.5.
        assert!((ci_multiplier(2) - 12.706).abs() < 1e-9);
        assert!((ci_multiplier(5) - 2.776).abs() < 1e-9);
        assert!((ci_multiplier(30) - 2.045).abs() < 1e-9);
        assert!((ci_multiplier(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn ci95_is_undefined_below_two_samples() {
        let empty = RunningStats::new();
        assert!(empty.ci95_half_width().is_nan());
        assert_eq!(empty.try_ci95_half_width(), None);
        let mut one = RunningStats::new();
        one.push(42.0);
        assert!(one.ci95_half_width().is_nan());
        assert_eq!(one.try_ci95_half_width(), None);
        let two: RunningStats = [1.0, 3.0].into_iter().collect();
        assert!(two.try_ci95_half_width().is_some());
        assert!(two.ci95_half_width().is_finite());
    }

    #[test]
    fn ci95_exact_at_n_2() {
        // Samples [0, 2]: mean 1, sample variance 2, SEM = 1.
        let s: RunningStats = [0.0, 2.0].into_iter().collect();
        assert!((s.standard_error() - 1.0).abs() < 1e-12);
        assert!((s.ci95_half_width() - 12.706).abs() < 1e-9);
    }

    #[test]
    fn from_slice_matches_welford() {
        for n in [0usize, 1, 7, 8, 9, 1000, 1024] {
            let data: Vec<f64> = (0..n).map(|i| (i as f64 * 0.61).cos() * 1e6 + 5e5).collect();
            let batch = RunningStats::from_slice(&data);
            let welford: RunningStats = data.iter().copied().collect();
            assert_eq!(batch.count(), welford.count(), "n = {n}");
            assert_eq!(batch.min(), welford.min());
            assert_eq!(batch.max(), welford.max());
            if n > 0 {
                assert!((batch.mean() - welford.mean()).abs() <= 1e-9 * welford.mean().abs());
            }
            if n > 1 {
                let rel = (batch.sample_variance() - welford.sample_variance()).abs()
                    / welford.sample_variance();
                assert!(rel < 1e-9, "n = {n}: variance off by {rel}");
            }
        }
    }

    #[test]
    fn from_mapped_slice_is_bit_identical_to_map_then_from_slice() {
        // Lengths straddling the lane remainder, plus the map reading the
        // pre-image (the batched sampler's in-place TTF fold shape).
        for n in [0usize, 1, 7, 8, 9, 100, 1024, 1031] {
            let pre: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
            let map = |i: usize, old: f64| (i as f64).mul_add(2.5, old).floor() - old * 0.125;
            let mut fused_buf = pre.clone();
            let fused = RunningStats::from_mapped_slice(&mut fused_buf, map);
            let mapped: Vec<f64> = pre.iter().enumerate().map(|(i, &x)| map(i, x)).collect();
            assert_eq!(fused_buf, mapped, "n = {n}: mapped values differ");
            assert_eq!(fused, RunningStats::from_slice(&mapped), "n = {n}: stats differ");
        }
    }

    #[test]
    fn from_slice_is_deterministic_and_merges_like_chunks() {
        let data: Vec<f64> = (0..5000).map(|i| ((i * 131) % 977) as f64).collect();
        let a = RunningStats::from_slice(&data);
        let b = RunningStats::from_slice(&data);
        assert_eq!(a, b, "same slice must fold to bit-identical stats");
        // Chunked from_slice + Chan merge (the engine's per-chunk fold)
        // agrees with the one-shot fold to full statistical accuracy.
        let mut merged = RunningStats::new();
        for chunk in data.chunks(1024) {
            merged.merge(&RunningStats::from_slice(chunk));
        }
        assert_eq!(merged.count(), a.count());
        assert!((merged.mean() - a.mean()).abs() < 1e-9);
        assert!((merged.sample_variance() - a.sample_variance()).abs() < 1e-6);
        assert_eq!(merged.min(), a.min());
        assert_eq!(merged.max(), a.max());
    }

    #[test]
    fn from_slice_compensation_beats_naive_summation() {
        // 10M small values whose naive sum drifts: the lane-split Kahan
        // pass must recover the exact mean to ~1 ulp.
        let xs = vec![0.1_f64; 1_000_000];
        let s = RunningStats::from_slice(&xs);
        assert!((s.mean() - 0.1).abs() < 1e-15, "mean {}", s.mean());
        assert_eq!(s.min(), 0.1);
        assert_eq!(s.max(), 0.1);
        assert!(s.sample_variance() < 1e-20);
    }

    #[test]
    fn summary_roundtrip() {
        let s: RunningStats = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        let sum = Summary::from(&s);
        assert_eq!(sum.count, 4);
        assert_eq!(sum.mean, 2.5);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 4.0);
    }
}
