//! Closed-form series used throughout the paper's Appendix A.

/// Sum of the geometric series `Σₙ₌₀^∞ xⁿ = 1/(1−x)` for `|x| < 1`.
///
/// # Panics
///
/// Panics if `|x| ≥ 1`.
///
/// ```
/// use serr_numeric::series::geometric_sum;
/// assert_eq!(geometric_sum(0.5), 2.0);
/// ```
#[must_use]
pub fn geometric_sum(x: f64) -> f64 {
    assert!(x.abs() < 1.0, "geometric series requires |x| < 1, got {x}");
    1.0 / (1.0 - x)
}

/// The paper's Appendix A identity `Σₙ₌₀^∞ n·xⁿ = x/(1−x)²` for `|x| < 1`.
///
/// # Panics
///
/// Panics if `|x| ≥ 1`.
///
/// ```
/// use serr_numeric::series::weighted_geometric_sum;
/// assert_eq!(weighted_geometric_sum(0.5), 2.0);
/// ```
#[must_use]
pub fn weighted_geometric_sum(x: f64) -> f64 {
    assert!(x.abs() < 1.0, "series requires |x| < 1, got {x}");
    x / ((1.0 - x) * (1.0 - x))
}

/// `∫ₐᵇ λ e^{−λt} t dt`, the building block of the paper's Derivation 1:
/// `(a·e^{−λa} − b·e^{−λb}) + (e^{−λa} − e^{−λb})/λ`.
///
/// # Panics
///
/// Panics if `λ ≤ 0` or `a > b` or any argument is negative.
///
/// ```
/// use serr_numeric::series::exp_weighted_time_integral;
/// // Over [0, ∞) this is the exponential mean 1/λ.
/// let v = exp_weighted_time_integral(2.0, 0.0, 1e6);
/// assert!((v - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn exp_weighted_time_integral(lambda: f64, a: f64, b: f64) -> f64 {
    assert!(lambda > 0.0, "rate must be positive");
    assert!(a >= 0.0 && b >= a, "need 0 <= a <= b, got [{a}, {b}]");
    let ea = (-lambda * a).exp();
    let eb = (-lambda * b).exp();
    (a * ea - b * eb) + (ea - eb) / lambda
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_sums_match_truncated() {
        for &x in &[0.1_f64, 0.5, 0.9, -0.5] {
            let truncated: f64 = (0..2000).map(|n| x.powi(n)).sum();
            assert!((geometric_sum(x) - truncated).abs() < 1e-9, "x={x}");
            let truncated_weighted: f64 = (0..4000).map(|n| n as f64 * x.powi(n)).sum();
            assert!((weighted_geometric_sum(x) - truncated_weighted).abs() < 1e-8, "x={x}");
        }
    }

    #[test]
    #[should_panic(expected = "|x| < 1")]
    fn geometric_rejects_divergent() {
        let _ = geometric_sum(1.0);
    }

    #[test]
    fn exp_weighted_integral_matches_quadrature() {
        let lambda = 0.7;
        let (a, b) = (0.3, 2.9);
        let quad =
            crate::quad::integrate(|t| lambda * (-lambda * t).exp() * t, a, b, 1e-13).unwrap();
        assert!((exp_weighted_time_integral(lambda, a, b) - quad).abs() < 1e-10);
    }

    #[test]
    fn exp_weighted_integral_full_line_is_mean() {
        let lambda = 3.0;
        let v = exp_weighted_time_integral(lambda, 0.0, 1e4);
        assert!((v - 1.0 / lambda).abs() < 1e-12);
    }
}
