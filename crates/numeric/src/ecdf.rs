//! Empirical CDFs and Kolmogorov–Smirnov distances.
//!
//! The SOFR step assumes each component's time to failure is exponentially
//! distributed after architectural masking (paper Section 2.3), and Theorem 1
//! claims `T mod L` is uniform when `L·λ → 0`. These tools quantify how far
//! empirical failure-time samples are from those reference distributions.

use serr_types::SerrError;

/// An empirical cumulative distribution function over a sorted sample.
///
/// ```
/// use serr_numeric::ecdf::Ecdf;
/// let e = Ecdf::new(vec![1.0, 2.0, 3.0, 4.0])?;
/// assert_eq!(e.eval(2.5), 0.5);
/// assert_eq!(e.eval(0.0), 0.0);
/// assert_eq!(e.eval(9.0), 1.0);
///
/// // Invalid samples are reported as typed errors, not panics:
/// assert!(Ecdf::new(vec![]).is_err());
/// assert!(Ecdf::new(vec![1.0, f64::NAN]).is_err());
/// # Ok::<(), serr_types::SerrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a sample (sorts internally).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for an empty sample and
    /// [`SerrError::InvalidValue`] if the sample contains NaN — validation
    /// results, not panics, per the workspace convention for library-crate
    /// input checking.
    pub fn new(mut sample: Vec<f64>) -> Result<Self, SerrError> {
        if sample.is_empty() {
            return Err(SerrError::invalid_config("ECDF requires a non-empty sample"));
        }
        if sample.iter().any(|x| x.is_nan()) {
            return Err(SerrError::invalid_value("ECDF sample (must not contain NaN)", f64::NAN));
        }
        sample.sort_by(|a, b| a.partial_cmp(b).expect("no NaN after check"));
        Ok(Ecdf { sorted: sample })
    }

    /// The fraction of samples `≤ x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the ECDF is empty. Never true for a successfully
    /// constructed value — [`Ecdf::new`] rejects empty samples — but kept
    /// so the `len`/`is_empty` pair stays complete.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted sample underlying this ECDF.
    #[must_use]
    pub fn as_sorted(&self) -> &[f64] {
        &self.sorted
    }

    /// One-sample Kolmogorov–Smirnov statistic against a reference CDF:
    /// `D = supₓ |F̂(x) − F(x)|`, evaluated at the jump points.
    pub fn ks_statistic(&self, cdf: impl Fn(f64) -> f64) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = cdf(x);
            let lo = i as f64 / n;
            let hi = (i + 1) as f64 / n;
            d = d.max((f - lo).abs()).max((hi - f).abs());
        }
        d
    }

    /// KS statistic against the exponential distribution with rate `lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not positive.
    #[must_use]
    pub fn ks_vs_exponential(&self, lambda: f64) -> f64 {
        assert!(lambda > 0.0, "rate must be positive");
        self.ks_statistic(|x| if x <= 0.0 { 0.0 } else { -(-lambda * x).exp_m1() })
    }

    /// KS statistic against the uniform distribution on `[0, length]`.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive.
    #[must_use]
    pub fn ks_vs_uniform(&self, length: f64) -> f64 {
        assert!(length > 0.0, "length must be positive");
        self.ks_statistic(|x| (x / length).clamp(0.0, 1.0))
    }

    /// Two-sample Kolmogorov–Smirnov statistic against another ECDF:
    /// `D = supₓ |F̂₁(x) − F̂₂(x)|`, computed by a merge walk over the two
    /// sorted samples in `O(n + m)`. Tied observations are consumed from
    /// both samples before the gap is measured, so the statistic is exact
    /// for discrete-valued samples too.
    #[must_use]
    pub fn ks_two_sample(&self, other: &Ecdf) -> f64 {
        let (a, b) = (&self.sorted, &other.sorted);
        let (n, m) = (a.len() as f64, b.len() as f64);
        let (mut i, mut j) = (0usize, 0usize);
        let mut d: f64 = 0.0;
        while i < a.len() && j < b.len() {
            let x = a[i].min(b[j]);
            while i < a.len() && a[i] <= x {
                i += 1;
            }
            while j < b.len() && b[j] <= x {
                j += 1;
            }
            d = d.max((i as f64 / n - j as f64 / m).abs());
        }
        // Once one sample is exhausted its CDF sits at 1 and every later
        // jump of the other only shrinks the gap, so the loop has already
        // seen the supremum.
        d
    }
}

/// The critical KS value at significance `alpha ∈ {0.05, 0.01}` for sample
/// size `n` (asymptotic formula `c(α)·√(1/n)`).
///
/// A sample "fails" the test (is distinguishable from the reference) when its
/// KS statistic exceeds this value.
///
/// # Panics
///
/// Panics if `n` is zero or `alpha` is not one of the supported levels.
#[must_use]
pub fn ks_critical_value(n: usize, alpha: f64) -> f64 {
    assert!(n > 0, "sample size must be positive");
    ks_coefficient(alpha) / (n as f64).sqrt()
}

/// The critical two-sample KS value at significance `alpha ∈ {0.05, 0.01}`
/// for sample sizes `n` and `m` (asymptotic `c(α)·√((n+m)/(n·m))`). Two
/// samples are distinguishable at level `alpha` when their
/// [`Ecdf::ks_two_sample`] statistic exceeds this.
///
/// # Panics
///
/// Panics if either size is zero or `alpha` is not a supported level.
#[must_use]
pub fn ks_two_sample_critical_value(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(n > 0 && m > 0, "sample sizes must be positive");
    let (n, m) = (n as f64, m as f64);
    ks_coefficient(alpha) * ((n + m) / (n * m)).sqrt()
}

fn ks_coefficient(alpha: f64) -> f64 {
    if (alpha - 0.05).abs() < 1e-12 {
        1.358
    } else if (alpha - 0.01).abs() < 1e-12 {
        1.628
    } else {
        panic!("unsupported significance level {alpha}; use 0.05 or 0.01")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg_uniform(n: usize) -> Vec<f64> {
        // Deterministic pseudo-uniform sample.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        (0..n)
            .map(|_| {
                state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                (state >> 11) as f64 / (1u64 << 53) as f64
            })
            .collect()
    }

    #[test]
    fn eval_steps() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0]).expect("valid sample");
        assert_eq!(e.eval(0.5), 0.0);
        assert!((e.eval(1.0) - 1.0 / 3.0).abs() < 1e-15);
        assert!((e.eval(2.9) - 2.0 / 3.0).abs() < 1e-15);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.len(), 3);
        assert!(!e.is_empty());
    }

    #[test]
    fn invalid_samples_are_typed_errors_not_panics() {
        // Regression: `new` used to assert, taking the process down on the
        // first malformed sample instead of reporting a validation error.
        assert!(matches!(Ecdf::new(vec![]), Err(SerrError::InvalidConfig { .. })));
        assert!(matches!(Ecdf::new(vec![1.0, f64::NAN]), Err(SerrError::InvalidValue { .. })));
        assert!(Ecdf::new(vec![f64::INFINITY]).is_ok(), "infinities sort fine; only NaN rejected");
    }

    #[test]
    fn uniform_sample_passes_uniform_ks() {
        let e = Ecdf::new(lcg_uniform(5000)).expect("valid sample");
        let d = e.ks_vs_uniform(1.0);
        assert!(d < ks_critical_value(5000, 0.05), "KS {d} too large for uniform sample");
    }

    #[test]
    fn exponential_sample_passes_exponential_ks() {
        let lambda = 2.5;
        let sample: Vec<f64> = lcg_uniform(5000).iter().map(|u| -(1.0 - u).ln() / lambda).collect();
        let e = Ecdf::new(sample).expect("valid sample");
        let d = e.ks_vs_exponential(lambda);
        assert!(d < ks_critical_value(5000, 0.05), "KS {d} too large for exponential sample");
    }

    #[test]
    fn wrong_rate_fails_exponential_ks() {
        let sample: Vec<f64> = lcg_uniform(5000).iter().map(|u| -(1.0 - u).ln() / 2.5).collect();
        let e = Ecdf::new(sample).expect("valid sample");
        // Testing against a rate 4x too small must be detected.
        let d = e.ks_vs_exponential(0.625);
        assert!(d > ks_critical_value(5000, 0.01), "KS {d} should reject wrong rate");
    }

    #[test]
    fn bimodal_sample_fails_uniform_ks() {
        // Half the mass at ~0.1, half at ~0.9: clearly not uniform.
        let sample: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 0.1 } else { 0.9 }).collect();
        let e = Ecdf::new(sample).expect("valid sample");
        assert!(e.ks_vs_uniform(1.0) > ks_critical_value(1000, 0.01));
    }

    #[test]
    fn critical_values_ordered() {
        assert!(ks_critical_value(100, 0.01) > ks_critical_value(100, 0.05));
        assert!(ks_critical_value(100, 0.05) > ks_critical_value(10000, 0.05));
        // Two-sample with one side infinite-precision degenerates to the
        // one-sample formula; equal sizes cost √2 more.
        let two = ks_two_sample_critical_value(5000, 5000, 0.05);
        assert!((two - 2f64.sqrt() * ks_critical_value(5000, 0.05)).abs() < 1e-15);
    }

    #[test]
    fn two_sample_ks_detects_shift_and_accepts_same_distribution() {
        let u = lcg_uniform(4000);
        let (a, b) = u.split_at(2000);
        let ea = Ecdf::new(a.to_vec()).expect("valid");
        let eb = Ecdf::new(b.to_vec()).expect("valid");
        // Identical sample → D = 0 exactly.
        assert_eq!(ea.ks_two_sample(&ea), 0.0);
        // Two halves of one uniform stream: indistinguishable.
        let d = ea.ks_two_sample(&eb);
        assert_eq!(d, eb.ks_two_sample(&ea), "statistic is symmetric");
        assert!(d < ks_two_sample_critical_value(2000, 2000, 0.05), "KS {d} rejects same dist");
        // A shifted copy must be rejected.
        let shifted: Vec<f64> = a.iter().map(|x| x + 0.2).collect();
        let es = Ecdf::new(shifted).expect("valid");
        let d = ea.ks_two_sample(&es);
        assert!(d > ks_two_sample_critical_value(2000, 2000, 0.01), "KS {d} misses a 0.2 shift");
    }

    #[test]
    fn two_sample_ks_handles_ties_and_disjoint_supports() {
        // All mass tied at one point each, disjoint: D = 1.
        let a = Ecdf::new(vec![1.0; 10]).expect("valid");
        let b = Ecdf::new(vec![2.0; 20]).expect("valid");
        assert_eq!(a.ks_two_sample(&b), 1.0);
        assert_eq!(b.ks_two_sample(&a), 1.0);
        // Identical discrete distributions: D = 0 despite ties.
        let c = Ecdf::new(vec![1.0, 1.0, 2.0, 2.0]).expect("valid");
        let d = Ecdf::new(vec![1.0, 2.0]).expect("valid");
        assert_eq!(c.ks_two_sample(&d), 0.0);
    }
}
