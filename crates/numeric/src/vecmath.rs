//! Branchless batch transcendentals for structure-of-arrays hot loops.
//!
//! The batched inversion sampler (`serr-mc`) turns a whole chunk of
//! uniforms into exponential draws and truncated-exponential masses with
//! two logarithm passes per chunk. `libm`'s `ln`/`ln_1p` are accurate but
//! branchy (domain checks, subnormal paths, table lookups), which defeats
//! auto-vectorization; the passes here trade a few ulp for straight-line
//! code the compiler can lower to SIMD:
//!
//! * [`ln_in_place`] — natural log of positive *normal* finite values,
//!   branchless exponent/mantissa split plus an odd `atanh` series;
//! * [`ln_one_minus_in_place`] — `ln(1 − y)` for `y ∈ [0, 1)` without
//!   cancellation at tiny `y` (the `ln_1p` use case), tiered by the batch
//!   maximum: short Taylor below 1e-4, atanh series below 0.5, `ln_1p`
//!   fallback above.
//!
//! Both are deterministic functions of the input slice alone — never of
//! thread count or timing — which is what the batched sampler's
//! bit-reproducibility contract needs. [`ln_in_place`] is additionally a
//! pure element-wise map (chunking a slice cannot change any result);
//! [`ln_one_minus_in_place`] picks its evaluation tier from the batch
//! maximum, so it is deterministic per batch, with the tiers agreeing to
//! a few ulp where they meet.

/// Exponent-split offset: subtracting `OFF` from the IEEE-754 bit pattern
/// of a positive normal `x` puts the represented mantissa `z` in
/// `[0.6875, 1.375)`, so `x = 2^e · z` with `|ln z| ≤ 0.375` — small
/// enough for a short odd series in `s = (z − 1)/(z + 1)`.
const OFF: u64 = 0x3FE6_0000_0000_0000;

/// Coefficients of `atanh(s)/s = 1 + s²/3 + s⁴/5 + …` beyond the leading 1,
/// highest order first for Horner evaluation. With `|s| ≤ 0.1852` (the
/// `[0.6875, 1.375)` mantissa range) eleven terms leave a truncation error
/// below 1e-17 relative — under one ulp.
const ATANH_LN: [f64; 11] = [
    1.0 / 23.0,
    1.0 / 21.0,
    1.0 / 19.0,
    1.0 / 17.0,
    1.0 / 15.0,
    1.0 / 13.0,
    1.0 / 11.0,
    1.0 / 9.0,
    1.0 / 7.0,
    1.0 / 5.0,
    1.0 / 3.0,
];

/// Same series for [`ln_one_minus_in_place`], where `t = y/(2 − y) ≤ 1/3`
/// converges slower: sixteen terms bound truncation below 1e-17 relative at
/// the worst case `y = 0.5`.
const ATANH_LN1M: [f64; 16] = [
    1.0 / 33.0,
    1.0 / 31.0,
    1.0 / 29.0,
    1.0 / 27.0,
    1.0 / 25.0,
    1.0 / 23.0,
    1.0 / 21.0,
    1.0 / 19.0,
    1.0 / 17.0,
    1.0 / 15.0,
    1.0 / 13.0,
    1.0 / 11.0,
    1.0 / 9.0,
    1.0 / 7.0,
    1.0 / 5.0,
    1.0 / 3.0,
];

/// One branchless `ln` evaluation — the scalar core of [`ln_in_place`],
/// exposed for callers that need single values on the same
/// bit-deterministic path. `x` must be positive, finite, and
/// normal (`x ≥ f64::MIN_POSITIVE`); anything else is garbage-in
/// garbage-out by design — the callers' inputs are uniforms on the
/// `[2⁻⁵², 1]` grid, which never leave the domain.
#[inline]
#[must_use]
pub fn ln(x: f64) -> f64 {
    // The exponent split is signed (arithmetic shift) for x < 0.6875;
    // z ∈ [0.6875, 1.375) makes z − 1 exact (Sterbenz), so the atanh form
    // keeps full relative accuracy as x → 1 where ln → 0. The Horner loop
    // uses `mul_add` — the IEEE-754 fusedMultiplyAdd, exactly rounded and
    // therefore bit-identical on every target (hardware FMA or the soft
    // fallback), unlike compiler contraction, which Rust never performs.
    let (z, e) = split_ln(x);
    ln_tail((z - 1.0) / (z + 1.0), e)
}

/// Replaces every element with its natural logarithm.
///
/// Domain: positive finite normal values (see [`ln`]). Accuracy is
/// within a few ulp of `f64::ln` across the domain — the unit tests pin
/// 5e-15 relative against `libm` including the extremes `2⁻⁵²` and `1`.
///
/// ```
/// use serr_numeric::vecmath::ln_in_place;
/// let mut xs = [1.0, core::f64::consts::E, 0.5];
/// ln_in_place(&mut xs);
/// assert_eq!(xs[0], 0.0);
/// assert!((xs[1] - 1.0).abs() < 1e-14);
/// assert!((xs[2] + core::f64::consts::LN_2).abs() < 1e-14);
/// ```
pub fn ln_in_place(xs: &mut [f64]) {
    // Deliberately a plain element-wise loop: LLVM lowers it to packed
    // vdivpd + FMA chains. (A pairwise shared-reciprocal variant — one
    // divide per two elements — was measured slower here: the pair-strided
    // loop shape costs more in shuffles than the saved divides.)
    for x in xs {
        *x = ln(*x);
    }
}

/// Exponent/mantissa split of the log evaluation:
/// `x = 2^e · z` with `z ∈ [0.6875, 1.375)`.
#[inline]
fn split_ln(x: f64) -> (f64, f64) {
    let bits = x.to_bits();
    let tmp = bits.wrapping_sub(OFF);
    #[allow(clippy::cast_possible_truncation, clippy::cast_precision_loss)]
    let e = ((tmp as i64) >> 52) as f64;
    (f64::from_bits(bits.wrapping_sub(tmp & (0xFFF_u64 << 52))), e)
}

/// Series tail of the log evaluation given `s = (z − 1)/(z + 1)` and the
/// exponent `e`.
#[inline]
fn ln_tail(s: f64, e: f64) -> f64 {
    let s2 = s * s;
    let mut p = ATANH_LN[0];
    for &c in &ATANH_LN[1..] {
        p = p.mul_add(s2, c);
    }
    e * core::f64::consts::LN_2 + 2.0 * (s * s2).mul_add(p, s)
}

/// Replaces every element `y ∈ [0, 1)` with `ln(1 − y)`, preserving full
/// relative accuracy for tiny `y` (where forming `1 − y` first would lose
/// every significant digit — the reason `ln_1p` exists).
///
/// The evaluation tier is chosen from the batch maximum: all elements
/// ≤ 1e-4 (the low-λW regime the batched sampler's hot sweeps live in)
/// use a four-term Taylor pass with no division; ≤ 0.5 a branchless
/// series in `t = y/(2 − y)`; otherwise `f64::ln_1p` per element (the
/// `y > 0.5` regime means λW > ln 2, far from the low-AVF hot path).
///
/// ```
/// use serr_numeric::vecmath::ln_one_minus_in_place;
/// let mut ys = [0.0, 1e-18, 0.5];
/// ln_one_minus_in_place(&mut ys);
/// assert_eq!(ys[0], 0.0);
/// assert!((ys[1] / -1e-18 - 1.0).abs() < 1e-12);
/// assert!((ys[2] + core::f64::consts::LN_2).abs() < 1e-14);
/// ```
pub fn ln_one_minus_in_place(ys: &mut [f64]) {
    // `· 1.0` and `.min(∞)` are bit-exact identities on the domain, so
    // delegating costs nothing but two dead lanes of constant folding.
    ln_one_minus_scaled_in_place(ys, 1.0, f64::INFINITY);
}

/// Replaces every element `y ∈ [0, 1)` with `(ln(1 − y) · scale).min(cap)`
/// — the inverse-CDF transform from a scaled uniform to a capped
/// truncated-exponential mass, fused into the log pass so the hot sampler
/// loop does not spend a separate read-modify-write pass on the scale and
/// cap. Tier selection and per-tier results match
/// [`ln_one_minus_in_place`] followed by the scale/cap loop exactly: the
/// fusion multiplies the same rounded `ln(1 − y)` value.
pub fn ln_one_minus_scaled_in_place(ys: &mut [f64], scale: f64, cap: f64) {
    let max = ys.iter().fold(0.0_f64, |a, &b| a.max(b));
    if max <= 1e-4 {
        // Tiny-mass batches — the low-AVF / low-λW regime where the
        // batched sampler lives — need only the first Taylor terms:
        // truncating −ln(1−y) = y + y²/2 + y³/3 + y⁴/4 + … after y⁴
        // leaves a relative error ≤ max³/5 < 2e-13·max ≤ 2e-17, and the
        // pass is four fused ops per element with no division.
        for y in ys {
            let v = *y;
            let ln1m = -v * v.mul_add(v.mul_add(v.mul_add(0.25, 1.0 / 3.0), 0.5), 1.0);
            *y = (ln1m * scale).min(cap);
        }
    } else if max <= 0.5 {
        for y in ys {
            let t = *y / (2.0 - *y);
            let t2 = t * t;
            let mut p = ATANH_LN1M[0];
            for &c in &ATANH_LN1M[1..] {
                p = p.mul_add(t2, c);
            }
            let ln1m = -2.0 * (t * t2).mul_add(p, t);
            *y = (ln1m * scale).min(cap);
        }
    } else {
        for y in ys {
            *y = ((-*y).ln_1p() * scale).min(cap);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_matches_libm_across_the_uniform_grid_domain() {
        // The batched sampler feeds values in [2^-52, 1]; sweep that range
        // (log-spaced) plus both exact endpoints.
        let mut worst = 0.0_f64;
        for i in 0..=5200 {
            let x = (2.0_f64).powf(-52.0 * (1.0 - f64::from(i) / 5200.0));
            let mut v = [x];
            ln_in_place(&mut v);
            let want = x.ln();
            let err = if want == 0.0 { v[0].abs() } else { ((v[0] - want) / want).abs() };
            worst = worst.max(err);
            assert!(err < 5e-15, "ln({x:e}) = {} want {want} (rel {err:e})", v[0]);
        }
        assert!(worst < 5e-15, "worst relative error {worst:e}");
    }

    #[test]
    fn ln_handles_the_exact_extremes() {
        let mut v = [1.0, (2.0_f64).powi(-52), 1.0 - (2.0_f64).powi(-52)];
        ln_in_place(&mut v);
        assert_eq!(v[0], 0.0, "ln(1) must be exactly 0");
        let want = -52.0 * core::f64::consts::LN_2;
        assert!(((v[1] - want) / want).abs() < 1e-15, "ln(2^-52) = {}", v[1]);
        // ln(1 − 2^-52) ≈ −2^-52: the atanh form keeps relative accuracy
        // right next to 1, where the result nearly vanishes.
        let want = (1.0 - (2.0_f64).powi(-52)).ln();
        assert!(((v[2] - want) / want).abs() < 1e-12, "ln(1-2^-52) = {:e} want {want:e}", v[2]);
    }

    #[test]
    fn ln_covers_general_positive_values_too() {
        for &x in &[3.5e-300, 1e-10, 0.1, 2.0, 3.0, 1e10, 8.9e307] {
            let mut v = [x];
            ln_in_place(&mut v);
            let want = x.ln();
            assert!(((v[0] - want) / want).abs() < 5e-15, "ln({x:e}) = {} want {want}", v[0]);
        }
    }

    #[test]
    fn ln_one_minus_matches_ln_1p_across_the_unit_interval() {
        for i in 0..=1000 {
            let y = f64::from(i) / 1000.0 * 0.999;
            let mut v = [y];
            ln_one_minus_in_place(&mut v);
            let want = (-y).ln_1p();
            let err = if want == 0.0 { v[0].abs() } else { ((v[0] - want) / want).abs() };
            assert!(err < 5e-15, "ln1m({y}) = {} want {want} (rel {err:e})", v[0]);
        }
    }

    #[test]
    fn ln_one_minus_keeps_relative_accuracy_at_tiny_arguments() {
        // ln(1 − y) ≈ −y − y²/2: the naive 1 − y route would return 0 here.
        for &y in &[1e-300, 1e-100, 2.0_f64.powi(-52), 1e-8] {
            let mut v = [y];
            ln_one_minus_in_place(&mut v);
            assert!((v[0] / -y - 1.0).abs() < 1e-7, "ln1m({y:e}) = {:e}, want ≈ {:e}", v[0], -y);
            let want = (-y).ln_1p();
            assert!(((v[0] - want) / want).abs() < 5e-15);
        }
    }

    #[test]
    fn ln_one_minus_mixed_batch_takes_the_fallback_and_stays_exact() {
        // One element above 0.5 pushes the whole batch onto the ln_1p path;
        // results must still match the reference for every element.
        let ys = [1e-12, 0.3, 0.7, 0.999_999];
        let mut v = ys;
        ln_one_minus_in_place(&mut v);
        for (y, got) in ys.iter().zip(v) {
            let want = (-y).ln_1p();
            assert!(((got - want) / want).abs() < 5e-15, "ln1m({y}) = {got} want {want}");
        }
    }

    #[test]
    fn scaled_pass_matches_the_unscaled_pass_plus_the_separate_loop() {
        // The fusion contract: bit-identical to ln_one_minus_in_place
        // followed by `(x · scale).min(cap)`, in every tier.
        for (tier_max, cap) in [(9e-5, 4e-5), (0.4, 0.1), (0.97, 0.9)] {
            let ys: Vec<f64> = (0..333).map(|i| f64::from(i) / 333.0 * tier_max).collect();
            let scale = -1.0 / 3.7e-4;
            let mut fused = ys.clone();
            ln_one_minus_scaled_in_place(&mut fused, scale, cap);
            let mut two_pass = ys.clone();
            ln_one_minus_in_place(&mut two_pass);
            for x in &mut two_pass {
                *x = (*x * scale).min(cap);
            }
            for (f, t) in fused.iter().zip(&two_pass) {
                assert_eq!(f.to_bits(), t.to_bits(), "fusion changed bits (max {tier_max})");
            }
        }
    }

    #[test]
    fn passes_are_pure_element_wise_maps() {
        // Chunked evaluation must agree bit-for-bit with whole-slice
        // evaluation: the sampler's determinism contract depends on it.
        let xs: Vec<f64> = (1..=257).map(|i| f64::from(i) / 257.0).collect();
        let mut whole = xs.clone();
        ln_in_place(&mut whole);
        for split in [1, 7, 64, 256] {
            let mut parts = xs.clone();
            let (a, b) = parts.split_at_mut(split);
            ln_in_place(a);
            ln_in_place(b);
            assert_eq!(parts, whole, "split at {split} changed ln results");
        }
    }
}
