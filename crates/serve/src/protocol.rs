//! The `serr serve` wire protocol: JSON Lines over a byte stream.
//!
//! One request per line, one response line per request, and **every**
//! admitted request ends in exactly one of four typed terminal states:
//!
//! | state      | meaning                                                  |
//! |------------|----------------------------------------------------------|
//! | `result`   | full-fidelity estimate, bit-identical to the batch CLI   |
//! | `degraded` | honest estimate from a truncated run (deadline pressure) |
//! | `shed`     | refused by admission control before any work was done    |
//! | `error`    | typed failure (bad request, injected fault, estimator)   |
//!
//! Requests and responses are encoded with the workspace's own
//! [`Json`] value (shortest-round-trip floats), so journaled responses
//! replay **bit-identically** after a restart.
//!
//! The request grammar reuses [`WorkloadSpec`] verbatim — the same strings
//! the CLI accepts — and [`Request::body_canonical`] gives each request a
//! canonical spelling that keys the trace cache and the resume journal.

use serr_core::jsonio::Json;
use serr_core::prelude::{SamplerKind, WorkloadSpec};

/// Hard cap on one request frame. A line longer than this is rejected with
/// a typed `error` response instead of being buffered without bound.
pub const MAX_FRAME_BYTES: usize = 16 * 1024;

/// Hard cap on design points in one `sweep` request: bounds the response
/// frame and the shared-stream kernel's per-point working set.
pub const MAX_SWEEP_POINTS: usize = 256;

/// The work a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum RequestBody {
    /// Single-component MTTF estimate (the CLI's `mttf`).
    Mttf {
        /// The workload, in CLI spelling.
        workload: WorkloadSpec,
        /// Component raw error rate in errors/year.
        rate_per_year: f64,
        /// Monte Carlo trials.
        trials: u64,
        /// Time-to-failure sampler.
        sampler: SamplerKind,
    },
    /// SOFR cluster projection (the CLI's `sofr`).
    Sofr {
        /// The workload each component runs.
        workload: WorkloadSpec,
        /// Per-component raw error rate in errors/year.
        rate_per_year: f64,
        /// Number of components.
        components: u64,
        /// Monte Carlo trials.
        trials: u64,
        /// Time-to-failure sampler.
        sampler: SamplerKind,
    },
    /// Multi-point MTTF sweep over one workload (the CLI's `serr sweep`
    /// rate axis): every rate is estimated off ONE shared-stream kernel
    /// run (`MonteCarlo::component_mttf_multi`) — common random numbers
    /// across the whole sweep — and each point is bit-identical to the
    /// single-point `mttf` request for the same rate.
    Sweep {
        /// The workload every point runs, in CLI spelling.
        workload: WorkloadSpec,
        /// Per-point raw error rates in errors/year, in response order.
        rates_per_year: Vec<f64>,
        /// Monte Carlo trials per point.
        trials: u64,
        /// Time-to-failure sampler.
        sampler: SamplerKind,
    },
    /// Snapshot of the service counters.
    Stats,
    /// Graceful shutdown: drain, journal, acknowledge, exit.
    Shutdown,
}

impl RequestBody {
    /// The canonical spelling of this body (see
    /// [`Request::body_canonical`]). For a [`RequestBody::Sweep`] point,
    /// the equivalent single-point [`RequestBody::Mttf`] body's canonical
    /// string is the key its clean result is published under.
    #[must_use]
    pub fn canonical(&self) -> String {
        Json::Obj(body_fields(self)).to_json()
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed on the response.
    pub id: u64,
    /// Wall-clock budget for the whole request, in milliseconds. Overload
    /// degrades the estimate (truncated, wider CI) instead of lying.
    pub deadline_ms: Option<u64>,
    /// Deterministic work key for fault injection and telemetry. Defaults
    /// to the server's arrival sequence when absent.
    pub tag: Option<u64>,
    /// What to do.
    pub body: RequestBody,
}

/// A frame that could not become a [`Request`]: carries the id when one
/// was recoverable, so the error response still correlates.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// The client id, when the frame was parseable enough to find one.
    pub id: Option<u64>,
    /// What was wrong with the frame.
    pub reason: String,
}

impl FrameError {
    fn new(id: Option<u64>, reason: impl Into<String>) -> Self {
        FrameError { id, reason: reason.into() }
    }
}

fn field_f64(v: &Json, key: &str, id: Option<u64>) -> Result<f64, FrameError> {
    let x = v
        .get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| FrameError::new(id, format!("missing or non-numeric \"{key}\"")))?;
    if !(x.is_finite() && x > 0.0) {
        return Err(FrameError::new(id, format!("\"{key}\" must be positive and finite")));
    }
    Ok(x)
}

fn field_count(v: &Json, key: &str, default: u64, id: Option<u64>) -> Result<u64, FrameError> {
    match v.get(key) {
        None => Ok(default),
        Some(j) => {
            let n = j
                .as_u64()
                .ok_or_else(|| FrameError::new(id, format!("\"{key}\" must be a whole number")))?;
            if n == 0 {
                return Err(FrameError::new(id, format!("\"{key}\" must be at least 1")));
            }
            Ok(n)
        }
    }
}

fn field_rates(v: &Json, id: Option<u64>) -> Result<Vec<f64>, FrameError> {
    let key = "rates_per_year";
    let rows = v
        .get(key)
        .and_then(Json::as_array)
        .ok_or_else(|| FrameError::new(id, format!("missing or non-array \"{key}\"")))?;
    if rows.is_empty() {
        return Err(FrameError::new(id, format!("\"{key}\" must name at least one rate")));
    }
    if rows.len() > MAX_SWEEP_POINTS {
        return Err(FrameError::new(
            id,
            format!("\"{key}\" has {} points, max {MAX_SWEEP_POINTS}", rows.len()),
        ));
    }
    rows.iter()
        .map(|r| {
            let x = r
                .as_f64()
                .ok_or_else(|| FrameError::new(id, format!("\"{key}\" entries must be numbers")))?;
            if !(x.is_finite() && x > 0.0) {
                return Err(FrameError::new(
                    id,
                    format!("\"{key}\" entries must be positive and finite"),
                ));
            }
            Ok(x)
        })
        .collect()
}

fn field_workload(v: &Json, id: Option<u64>) -> Result<WorkloadSpec, FrameError> {
    let s = v
        .get("workload")
        .and_then(Json::as_str)
        .ok_or_else(|| FrameError::new(id, "missing \"workload\""))?;
    WorkloadSpec::parse(s).map_err(|e| FrameError::new(id, e.to_string()))
}

fn field_sampler(v: &Json, id: Option<u64>) -> Result<SamplerKind, FrameError> {
    match v.get("sampler") {
        None => Ok(SamplerKind::default()),
        Some(j) => {
            let s = j
                .as_str()
                .ok_or_else(|| FrameError::new(id, "\"sampler\" must be a string label"))?;
            SamplerKind::parse(s).map_err(|e| FrameError::new(id, e.to_string()))
        }
    }
}

impl Request {
    /// Parses one frame line.
    ///
    /// # Errors
    ///
    /// [`FrameError`] for oversized, malformed, or invalid frames, carrying
    /// the client id whenever one was recoverable.
    pub fn parse(line: &str) -> Result<Request, FrameError> {
        if line.len() > MAX_FRAME_BYTES {
            return Err(FrameError::new(
                None,
                format!("oversized frame: {} bytes, max {MAX_FRAME_BYTES}", line.len()),
            ));
        }
        let v = Json::parse(line)
            .ok_or_else(|| FrameError::new(None, "malformed frame: not a JSON object"))?;
        let id = v.get("id").and_then(Json::as_u64);
        let cmd = v
            .get("cmd")
            .and_then(Json::as_str)
            .ok_or_else(|| FrameError::new(id, "missing \"cmd\""))?;
        let id_known = id.ok_or_else(|| FrameError::new(None, "missing or non-integer \"id\""))?;
        let deadline_ms = match v.get("deadline_ms") {
            None => None,
            Some(j) => Some(j.as_u64().ok_or_else(|| {
                FrameError::new(id, "\"deadline_ms\" must be a whole number of milliseconds")
            })?),
        };
        let tag = match v.get("tag") {
            None => None,
            Some(j) => Some(
                j.as_u64().ok_or_else(|| FrameError::new(id, "\"tag\" must be a whole number"))?,
            ),
        };
        let body = match cmd {
            "mttf" => RequestBody::Mttf {
                workload: field_workload(&v, id)?,
                rate_per_year: field_f64(&v, "rate_per_year", id)?,
                trials: field_count(&v, "trials", 100_000, id)?,
                sampler: field_sampler(&v, id)?,
            },
            "sofr" => RequestBody::Sofr {
                workload: field_workload(&v, id)?,
                rate_per_year: field_f64(&v, "rate_per_year", id)?,
                components: field_count(&v, "components", 1, id)?,
                trials: field_count(&v, "trials", 100_000, id)?,
                sampler: field_sampler(&v, id)?,
            },
            "sweep" => RequestBody::Sweep {
                workload: field_workload(&v, id)?,
                rates_per_year: field_rates(&v, id)?,
                trials: field_count(&v, "trials", 100_000, id)?,
                sampler: field_sampler(&v, id)?,
            },
            "stats" => RequestBody::Stats,
            "shutdown" => RequestBody::Shutdown,
            other => return Err(FrameError::new(id, format!("unknown \"cmd\" `{other}`"))),
        };
        Ok(Request { id: id_known, deadline_ms, tag, body })
    }

    /// Encodes the request as one wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut fields = vec![("id".to_owned(), Json::Num(self.id as f64))];
        if let Some(ms) = self.deadline_ms {
            fields.push(("deadline_ms".to_owned(), Json::Num(ms as f64)));
        }
        if let Some(tag) = self.tag {
            fields.push(("tag".to_owned(), Json::Num(tag as f64)));
        }
        fields.extend(body_fields(&self.body));
        Json::Obj(fields).to_json()
    }

    /// The canonical spelling of the request body — id, deadline, and tag
    /// excluded, keys in fixed order, floats shortest-round-trip. Two
    /// requests for the same computation always render identically, so this
    /// string keys the trace cache and the resume journal.
    #[must_use]
    pub fn body_canonical(&self) -> String {
        self.body.canonical()
    }
}

/// The body's wire fields in canonical (fixed) order.
fn body_fields(body: &RequestBody) -> Vec<(String, Json)> {
    let s = |v: &str| Json::Str(v.to_owned());
    match body {
        RequestBody::Mttf { workload, rate_per_year, trials, sampler } => vec![
            ("cmd".to_owned(), s("mttf")),
            ("workload".to_owned(), s(&workload.canonical())),
            ("rate_per_year".to_owned(), Json::Num(*rate_per_year)),
            ("trials".to_owned(), Json::Num(*trials as f64)),
            ("sampler".to_owned(), s(sampler.label())),
        ],
        RequestBody::Sofr { workload, rate_per_year, components, trials, sampler } => vec![
            ("cmd".to_owned(), s("sofr")),
            ("workload".to_owned(), s(&workload.canonical())),
            ("rate_per_year".to_owned(), Json::Num(*rate_per_year)),
            ("components".to_owned(), Json::Num(*components as f64)),
            ("trials".to_owned(), Json::Num(*trials as f64)),
            ("sampler".to_owned(), s(sampler.label())),
        ],
        RequestBody::Sweep { workload, rates_per_year, trials, sampler } => vec![
            ("cmd".to_owned(), s("sweep")),
            ("workload".to_owned(), s(&workload.canonical())),
            (
                "rates_per_year".to_owned(),
                Json::Arr(rates_per_year.iter().map(|&r| Json::Num(r)).collect()),
            ),
            ("trials".to_owned(), Json::Num(*trials as f64)),
            ("sampler".to_owned(), s(sampler.label())),
        ],
        RequestBody::Stats => vec![("cmd".to_owned(), s("stats"))],
        RequestBody::Shutdown => vec![("cmd".to_owned(), s("shutdown"))],
    }
}

/// The estimate payload of a `result` or `degraded` response.
#[derive(Debug, Clone, PartialEq)]
pub struct Estimate {
    /// Monte Carlo MTTF in seconds (ground truth; bit-identical to the
    /// batch CLI for the same request at any worker-thread count).
    pub mttf_mc_s: f64,
    /// Relative half-width of the 95% confidence interval.
    pub rel_ci95: f64,
    /// The method-under-test MTTF in seconds: the AVF step for `mttf`
    /// requests, the SOFR step for `sofr` requests.
    pub mttf_step_s: f64,
    /// The workload's AVF.
    pub avf: f64,
    /// Provenance label from the guard lattice (`clean`, `degraded`, ...).
    pub provenance: String,
    /// The sampler that actually ran.
    pub sampler: String,
    /// Trials completed (fewer than requested when truncated).
    pub trials_done: u64,
    /// Whether a deadline cut the run short (the CI is honestly wider).
    pub truncated: bool,
    /// Whether this estimate was replayed from the resume journal instead
    /// of recomputed.
    pub resumed: bool,
}

impl Estimate {
    /// The terminal state this estimate reports: `degraded` whenever the
    /// run was truncated or the guard lattice says anything but clean.
    #[must_use]
    pub fn state(&self) -> &'static str {
        if self.truncated || self.provenance != "clean" {
            "degraded"
        } else {
            "result"
        }
    }

    /// Encodes the payload fields (everything but `id`/`state`).
    #[must_use]
    pub fn to_fields(&self) -> Vec<(String, Json)> {
        vec![
            ("mttf_mc_s".to_owned(), Json::Num(self.mttf_mc_s)),
            ("rel_ci95".to_owned(), Json::Num(self.rel_ci95)),
            ("mttf_step_s".to_owned(), Json::Num(self.mttf_step_s)),
            ("avf".to_owned(), Json::Num(self.avf)),
            ("provenance".to_owned(), Json::Str(self.provenance.clone())),
            ("sampler".to_owned(), Json::Str(self.sampler.clone())),
            ("trials_done".to_owned(), Json::Num(self.trials_done as f64)),
            ("truncated".to_owned(), Json::Bool(self.truncated)),
            ("resumed".to_owned(), Json::Bool(self.resumed)),
        ]
    }

    /// Decodes the payload fields; `None` on schema mismatch.
    #[must_use]
    pub fn from_fields(v: &Json) -> Option<Estimate> {
        Some(Estimate {
            mttf_mc_s: v.get("mttf_mc_s")?.as_f64()?,
            rel_ci95: v.get("rel_ci95")?.as_f64()?,
            mttf_step_s: v.get("mttf_step_s")?.as_f64()?,
            avf: v.get("avf")?.as_f64()?,
            provenance: v.get("provenance")?.as_str()?.to_owned(),
            sampler: v.get("sampler")?.as_str()?.to_owned(),
            trials_done: v.get("trials_done")?.as_u64()?,
            truncated: v.get("truncated")?.as_bool()?,
            resumed: v.get("resumed")?.as_bool()?,
        })
    }
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// A completed estimate — state `result` or `degraded` per
    /// [`Estimate::state`].
    Estimate {
        /// Echoed request id.
        id: u64,
        /// The payload.
        est: Estimate,
    },
    /// A completed multi-point sweep — one estimate per requested rate,
    /// in request order. State `result` only when EVERY point is a clean
    /// full-fidelity result; any degraded point degrades the frame.
    Sweep {
        /// Echoed request id.
        id: u64,
        /// Per-point payloads, in `rates_per_year` order.
        points: Vec<Estimate>,
    },
    /// Refused by admission control; no estimator work was done.
    Shed {
        /// Echoed request id.
        id: u64,
        /// Which policy refused and why.
        reason: String,
    },
    /// A typed failure.
    Error {
        /// Echoed request id, when the frame carried a recoverable one.
        id: Option<u64>,
        /// The typed error, rendered.
        error: String,
        /// For deadline exhaustion: the budget that was granted, seconds.
        budget_s: Option<f64>,
        /// For deadline exhaustion: wall-clock seconds actually spent.
        elapsed_s: Option<f64>,
    },
    /// Service counters snapshot.
    Stats {
        /// Echoed request id.
        id: u64,
        /// Counter names and values, sorted by name.
        counters: Vec<(String, u64)>,
    },
    /// Acknowledges a shutdown request; the server drains and exits after
    /// sending this.
    ShutdownAck {
        /// Echoed request id.
        id: u64,
    },
}

impl Response {
    /// The typed terminal state this response reports.
    #[must_use]
    pub fn state(&self) -> &'static str {
        match self {
            Response::Estimate { est, .. } => est.state(),
            Response::Sweep { points, .. } => {
                if points.iter().all(|e| e.state() == "result") {
                    "result"
                } else {
                    "degraded"
                }
            }
            Response::Shed { .. } => "shed",
            Response::Error { .. } => "error",
            // Stats and shutdown acks complete their requests successfully.
            Response::Stats { .. } | Response::ShutdownAck { .. } => "result",
        }
    }

    /// Encodes the response as one wire line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let id_field = |id: u64| ("id".to_owned(), Json::Num(id as f64));
        let state = ("state".to_owned(), Json::Str(self.state().to_owned()));
        let fields = match self {
            Response::Estimate { id, est } => {
                let mut f = vec![id_field(*id), state];
                f.extend(est.to_fields());
                f
            }
            Response::Sweep { id, points } => {
                let rows = points.iter().map(|e| Json::Obj(e.to_fields())).collect();
                vec![id_field(*id), state, ("points".to_owned(), Json::Arr(rows))]
            }
            Response::Shed { id, reason } => {
                vec![id_field(*id), state, ("reason".to_owned(), Json::Str(reason.clone()))]
            }
            Response::Error { id, error, budget_s, elapsed_s } => {
                let mut f =
                    vec![("id".to_owned(), id.map_or(Json::Null, |id| Json::Num(id as f64)))];
                f.push(state);
                f.push(("error".to_owned(), Json::Str(error.clone())));
                if let (Some(b), Some(e)) = (budget_s, elapsed_s) {
                    f.push(("budget_s".to_owned(), Json::Num(*b)));
                    f.push(("elapsed_s".to_owned(), Json::Num(*e)));
                }
                f
            }
            Response::Stats { id, counters } => {
                let rows = counters
                    .iter()
                    .map(|(k, n)| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(k.clone())),
                            ("value".to_owned(), Json::Num(*n as f64)),
                        ])
                    })
                    .collect();
                vec![id_field(*id), state, ("counters".to_owned(), Json::Arr(rows))]
            }
            Response::ShutdownAck { id } => {
                vec![id_field(*id), state, ("shutdown".to_owned(), Json::Bool(true))]
            }
        };
        Json::Obj(fields).to_json()
    }

    /// Parses one response line; `None` for torn or non-protocol lines
    /// (e.g. a connection dropped mid-response).
    #[must_use]
    pub fn parse(line: &str) -> Option<Response> {
        let v = Json::parse(line)?;
        let id = v.get("id").and_then(Json::as_u64);
        match v.get("state")?.as_str()? {
            "result" | "degraded" => {
                if v.get("shutdown").and_then(Json::as_bool) == Some(true) {
                    return Some(Response::ShutdownAck { id: id? });
                }
                if let Some(rows) = v.get("counters").and_then(Json::as_array) {
                    let mut counters = Vec::with_capacity(rows.len());
                    for r in rows {
                        counters
                            .push((r.get("name")?.as_str()?.to_owned(), r.get("value")?.as_u64()?));
                    }
                    return Some(Response::Stats { id: id?, counters });
                }
                if let Some(rows) = v.get("points").and_then(Json::as_array) {
                    let mut points = Vec::with_capacity(rows.len());
                    for r in rows {
                        points.push(Estimate::from_fields(r)?);
                    }
                    return Some(Response::Sweep { id: id?, points });
                }
                Some(Response::Estimate { id: id?, est: Estimate::from_fields(&v)? })
            }
            "shed" => {
                Some(Response::Shed { id: id?, reason: v.get("reason")?.as_str()?.to_owned() })
            }
            "error" => Some(Response::Error {
                id,
                error: v.get("error")?.as_str()?.to_owned(),
                budget_s: v.get("budget_s").and_then(Json::as_f64),
                elapsed_s: v.get("elapsed_s").and_then(Json::as_f64),
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mttf_request() -> Request {
        Request {
            id: 7,
            deadline_ms: Some(1_500),
            tag: Some(3),
            body: RequestBody::Mttf {
                workload: WorkloadSpec::parse("duty:0.002:0.5").expect("valid spec"),
                rate_per_year: 1e6,
                trials: 2_000,
                sampler: SamplerKind::default(),
            },
        }
    }

    #[test]
    fn requests_roundtrip_through_the_wire_format() {
        let req = mttf_request();
        assert_eq!(Request::parse(&req.to_line()).expect("parses"), req);
        let sofr = Request {
            id: 9,
            deadline_ms: None,
            tag: None,
            body: RequestBody::Sofr {
                workload: WorkloadSpec::Day,
                rate_per_year: 2.5,
                components: 5_000,
                trials: 10_000,
                sampler: SamplerKind::EventLoop,
            },
        };
        assert_eq!(Request::parse(&sofr.to_line()).expect("parses"), sofr);
        for cmd in ["stats", "shutdown"] {
            let line = format!("{{\"id\":1,\"cmd\":\"{cmd}\"}}");
            assert!(Request::parse(&line).is_ok(), "{cmd} must parse");
        }
    }

    #[test]
    fn frame_errors_carry_the_id_when_recoverable() {
        // Parseable id, bad payload: the error correlates.
        let e = Request::parse(r#"{"id":42,"cmd":"mttf","workload":"quake"}"#).unwrap_err();
        assert_eq!(e.id, Some(42));
        // Unparseable JSON: no id to recover.
        let e = Request::parse(r#"{"id":42,"cmd":"mt"#).unwrap_err();
        assert_eq!(e.id, None);
        assert!(e.reason.contains("malformed"), "{}", e.reason);
        // Oversized frames are rejected before parsing.
        let huge =
            format!(r#"{{"id":1,"cmd":"mttf","workload":"{}"}}"#, "x".repeat(MAX_FRAME_BYTES));
        let e = Request::parse(&huge).unwrap_err();
        assert!(e.reason.contains("oversized"), "{}", e.reason);
        // Zero and negative numerics are refused.
        assert!(
            Request::parse(r#"{"id":1,"cmd":"mttf","workload":"day","rate_per_year":0}"#).is_err()
        );
        assert!(Request::parse(
            r#"{"id":1,"cmd":"sofr","workload":"day","rate_per_year":1,"components":0}"#
        )
        .is_err());
    }

    #[test]
    fn sweep_requests_and_responses_roundtrip() {
        let req = Request {
            id: 21,
            deadline_ms: Some(2_000),
            tag: None,
            body: RequestBody::Sweep {
                workload: WorkloadSpec::parse("duty:0.002:0.5").expect("valid spec"),
                rates_per_year: vec![1e6, 2e6, 4e6],
                trials: 1_500,
                sampler: SamplerKind::default(),
            },
        };
        assert_eq!(Request::parse(&req.to_line()).expect("parses"), req);

        // Empty, oversized, and non-positive rate lists are refused.
        assert!(Request::parse(r#"{"id":1,"cmd":"sweep","workload":"day"}"#).is_err());
        assert!(Request::parse(r#"{"id":1,"cmd":"sweep","workload":"day","rates_per_year":[]}"#)
            .is_err());
        assert!(Request::parse(
            r#"{"id":1,"cmd":"sweep","workload":"day","rates_per_year":[1,0]}"#
        )
        .is_err());
        let big: Vec<String> = (1..=MAX_SWEEP_POINTS + 1).map(|i| i.to_string()).collect();
        let line = format!(
            r#"{{"id":1,"cmd":"sweep","workload":"day","rates_per_year":[{}]}}"#,
            big.join(",")
        );
        let e = Request::parse(&line).unwrap_err();
        assert!(e.reason.contains("max"), "{}", e.reason);

        // The multi-point response: `result` only when every point is.
        let clean = Estimate {
            mttf_mc_s: 1.5e9,
            rel_ci95: 0.01,
            mttf_step_s: 1.4e9,
            avf: 0.5,
            provenance: "clean".to_owned(),
            sampler: "batched-inversion".to_owned(),
            trials_done: 1_500,
            truncated: false,
            resumed: false,
        };
        let r = Response::Sweep { id: 21, points: vec![clean.clone(), clean.clone()] };
        assert_eq!(r.state(), "result");
        assert_eq!(Response::parse(&r.to_line()).expect("parses"), r);
        let partial = Response::Sweep {
            id: 22,
            points: vec![clean.clone(), Estimate { truncated: true, ..clean }],
        };
        assert_eq!(partial.state(), "degraded");
        assert_eq!(Response::parse(&partial.to_line()).expect("parses"), partial);
    }

    #[test]
    fn body_canonical_ignores_id_deadline_and_tag() {
        let a = mttf_request();
        let mut b = a.clone();
        b.id = 99;
        b.deadline_ms = None;
        b.tag = None;
        assert_eq!(a.body_canonical(), b.body_canonical());
        // Different spellings of one workload share a canonical body.
        let line_a = r#"{"id":1,"cmd":"mttf","workload":"duty:1e3:0.5","rate_per_year":1}"#;
        let line_b = r#"{"id":2,"cmd":"mttf","workload":"duty:1000:0.5","rate_per_year":1}"#;
        assert_eq!(
            Request::parse(line_a).expect("parses").body_canonical(),
            Request::parse(line_b).expect("parses").body_canonical()
        );
    }

    #[test]
    fn responses_roundtrip_and_report_their_terminal_state() {
        let est = Estimate {
            mttf_mc_s: 0.1 + 0.2,
            rel_ci95: 0.0123,
            mttf_step_s: 1.0 / 3.0,
            avf: 0.5,
            provenance: "clean".to_owned(),
            sampler: "batched-inversion".to_owned(),
            trials_done: 2_000,
            truncated: false,
            resumed: false,
        };
        let r = Response::Estimate { id: 7, est: est.clone() };
        assert_eq!(r.state(), "result");
        let back = Response::parse(&r.to_line()).expect("parses");
        match &back {
            Response::Estimate { id: 7, est: e } => {
                assert_eq!(e.mttf_mc_s.to_bits(), est.mttf_mc_s.to_bits(), "bit-exact floats");
                assert_eq!(e, &est);
            }
            other => panic!("expected Estimate, got {other:?}"),
        }

        let degraded = Response::Estimate {
            id: 8,
            est: Estimate { truncated: true, provenance: "degraded".to_owned(), ..est.clone() },
        };
        assert_eq!(degraded.state(), "degraded");
        assert_eq!(Response::parse(&degraded.to_line()).expect("parses"), degraded);

        let shed = Response::Shed { id: 9, reason: "queue full (depth 64)".to_owned() };
        assert_eq!(shed.state(), "shed");
        assert_eq!(Response::parse(&shed.to_line()).expect("parses"), shed);

        let err = Response::Error {
            id: Some(10),
            error: "deadline of 0.5 s exhausted".to_owned(),
            budget_s: Some(0.5),
            elapsed_s: Some(0.75),
        };
        assert_eq!(err.state(), "error");
        assert_eq!(Response::parse(&err.to_line()).expect("parses"), err);

        let stats = Response::Stats {
            id: 11,
            counters: vec![("serve.requests".to_owned(), 240), ("serve.shed".to_owned(), 3)],
        };
        assert_eq!(Response::parse(&stats.to_line()).expect("parses"), stats);

        let ack = Response::ShutdownAck { id: 12 };
        assert_eq!(Response::parse(&ack.to_line()).expect("parses"), ack);

        // Torn lines (socket dropped mid-response) parse to None, not junk.
        let torn = &r.to_line()[..r.to_line().len() / 2];
        assert_eq!(Response::parse(torn), None);
    }
}
