//! A shared in-memory trace cache keyed by canonical request body.
//!
//! The compile stage builds each workload trace once; repeat requests for
//! the same canonical body reuse both the raw trace (which feeds the
//! `Validator`, so cached and uncached requests are bit-identical) and its
//! [`CompiledTrace`] (which the guard stage re-verifies on every hit — a
//! cache entry whose invariants no longer hold is rebuilt, not served).
//!
//! Eviction is least-recently-used over a small fixed capacity: the
//! service is expected to see a handful of hot workloads, not an unbounded
//! stream of distinct ones.

use std::sync::{Arc, Mutex};

use serr_trace::{CompiledTrace, VulnerabilityTrace};
use serr_types::SerrError;

/// How a lookup was satisfied, for the metrics at the call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Entry present and its compiled form passed verification.
    Hit,
    /// Entry present but its compiled form failed verification; the trace
    /// was rebuilt from scratch and the entry replaced.
    HitRebuilt,
    /// Entry absent; built and inserted (possibly evicting the LRU entry).
    Miss,
}

/// One cached workload: the raw trace for the estimator and the compiled
/// form for guard verification.
#[derive(Clone)]
pub struct CachedTrace {
    /// The trace exactly as the batch CLI would build it.
    pub raw: Arc<dyn VulnerabilityTrace>,
    /// The compiled form, when the trace is compilable (all service
    /// workloads are; `None` falls back to the event-loop path).
    pub compiled: Option<Arc<CompiledTrace>>,
}

impl std::fmt::Debug for CachedTrace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedTrace")
            .field("avf", &self.raw.avf())
            .field("compiled", &self.compiled.is_some())
            .finish()
    }
}

struct Entry {
    key: String,
    cached: CachedTrace,
    last_use: u64,
}

struct Inner {
    entries: Vec<Entry>,
    tick: u64,
}

/// A bounded LRU cache of built workload traces.
pub struct TraceCache {
    cap: usize,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for TraceCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceCache").field("cap", &self.cap).finish()
    }
}

impl TraceCache {
    /// A cache holding at most `cap` traces (`cap` ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        TraceCache { cap: cap.max(1), inner: Mutex::new(Inner { entries: Vec::new(), tick: 0 }) }
    }

    /// Looks up `key`, building (and caching) the trace with `build_raw` on
    /// a miss or on a hit whose compiled form no longer verifies.
    ///
    /// Returns the outcome alongside the trace so the caller can count
    /// hits, misses, and rebuilds; `evicted` reports whether an LRU entry
    /// was displaced.
    ///
    /// # Errors
    ///
    /// Propagates the builder's error (e.g. an invalid workload spec);
    /// nothing is cached on error.
    pub fn get_or_build(
        &self,
        key: &str,
        build_raw: impl FnOnce() -> Result<Arc<dyn VulnerabilityTrace>, SerrError>,
    ) -> Result<(CachedTrace, CacheOutcome, bool), SerrError> {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        g.tick += 1;
        let tick = g.tick;
        if let Some(e) = g.entries.iter_mut().find(|e| e.key == key) {
            e.last_use = tick;
            let verified = match &e.cached.compiled {
                Some(c) => c.verify().is_ok(),
                // Nothing compiled means nothing to corrupt; serve as-is.
                None => true,
            };
            if verified {
                return Ok((e.cached.clone(), CacheOutcome::Hit, false));
            }
            // The compiled tables failed their invariant check: rebuild in
            // place rather than serving a corrupted estimate.
            let raw = build_raw()?;
            let compiled = CompiledTrace::compile(&*raw).map(Arc::new);
            e.cached = CachedTrace { raw, compiled };
            return Ok((e.cached.clone(), CacheOutcome::HitRebuilt, false));
        }
        let raw = build_raw()?;
        let compiled = CompiledTrace::compile(&*raw).map(Arc::new);
        let cached = CachedTrace { raw, compiled };
        let mut evicted = false;
        if g.entries.len() >= self.cap {
            if let Some(lru) =
                g.entries.iter().enumerate().min_by_key(|(_, e)| e.last_use).map(|(i, _)| i)
            {
                g.entries.swap_remove(lru);
                evicted = true;
            }
        }
        g.entries.push(Entry { key: key.to_owned(), cached: cached.clone(), last_use: tick });
        Ok((cached, CacheOutcome::Miss, evicted))
    }

    /// Test hook: corrupt a cached entry's compiled trace so the next hit
    /// must detect it and rebuild.
    #[cfg(test)]
    fn poison(&self, key: &str, bad: Arc<CompiledTrace>) -> bool {
        let mut g = self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match g.entries.iter_mut().find(|e| e.key == key) {
            Some(e) => {
                e.cached.compiled = Some(bad);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn build(busy: u64) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
        Ok(Arc::new(IntervalTrace::busy_idle(busy, 1_000)?))
    }

    #[test]
    fn hits_reuse_the_same_raw_trace() {
        let cache = TraceCache::new(4);
        let (a, out, _) = cache.get_or_build("k", || build(100)).expect("builds");
        assert_eq!(out, CacheOutcome::Miss);
        let (b, out, _) =
            cache.get_or_build("k", || panic!("hit must not rebuild")).expect("cached");
        assert_eq!(out, CacheOutcome::Hit);
        assert!(Arc::ptr_eq(&a.raw, &b.raw), "hit returns the identical Arc");
        assert!(a.compiled.is_some(), "interval traces compile");
    }

    #[test]
    fn lru_entry_is_evicted_at_capacity() {
        let cache = TraceCache::new(2);
        cache.get_or_build("a", || build(100)).expect("builds");
        cache.get_or_build("b", || build(200)).expect("builds");
        // Touch "a" so "b" is the LRU victim.
        cache.get_or_build("a", || panic!("hit")).expect("cached");
        let (_, out, evicted) = cache.get_or_build("c", || build(300)).expect("builds");
        assert_eq!((out, evicted), (CacheOutcome::Miss, true));
        // "a" survived, "b" did not.
        cache.get_or_build("a", || panic!("a must still be cached")).expect("cached");
        let (_, out, _) = cache.get_or_build("b", || build(200)).expect("rebuilds");
        assert_eq!(out, CacheOutcome::Miss, "the LRU entry was evicted");
    }

    #[test]
    fn corrupted_compiled_entry_is_rebuilt_on_hit() {
        let cache = TraceCache::new(4);
        cache.get_or_build("k", || build(100)).expect("builds");
        // Corrupt the compiled tables the way the chaos taxonomy does: a
        // bit flip in the dominant segment value fails `verify()`.
        let mut broken =
            CompiledTrace::compile(&IntervalTrace::busy_idle(100, 1_000).expect("valid trace"))
                .expect("compiles");
        broken.chaos_flip_dominant_value_bit(51);
        let bad = Arc::new(broken);
        assert!(cache.poison("k", bad));
        let (got, out, _) = cache.get_or_build("k", || build(100)).expect("rebuilds");
        assert_eq!(out, CacheOutcome::HitRebuilt);
        assert!(
            got.compiled.as_deref().map(CompiledTrace::verify).is_some_and(|r| r.is_ok()),
            "the rebuilt entry verifies again"
        );
    }

    #[test]
    fn build_errors_are_propagated_and_not_cached() {
        let cache = TraceCache::new(4);
        let err = cache.get_or_build("bad", || Err(SerrError::invalid_config("nope")));
        assert!(err.is_err());
        // The failed build left no entry behind.
        let (_, out, _) = cache.get_or_build("bad", || build(100)).expect("builds");
        assert_eq!(out, CacheOutcome::Miss);
    }
}
