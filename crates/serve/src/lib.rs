//! `serr serve` — a supervised estimation service over the workspace's
//! validated estimators.
//!
//! The batch CLI answers one question per process; this crate keeps the
//! estimators resident behind a unix or TCP socket speaking JSON Lines,
//! and spends its complexity budget on *robustness*:
//!
//! - **Supervised worker pools** ([`supervisor`]): compile and estimate
//!   stages each run panic-isolated workers; a crash kills one request's
//!   worker, the supervisor restarts the slot under bounded exponential
//!   backoff, and the service keeps serving.
//! - **Bounded queues** ([`queue`]): every stage boundary is a bounded
//!   channel, so overload becomes backpressure and, past policy, a typed
//!   `shed` response ([`server`]) — never unbounded memory growth.
//! - **Graceful degradation**: a request deadline maps onto the Monte
//!   Carlo engine's wall-clock budget; under pressure the service returns
//!   a truncated estimate with an honestly wider confidence interval,
//!   tagged `degraded` through the provenance lattice, instead of lying.
//! - **Drain, don't drop** ([`server`]): shutdown journals every request
//!   that had been admitted but not completed; a restarted server replays
//!   them, and re-requests are answered from the results journal
//!   bit-identically (`resumed: true`).
//! - **Shared computation path**: the service calls the same
//!   [`serr_core::workspec::WorkloadSpec`] grammar,
//!   [`serr_core::experiments::ExperimentConfig::cli`] configuration, and
//!   `Validator` pipeline as `serr mttf` / `serr sofr`, so service
//!   estimates are bit-identical to the batch CLI at any `SERR_THREADS`.
//!
//! The `#[cfg(test)]` chaos soak drives hundreds of requests through all
//! four `serve-*` fault kinds from `serr-inject` (worker panic, worker
//! stall, frame corruption, socket drop) and asserts the service's core
//! invariant: **zero lost requests** — every request reaches exactly one
//! typed terminal state (`result` | `degraded` | `shed` | `error`), and
//! every `clean` result is bit-identical to the batch path.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod client;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod supervisor;

pub use crate::client::Client;
pub use crate::protocol::{Estimate, Request, RequestBody, Response, MAX_FRAME_BYTES};
pub use crate::server::{Bind, ServeConfig, Server};

#[cfg(test)]
mod drain_test;
#[cfg(test)]
mod soak;
