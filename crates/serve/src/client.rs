//! A minimal blocking JSONL client for the `serr serve` protocol — used
//! by `serr request`, the smoke tests, and the chaos soak.

use std::io::{BufRead, BufReader, Write};

use crate::protocol::{Request, Response};
use crate::server::{Bind, Stream};

/// One connection to a running daemon.
#[derive(Debug)]
pub struct Client {
    write: Stream,
    read: BufReader<Stream>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    ///
    /// Propagates the socket connect failure.
    pub fn connect(bind: &Bind) -> std::io::Result<Client> {
        let stream = Stream::connect(bind)?;
        let read = BufReader::new(stream.try_clone()?);
        Ok(Client { write: stream, read })
    }

    /// Sends one raw frame line (the chaos soak uses this to deliver
    /// deliberately corrupted frames).
    ///
    /// # Errors
    ///
    /// Propagates socket write failures.
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        self.write.write_all(line.as_bytes())?;
        self.write.write_all(b"\n")?;
        self.write.flush()
    }

    /// Reads one response line. `Ok(None)` means the connection ended —
    /// cleanly or mid-line (an injected socket drop reads as a torn
    /// fragment with no newline; it is reported as `None` too, since a
    /// torn line never parses).
    ///
    /// # Errors
    ///
    /// Propagates socket read failures.
    pub fn recv_line(&mut self) -> std::io::Result<Option<String>> {
        let mut line = String::new();
        let n = self.read.read_line(&mut line)?;
        if n == 0 || !line.ends_with('\n') {
            return Ok(None);
        }
        Ok(Some(line.trim_end().to_owned()))
    }

    /// Sends a request and reads its response. `Ok(None)` means the
    /// connection dropped before a complete response line arrived.
    ///
    /// # Errors
    ///
    /// Propagates socket failures.
    pub fn roundtrip(&mut self, req: &Request) -> std::io::Result<Option<Response>> {
        self.send_line(&req.to_line())?;
        Ok(self.recv_line()?.and_then(|line| Response::parse(&line)))
    }
}
