//! The chaos soak: hundreds of requests through a live daemon under every
//! service-layer fault kind `serr-inject` defines, asserting the service's
//! core invariant — **zero lost requests**. Every request reaches exactly
//! one typed terminal state (`result` | `degraded` | `shed` | `error`),
//! the server-side terminal ledger records no double-completion, and every
//! clean result is bit-identical to the batch CLI's own computation path.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use serr_core::experiments::ExperimentConfig;
use serr_core::prelude::{
    classify_estimate, FaultKind, FaultPlan, MonteCarloConfig, RawErrorRate, SamplerKind,
    Validator, VulnerabilityTrace, WorkloadSpec,
};
use serr_inject::ServeFault;
use serr_obs::Obs;

use crate::client::Client;
use crate::protocol::{Estimate, Request, RequestBody, Response, MAX_FRAME_BYTES};
use crate::server::{Bind, ServeConfig, Server};

/// A fresh scratch directory for one test; unix socket paths must stay
/// short, so these live directly under the system temp dir.
pub(crate) fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("serr-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The canonical spelling of a body, as the server keys its cache and
/// journals.
pub(crate) fn canonical_of(body: &RequestBody) -> String {
    Request { id: 0, deadline_ms: None, tag: None, body: body.clone() }.body_canonical()
}

/// Runs the exact estimation path `serr mttf` / `serr sofr` run — the
/// reference the service must match bit for bit.
pub(crate) fn direct_estimate(body: &RequestBody, threads: usize) -> Estimate {
    let cfg = ExperimentConfig::cli();
    let (workload, rate_per_year, trials, sampler) = match body {
        RequestBody::Mttf { workload, rate_per_year, trials, sampler }
        | RequestBody::Sofr { workload, rate_per_year, trials, sampler, .. } => {
            (workload, *rate_per_year, *trials, *sampler)
        }
        RequestBody::Sweep { .. } | RequestBody::Stats | RequestBody::Shutdown => {
            unreachable!("single-point estimation bodies only")
        }
    };
    let trace = workload.trace(&cfg).expect("trace builds");
    let rate = RawErrorRate::try_per_year(rate_per_year).expect("positive rate");
    let mc = MonteCarloConfig { trials, threads, sampler, deadline: None, ..Default::default() };
    let v = Validator::new(cfg.frequency, mc);
    let (avf, mttf_step_s, mc_est) = match body {
        RequestBody::Mttf { .. } => {
            let r = v.component(&*trace, rate).expect("component validation");
            (r.avf, r.mttf_avf.as_secs(), r.mttf_mc)
        }
        RequestBody::Sofr { components, .. } => {
            let r = v
                .system_identical(Arc::clone(&trace), rate, *components)
                .expect("system validation");
            (trace.avf(), r.mttf_sofr.as_secs(), r.mttf_mc)
        }
        RequestBody::Sweep { .. } | RequestBody::Stats | RequestBody::Shutdown => {
            unreachable!("gated above")
        }
    };
    Estimate {
        mttf_mc_s: mc_est.mttf.as_secs(),
        rel_ci95: mc_est.relative_ci95(),
        mttf_step_s,
        avf,
        provenance: classify_estimate(&mc_est).label().to_owned(),
        sampler: mc_est.sampler.label().to_owned(),
        trials_done: mc_est.ttf_seconds.count,
        truncated: mc_est.truncated,
        resumed: false,
    }
}

/// Fetches the service counters over the wire.
pub(crate) fn stats(client: &mut Client, id: u64) -> Vec<(String, u64)> {
    let req = Request { id, deadline_ms: None, tag: None, body: RequestBody::Stats };
    match client.roundtrip(&req).expect("stats io").expect("stats response") {
        Response::Stats { counters, .. } => counters,
        other => panic!("expected stats, got {other:?}"),
    }
}

pub(crate) fn counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters.iter().find(|(k, _)| k == name).map_or(0, |(_, v)| *v)
}

/// Polls the stats endpoint until `name` reaches `at_least`.
pub(crate) fn wait_for_counter(client: &mut Client, name: &str, at_least: u64) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if counter(&stats(client, 0), name) >= at_least {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {name} >= {at_least}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

pub(crate) fn shut_down(client: &mut Client, server: Server) {
    let req = Request { id: 999_999, deadline_ms: None, tag: None, body: RequestBody::Shutdown };
    let ack = client.roundtrip(&req).expect("shutdown io").expect("shutdown ack");
    assert!(matches!(ack, Response::ShutdownAck { .. }), "got {ack:?}");
    server.wait();
}

/// Every request in the soak carries a distinct body (the rate varies with
/// the index) so none short-circuits through the resume map — each one
/// exercises the full compile → estimate pipeline under injected faults.
fn body_for(i: u64) -> RequestBody {
    let workloads = ["duty:0.002:0.5", "duty:0.004:0.25", "duty:0.001:0.75", "duty:0.003:0.4"];
    let workload = WorkloadSpec::parse(workloads[(i % 4) as usize]).expect("valid spec");
    let rate_per_year = 1e6 * (1.0 + i as f64 / 100.0);
    if i % 3 == 0 {
        RequestBody::Sofr {
            workload,
            rate_per_year,
            components: 4,
            trials: 600,
            sampler: SamplerKind::default(),
        }
    } else {
        RequestBody::Mttf { workload, rate_per_year, trials: 600, sampler: SamplerKind::default() }
    }
}

/// Client-side frame corruption for the `serve-frame-corrupt` campaign:
/// either a line past the frame byte bound or garbage mid-frame. Both must
/// come back as a typed `error` on the same connection.
fn corrupt_frame(line: &str, oversized: bool) -> String {
    if oversized {
        format!("{line}{}", " ".repeat(MAX_FRAME_BYTES + 1))
    } else {
        let mut s = line.to_owned();
        s.replace_range(1..9, "#garbage");
        s
    }
}

/// Delivers one request under the campaign's fault plan and returns its
/// exactly-one typed response. A torn response (injected socket drop) is
/// followed by reconnect + re-request, which the server answers from the
/// results journal (`resumed: true`) rather than recomputing.
fn deliver(client: &mut Client, bind: &Bind, plan: &FaultPlan, req: &Request, i: u64) -> Response {
    if let Some(ServeFault::FrameCorrupt { oversized }) = plan.serve_fault(i) {
        let line = corrupt_frame(&req.to_line(), oversized);
        client.send_line(&line).expect("send corrupted frame");
        let line = client.recv_line().expect("recv").expect("typed error for corrupt frame");
        return Response::parse(&line).expect("error response parses");
    }
    match client.roundtrip(req).expect("request io") {
        Some(resp) => resp,
        None => {
            // The connection died mid-response. The terminal state is
            // already recorded server-side; re-request under a fresh tag.
            for _ in 0..5 {
                *client = Client::connect(bind).expect("reconnect");
                let retry =
                    Request { id: req.id, deadline_ms: None, tag: None, body: req.body.clone() };
                if let Some(resp) = client.roundtrip(&retry).expect("retry io") {
                    return resp;
                }
            }
            panic!("request {i}: response torn repeatedly with no resumable result");
        }
    }
}

/// One fault campaign: `n` requests against a live daemon injecting `kind`,
/// returning the final counters. Clean results accumulate into `results`
/// for the cross-campaign bit-parity check.
fn soak_one_kind(
    kind: FaultKind,
    n: u64,
    results: &mut Vec<(String, Estimate)>,
    bodies: &mut HashMap<String, RequestBody>,
) -> Vec<(String, u64)> {
    let dir = temp_dir(&format!("soak-{}", kind.label()));
    let plan = FaultPlan::new(77, kind);
    let (obs, _sink) = Obs::memory();
    let mut cfg = ServeConfig::new(Bind::Unix(dir.join("sock")));
    cfg.chaos = Some(plan);
    cfg.journal_dir = Some(dir.join("journal"));
    cfg.obs = obs;
    cfg.mc_threads = 1;
    let server = Server::start(cfg).expect("server starts");
    let bind = server.bind_addr().clone();
    let mut client = Client::connect(&bind).expect("connect");

    let mut states: HashMap<&'static str, u64> = HashMap::new();
    for i in 0..n {
        let body = body_for(i);
        let canon = canonical_of(&body);
        bodies.entry(canon.clone()).or_insert_with(|| body.clone());
        let req = Request { id: i, deadline_ms: None, tag: Some(i), body };
        let resp = deliver(&mut client, &bind, &plan, &req, i);
        let state = resp.state();
        assert!(
            matches!(state, "result" | "degraded" | "shed" | "error"),
            "request {i} under {kind:?}: non-terminal state {state}"
        );
        *states.entry(state).or_insert(0) += 1;
        if let Response::Estimate { est, .. } = resp {
            if est.state() == "result" {
                results.push((canon, est));
            }
        }
    }
    // Zero lost requests: every one of the n reached exactly one typed
    // terminal state client-side, and the server's ledger saw no request
    // reach two.
    assert_eq!(
        states.values().sum::<u64>(),
        n,
        "every request terminates exactly once under {kind:?}"
    );
    let counters = stats(&mut client, 1_000_000);
    assert_eq!(
        counter(&counters, "serve.double_terminal"),
        0,
        "double terminal under {kind:?}: {counters:?}"
    );
    match kind {
        FaultKind::ServeWorkerPanic => {
            let panics = counter(&counters, "serve.injected_panics");
            assert!(panics >= 1, "{counters:?}");
            // The worker answers its request *before* dying, so the final
            // restart may still be in flight when the client reads stats;
            // the supervisor must catch up to one restart per panic.
            wait_for_counter(&mut client, "serve.worker_restarts", panics);
            assert!(*states.get("error").unwrap_or(&0) >= 1, "{states:?}");
        }
        FaultKind::ServeWorkerStall => {
            assert!(counter(&counters, "serve.injected_stalls") >= 1, "{counters:?}");
            // A stall delays a request but never changes its answer.
            assert_eq!(*states.get("result").unwrap_or(&0), n, "{states:?}");
        }
        FaultKind::ServeFrameCorrupt => {
            assert!(*states.get("error").unwrap_or(&0) >= 1, "{states:?}");
            // Corrupt frames die at the reader; no worker ever sees one.
            assert_eq!(counter(&counters, "serve.worker_restarts"), 0, "{counters:?}");
        }
        FaultKind::ServeSocketDrop => {
            assert!(counter(&counters, "serve.injected_drops") >= 1, "{counters:?}");
            assert!(
                counter(&counters, "serve.resumed") >= 1,
                "torn responses are re-served from the journal: {counters:?}"
            );
        }
        _ => unreachable!("FaultKind::SERVE only"),
    }
    shut_down(&mut client, server);
    counters
}

#[test]
fn chaos_soak_zero_lost_requests_under_every_serve_fault_kind() {
    const PER_KIND: u64 = 50;
    let mut results: Vec<(String, Estimate)> = Vec::new();
    let mut bodies: HashMap<String, RequestBody> = HashMap::new();
    let mut total_requests = 0;
    for kind in FaultKind::SERVE {
        let counters = soak_one_kind(kind, PER_KIND, &mut results, &mut bodies);
        total_requests += counter(&counters, "serve.requests");
    }
    assert!(total_requests >= 200, "soak volume: {total_requests} requests");
    assert!(!results.is_empty(), "the soak must produce clean results to parity-check");

    // No Clean-tagged deviating result: every clean estimate the service
    // returned — across campaigns, including resumed ones — matches the
    // batch computation path bit for bit.
    let mut direct: HashMap<String, Estimate> = HashMap::new();
    for (canon, body) in &bodies {
        direct.insert(canon.clone(), direct_estimate(body, 0));
    }
    for (canon, est) in &results {
        let d = &direct[canon];
        assert_eq!(est.provenance, "clean", "{canon}");
        assert_eq!(est.mttf_mc_s.to_bits(), d.mttf_mc_s.to_bits(), "MC MTTF for {canon}");
        assert_eq!(est.rel_ci95.to_bits(), d.rel_ci95.to_bits(), "CI for {canon}");
        assert_eq!(est.mttf_step_s.to_bits(), d.mttf_step_s.to_bits(), "step MTTF for {canon}");
        assert_eq!(est.avf.to_bits(), d.avf.to_bits(), "AVF for {canon}");
        assert_eq!(est.trials_done, d.trials_done, "trials for {canon}");
    }
}

#[test]
fn service_estimates_are_bit_identical_across_thread_counts_and_transports() {
    let body = RequestBody::Mttf {
        workload: WorkloadSpec::parse("duty:0.002:0.5").expect("valid spec"),
        rate_per_year: 1e6,
        trials: 1_000,
        sampler: SamplerKind::default(),
    };
    let mut seen: Vec<Estimate> = Vec::new();
    for threads in [1usize, 8] {
        let dir = temp_dir(&format!("parity-{threads}"));
        // One campaign per transport: unix at 1 thread, TCP at 8.
        let bind = if threads == 1 {
            Bind::Unix(dir.join("sock"))
        } else {
            Bind::Tcp("127.0.0.1:0".to_owned())
        };
        let mut cfg = ServeConfig::new(bind);
        cfg.mc_threads = threads;
        let server = Server::start(cfg).expect("server starts");
        let addr = server.bind_addr().clone();
        let mut client = Client::connect(&addr).expect("connect");
        let req = Request { id: 1, deadline_ms: None, tag: Some(1), body: body.clone() };
        let resp = client.roundtrip(&req).expect("io").expect("response");
        match resp {
            Response::Estimate { id: 1, est } => {
                assert_eq!(est.state(), "result", "{est:?}");
                seen.push(est);
            }
            other => panic!("expected estimate, got {other:?}"),
        }
        shut_down(&mut client, server);
    }
    let direct = direct_estimate(&body, 0);
    for est in &seen {
        assert_eq!(est.mttf_mc_s.to_bits(), direct.mttf_mc_s.to_bits());
        assert_eq!(est.rel_ci95.to_bits(), direct.rel_ci95.to_bits());
        assert_eq!(est.mttf_step_s.to_bits(), direct.mttf_step_s.to_bits());
        assert_eq!(est.avf.to_bits(), direct.avf.to_bits());
        assert_eq!(est.trials_done, direct.trials_done);
    }
}
