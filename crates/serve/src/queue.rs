//! A bounded MPMC queue built on `Mutex` + `Condvar`.
//!
//! Bounded capacity is what turns the pipeline into a backpressure chain:
//! the admission controller uses [`Bounded::try_push`] so a full ingress
//! queue becomes a typed `shed` response instead of unbounded memory
//! growth, while the compile stage uses the blocking [`Bounded::push`] so
//! a slow estimate stage stalls the compile stage rather than piling up
//! compiled work.
//!
//! Closing the queue wakes every blocked producer and consumer; whatever
//! was still queued is recovered with [`Bounded::drain`] so graceful
//! shutdown can journal in-flight requests instead of dropping them.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why [`Bounded::try_push`] refused an item; the item comes back so the
/// caller can respond to it (shed, journal) instead of losing it.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue was at capacity.
    Full(T),
    /// The queue was closed.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded multi-producer multi-consumer queue.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

impl<T> std::fmt::Debug for Bounded<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Bounded").field("cap", &self.cap).field("len", &self.len()).finish()
    }
}

impl<T> Bounded<T> {
    /// A queue holding at most `cap` items (`cap` ≥ 1).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Bounded {
            inner: Mutex::new(Inner { items: VecDeque::new(), closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Items currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is currently empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking push: refuses instead of waiting. This is the
    /// admission-control entry point — `Full` means shed.
    ///
    /// # Errors
    ///
    /// [`PushError`] returning the item when the queue is full or closed.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut g = self.lock();
        if g.closed {
            return Err(PushError::Closed(item));
        }
        if g.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        g.items.push_back(item);
        drop(g);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push: waits for space, propagating backpressure upstream.
    ///
    /// # Errors
    ///
    /// Returns the item when the queue is (or becomes) closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return Err(item);
            }
            if g.items.len() < self.cap {
                g.items.push_back(item);
                drop(g);
                self.not_empty.notify_one();
                return Ok(());
            }
            g = self.not_full.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocking pop. Returns `None` once the queue is closed — even if
    /// items remain: post-close leftovers belong to [`Bounded::drain`],
    /// which journals them, not to workers that may already be stopping.
    pub fn pop(&self) -> Option<T> {
        let mut g = self.lock();
        loop {
            if g.closed {
                return None;
            }
            if let Some(item) = g.items.pop_front() {
                drop(g);
                self.not_full.notify_one();
                return Some(item);
            }
            g = self.not_empty.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Closes the queue and wakes every blocked producer and consumer.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Removes and returns everything still queued (normally called after
    /// [`Bounded::close`], to journal what the workers never picked up).
    #[must_use]
    pub fn drain(&self) -> Vec<T> {
        let drained: Vec<T> = self.lock().items.drain(..).collect();
        self.not_full.notify_all();
        drained
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_sheds_at_capacity_and_after_close() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(()));
        assert_eq!(q.try_push(2), Ok(()));
        assert_eq!(q.try_push(3), Err(PushError::Full(3)), "full queue sheds");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(()), "pop frees a slot");
        q.close();
        assert_eq!(q.try_push(5), Err(PushError::Closed(5)));
    }

    #[test]
    fn pop_returns_none_after_close_and_drain_recovers_leftovers() {
        let q = Bounded::new(8);
        q.try_push("a").expect("space");
        q.try_push("b").expect("space");
        q.close();
        // Closed ⇒ consumers stop, even though items remain...
        assert_eq!(q.pop(), None);
        // ...and the drain path recovers them for the journal.
        assert_eq!(q.drain(), vec!["a", "b"]);
        assert_eq!(q.drain(), Vec::<&str>::new());
    }

    #[test]
    fn blocking_push_waits_for_space_then_delivers() {
        let q = Arc::new(Bounded::new(1));
        q.try_push(0u32).expect("space");
        let producer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.push(1).is_ok())
        };
        // The producer is blocked on the full queue until this pop.
        assert_eq!(q.pop(), Some(0));
        assert!(producer.join().expect("no panic"), "push succeeds once space frees");
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn close_unblocks_a_waiting_consumer() {
        let q: Arc<Bounded<u32>> = Arc::new(Bounded::new(4));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(10));
        q.close();
        assert_eq!(consumer.join().expect("no panic"), None);
    }

    #[test]
    fn queue_is_mpmc_and_loses_nothing() {
        let q: Arc<Bounded<u64>> = Arc::new(Bounded::new(4));
        let total: u64 = 200;
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(x) = q.pop() {
                        got.push(x);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..2)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..total / 2 {
                        q.push(p * (total / 2) + i).expect("open");
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().expect("no panic");
        }
        // Producers are done; let consumers finish the backlog then stop.
        while !q.is_empty() {
            std::thread::yield_now();
        }
        q.close();
        let mut all: Vec<u64> =
            consumers.into_iter().flat_map(|c| c.join().expect("no panic")).collect();
        all.sort_unstable();
        assert_eq!(all, (0..total).collect::<Vec<_>>(), "every item delivered exactly once");
    }
}
