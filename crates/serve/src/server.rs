//! The `serr serve` daemon: a supervised estimation pipeline behind a
//! JSONL socket.
//!
//! ```text
//!                 ┌───────────────────────────────────────────────┐
//!   client ──────▶│ reader thread: parse + admission control      │
//!                 │   shed on: full queue, predicted deadline     │
//!                 │   miss, shutdown in progress                  │
//!                 └──────────────┬────────────────────────────────┘
//!                    ingress queue (bounded → backpressure)
//!                 ┌──────────────▼────────────────────────────────┐
//!                 │ compile pool: trace cache (LRU, verify-on-hit)│
//!                 └──────────────┬────────────────────────────────┘
//!                    estimate queue (bounded)
//!                 ┌──────────────▼────────────────────────────────┐
//!                 │ estimate pool: Validator — the CLI's own path │
//!                 │   deadline → truncated, honestly-widened CI   │
//!                 └──────────────┬────────────────────────────────┘
//!                 per-connection writer thread ──▶ client
//! ```
//!
//! Both pools are supervised ([`crate::supervisor`]): a worker panic kills
//! one request's worker, never the service, and the slot restarts under
//! bounded exponential backoff. Every admitted request reaches exactly one
//! typed terminal state (`result` | `degraded` | `shed` | `error`); the
//! terminal ledger counts any double-completion into
//! `serve.double_terminal`, which the chaos soak pins at zero.
//!
//! Estimates are **bit-identical to the batch CLI** because the service
//! shares its entire computation path: [`ExperimentConfig::cli`],
//! [`WorkloadSpec::trace`](serr_core::workspec::WorkloadSpec), and
//! [`Validator`] with the same [`MonteCarloConfig`] defaults.
//!
//! Graceful shutdown drains both queues into the `serve-pending`
//! checkpoint journal; a fresh server replays journaled work at startup,
//! and completed clean results live in the `serve-results` journal, so a
//! re-request after restart is answered from the journal (`resumed: true`)
//! bit-identically instead of recomputed.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serr_core::checkpoint::{fingerprint, Journal};
use serr_core::experiments::ExperimentConfig;
use serr_core::jsonio::Json;
use serr_core::prelude::{
    classify_estimate, BackoffPolicy, FaultPlan, MonteCarloConfig, RawErrorRate, SamplerKind,
    Validator, VulnerabilityTrace, WorkloadSpec,
};
use serr_inject::ServeFault;
use serr_obs::{Event, Obs};

use crate::cache::{CacheOutcome, CachedTrace, TraceCache};
use crate::protocol::{Estimate, FrameError, Request, RequestBody, Response, MAX_FRAME_BYTES};
use crate::queue::{Bounded, PushError};
use crate::supervisor::{Pool, WorkerExit};

/// Where the daemon listens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bind {
    /// A unix-domain socket at this path.
    Unix(PathBuf),
    /// A TCP address, e.g. `127.0.0.1:7979` (`:0` picks a free port).
    Tcp(String),
}

impl Bind {
    /// Parses `unix:PATH` or `tcp:ADDR`.
    ///
    /// # Errors
    ///
    /// [`serr_types::SerrError::InvalidConfig`] for any other shape.
    pub fn parse(s: &str) -> Result<Bind, serr_types::SerrError> {
        if let Some(path) = s.strip_prefix("unix:") {
            return Ok(Bind::Unix(PathBuf::from(path)));
        }
        if let Some(addr) = s.strip_prefix("tcp:") {
            return Ok(Bind::Tcp(addr.to_owned()));
        }
        Err(serr_types::SerrError::invalid_config(format!(
            "bind address must be unix:PATH or tcp:ADDR, got `{s}`"
        )))
    }
}

impl std::fmt::Display for Bind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bind::Unix(p) => write!(f, "unix:{}", p.display()),
            Bind::Tcp(a) => write!(f, "tcp:{a}"),
        }
    }
}

/// One live client connection, unix or TCP.
#[derive(Debug)]
pub(crate) enum Stream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    pub(crate) fn try_clone(&self) -> std::io::Result<Stream> {
        Ok(match self {
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
        })
    }

    fn shutdown(&self) {
        let _ = match self {
            Stream::Unix(s) => s.shutdown(std::net::Shutdown::Both),
            Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
        };
    }

    pub(crate) fn connect(bind: &Bind) -> std::io::Result<Stream> {
        Ok(match bind {
            Bind::Unix(p) => Stream::Unix(UnixStream::connect(p)?),
            Bind::Tcp(a) => Stream::Tcp(TcpStream::connect(a)?),
        })
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.read(buf),
            Stream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Unix(s) => s.write(buf),
            Stream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Unix(s) => s.flush(),
            Stream::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener, PathBuf),
    Tcp(TcpListener),
}

impl Listener {
    fn bind(bind: &Bind) -> std::io::Result<Listener> {
        match bind {
            Bind::Unix(p) => {
                // A stale socket file from a dead server blocks rebinding.
                let _ = std::fs::remove_file(p);
                Ok(Listener::Unix(UnixListener::bind(p)?, p.clone()))
            }
            Bind::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a)?)),
        }
    }

    fn set_nonblocking(&self) -> std::io::Result<()> {
        match self {
            Listener::Unix(l, _) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> std::io::Result<Stream> {
        match self {
            Listener::Unix(l, _) => l.accept().map(|(s, _)| Stream::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
        }
    }

    fn resolved_bind(&self) -> std::io::Result<Bind> {
        match self {
            Listener::Unix(_, p) => Ok(Bind::Unix(p.clone())),
            Listener::Tcp(l) => Ok(Bind::Tcp(l.local_addr()?.to_string())),
        }
    }
}

/// Daemon configuration. [`ServeConfig::new`] picks the defaults the CLI
/// uses; every knob is public for tests and tuning.
#[derive(Debug)]
pub struct ServeConfig {
    /// Where to listen.
    pub bind: Bind,
    /// Compile-stage worker slots.
    pub compile_workers: usize,
    /// Estimate-stage worker slots. Zero is allowed (all estimate work
    /// queues until shutdown drains it — used by the drain/resume tests).
    pub estimate_workers: usize,
    /// Capacity of each bounded queue; the admission controller sheds
    /// beyond this depth.
    pub queue_depth: usize,
    /// Trace-cache capacity (distinct canonical workloads).
    pub cache_capacity: usize,
    /// Checkpoint directory for the `serve-results`/`serve-pending`
    /// journals; `None` disables persistence (no resume after restart).
    pub journal_dir: Option<PathBuf>,
    /// Deterministic service-layer fault injection (chaos soak only).
    pub chaos: Option<FaultPlan>,
    /// The experiment configuration — MUST be [`ExperimentConfig::cli`]
    /// for bit-parity with the batch CLI.
    pub experiment: ExperimentConfig,
    /// Monte Carlo worker threads per estimate (0 = all cores). Estimates
    /// are bit-identical at any setting.
    pub mc_threads: usize,
    /// Telemetry sink; counters back the `stats` request.
    pub obs: Obs,
}

impl ServeConfig {
    /// CLI defaults: 2+2 workers, depth-64 queues, 8-entry cache,
    /// `SERR_THREADS` honored exactly like the batch commands.
    #[must_use]
    pub fn new(bind: Bind) -> ServeConfig {
        let mc_threads = std::env::var("SERR_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        ServeConfig {
            bind,
            compile_workers: 2,
            estimate_workers: 2,
            queue_depth: 64,
            cache_capacity: 8,
            journal_dir: None,
            chaos: None,
            experiment: ExperimentConfig::cli(),
            mc_threads,
            obs: Obs::disabled(),
        }
    }
}

/// One line bound for a connection's writer thread.
struct WireOut {
    line: String,
    /// Injected [`ServeFault::SocketDrop`]: write half the bytes, then
    /// sever the connection.
    torn: bool,
}

/// An admitted estimation request traveling the pipeline.
struct Job {
    tag: u64,
    id: u64,
    body: RequestBody,
    /// Absolute deadline and the original budget in ms.
    deadline: Option<(Instant, u64)>,
    canonical: String,
    /// Reply channel; `None` for internal (journal-replayed) jobs.
    reply: Option<mpsc::Sender<WireOut>>,
    /// Journal-replayed work: exempt from chaos and from deadlines.
    internal: bool,
}

struct EstimateJob {
    job: Job,
    cached: CachedTrace,
}

struct Journals {
    results: Journal,
    pending: Journal,
    next_result: usize,
    next_pending: usize,
}

struct State {
    experiment: ExperimentConfig,
    mc_threads: usize,
    chaos: Option<FaultPlan>,
    obs: Obs,
    queue_depth: usize,
    ingress: Bounded<Job>,
    estimate_q: Bounded<EstimateJob>,
    cache: TraceCache,
    /// Completed clean results by canonical body — the resume source.
    results: Mutex<HashMap<String, Estimate>>,
    journals: Mutex<Option<Journals>>,
    shutting_down: AtomicBool,
    stop_accept: AtomicBool,
    drain_once: AtomicBool,
    /// tag → terminal state; a second terminal for one tag is the bug the
    /// chaos soak exists to catch.
    ledger: Mutex<HashMap<u64, &'static str>>,
    /// EWMA of estimate wall time in ms, feeding deadline-miss prediction.
    ewma_ms: Mutex<f64>,
    seq: AtomicU64,
    event_seq: AtomicU64,
    pools: Mutex<Option<(Pool, Pool)>>,
    done: (Mutex<bool>, Condvar),
}

impl State {
    fn next_event_seq(&self) -> u64 {
        self.event_seq.fetch_add(1, Ordering::SeqCst)
    }

    fn record_terminal(&self, tag: u64, state: &'static str) {
        let prior = {
            let mut ledger = self.ledger.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            ledger.insert(tag, state)
        };
        if prior.is_some() {
            self.obs.metrics().add("serve.double_terminal", 1);
        }
        self.obs.metrics().add(
            match state {
                "result" => "serve.results",
                "degraded" => "serve.degraded",
                "shed" => "serve.shed",
                _ => "serve.errors",
            },
            1,
        );
    }

    /// Records the terminal state and ships the response line (when the
    /// requester is still connected — internal jobs and gone clients have
    /// no channel, but the terminal state is recorded regardless).
    fn respond(
        &self,
        reply: Option<&mpsc::Sender<WireOut>>,
        tag: u64,
        resp: &Response,
        torn: bool,
    ) {
        self.record_terminal(tag, resp.state());
        if let Some(tx) = reply {
            let _ = tx.send(WireOut { line: resp.to_line(), torn });
        }
    }

    fn shed(&self, reply: Option<&mpsc::Sender<WireOut>>, tag: u64, id: u64, reason: &str) {
        self.respond(reply, tag, &Response::Shed { id, reason: reason.to_owned() }, false);
    }

    fn fresh_tag(&self) -> u64 {
        // Internal tags live far above any plausible client tag space so
        // they never collide with soak-chosen tags in the ledger.
        1u64 << 63 | self.seq.fetch_add(1, Ordering::SeqCst)
    }

    /// Journals an undone request body so a restarted server replays it.
    fn journal_pending(&self, canonical: &str) {
        let mut g = self.journals.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(j) = g.as_mut() {
            let row = Json::Obj(vec![("body".to_owned(), Json::Str(canonical.to_owned()))]);
            if j.pending.record(j.next_pending, &row).is_ok() {
                j.next_pending += 1;
            }
        }
    }

    /// Journals a completed clean result and publishes it to the resume map.
    fn publish_result(&self, canonical: &str, est: &Estimate) {
        {
            let mut g = self.journals.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(j) = g.as_mut() {
                let mut fields = vec![("body".to_owned(), Json::Str(canonical.to_owned()))];
                fields.extend(est.to_fields());
                if j.results.record(j.next_result, &Json::Obj(fields)).is_ok() {
                    j.next_result += 1;
                }
            }
        }
        self.results
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(canonical.to_owned(), est.clone());
        self.obs.metrics().add("serve.results_published", 1);
    }

    fn update_ewma(&self, elapsed_ms: f64) {
        let mut ewma = self.ewma_ms.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *ewma = if *ewma == 0.0 { elapsed_ms } else { 0.8 * *ewma + 0.2 * elapsed_ms };
        self.obs.metrics().set_gauge("serve.ewma_estimate_ms", *ewma);
    }

    /// The admission controller's deadline check: with `depth` requests
    /// ahead of this one and the current EWMA service time, would the
    /// budget already be blown before work starts?
    fn predicts_deadline_miss(&self, deadline_ms: u64) -> Option<f64> {
        let ewma = *self.ewma_ms.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let depth = (self.ingress.len() + self.estimate_q.len() + 1) as f64;
        let predicted = depth * ewma;
        (predicted > deadline_ms as f64).then_some(predicted)
    }
}

fn spec_of(body: &RequestBody) -> Option<&WorkloadSpec> {
    match body {
        RequestBody::Mttf { workload, .. }
        | RequestBody::Sofr { workload, .. }
        | RequestBody::Sweep { workload, .. } => Some(workload),
        RequestBody::Stats | RequestBody::Shutdown => None,
    }
}

/// The canonical body of the single-point `mttf` request a sweep point is
/// equivalent to — the key its clean result is published and resumed
/// under, which is sound because the shared-stream kernel makes the point
/// bit-identical to that independent request.
fn point_canonical(
    workload: &WorkloadSpec,
    rate_per_year: f64,
    trials: u64,
    sampler: SamplerKind,
) -> String {
    RequestBody::Mttf { workload: workload.clone(), rate_per_year, trials, sampler }.canonical()
}

/// A running `serr serve` daemon.
pub struct Server {
    state: Arc<State>,
    bind: Bind,
    accept: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("bind", &self.bind).finish_non_exhaustive()
    }
}

impl Server {
    /// Binds, loads the journals, spawns the supervised pools and the
    /// accept loop, and replays any journaled pending work.
    ///
    /// # Errors
    ///
    /// Bind or journal failures (the journal uses
    /// [`Journal::open_with_retry`] under [`BackoffPolicy::journal`], so a
    /// transiently locked journal is retried before giving up).
    pub fn start(cfg: ServeConfig) -> Result<Server, serr_types::SerrError> {
        let listener = Listener::bind(&cfg.bind)
            .map_err(|e| serr_types::SerrError::io(format!("bind {}", cfg.bind), e.to_string()))?;
        let bind = listener
            .resolved_bind()
            .map_err(|e| serr_types::SerrError::io("resolve bind", e.to_string()))?;

        let state = Arc::new(State {
            experiment: cfg.experiment,
            mc_threads: cfg.mc_threads,
            chaos: cfg.chaos,
            obs: cfg.obs,
            queue_depth: cfg.queue_depth,
            ingress: Bounded::new(cfg.queue_depth),
            estimate_q: Bounded::new(cfg.queue_depth),
            cache: TraceCache::new(cfg.cache_capacity),
            results: Mutex::new(HashMap::new()),
            journals: Mutex::new(None),
            shutting_down: AtomicBool::new(false),
            stop_accept: AtomicBool::new(false),
            drain_once: AtomicBool::new(false),
            ledger: Mutex::new(HashMap::new()),
            ewma_ms: Mutex::new(0.0),
            seq: AtomicU64::new(0),
            event_seq: AtomicU64::new(0),
            pools: Mutex::new(None),
            done: (Mutex::new(false), Condvar::new()),
        });

        let replay = Self::open_journals(&state, cfg.journal_dir.as_deref())?;
        Self::spawn_pools(&state, cfg.compile_workers, cfg.estimate_workers);

        // Replay journaled pending work as internal jobs — chaos-exempt,
        // no deadline, no reply channel; their clean results land in the
        // results journal, so re-requests are answered bit-identically.
        for canonical in replay {
            if let Some(body) = body_from_canonical(&canonical) {
                let job = Job {
                    tag: state.fresh_tag(),
                    id: 0,
                    body,
                    deadline: None,
                    canonical,
                    reply: None,
                    internal: true,
                };
                state.obs.metrics().add("serve.replayed_pending", 1);
                if state.ingress.push(job).is_err() {
                    break; // shutting down already
                }
            }
        }

        let accept = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("serr-serve/accept".to_owned())
                .spawn(move || accept_loop(&state, &listener))
                .expect("accept thread spawn")
        };
        Ok(Server { state, bind, accept: Some(accept) })
    }

    fn open_journals(
        state: &Arc<State>,
        dir: Option<&std::path::Path>,
    ) -> Result<Vec<String>, serr_types::SerrError> {
        let Some(dir) = dir else { return Ok(Vec::new()) };
        // Fingerprint over the canonicalized experiment config (threads
        // pinned to 0) so hosts with different core counts share journals —
        // estimates are thread-count invariant by construction.
        let mut canon = state.experiment;
        canon.mc.threads = 0;
        let fp = fingerprint(&["serve", &format!("{canon:?}")]);
        let policy = BackoffPolicy::journal(canon.seed);

        // A journal with a damaged store header or a foreign format version
        // cannot be trusted byte-for-byte — reset it and degrade (prior
        // results recompute on demand; pending work is simply gone) instead
        // of refusing to start. Lock contention and I/O errors stay fatal:
        // they are environmental, not a statement about the bytes.
        let open =
            |kind: &str, fresh: bool| match Journal::open_with_retry(dir, kind, fp, fresh, &policy)
            {
                Err(e) if e.is_deterministic_corruption() => {
                    state.obs.emit(
                        Event::warn("serve.journal_reset", 0)
                            .with("journal", kind)
                            .with("reason", e.to_string())
                            .with("action", "journal reset; prior entries recompute on demand"),
                    );
                    state.obs.metrics().add("serve.journal_resets", 1);
                    Journal::open_with_retry(dir, kind, fp, true, &policy)
                }
                other => other,
            };

        let results = open("serve-results", false)?;
        let next_result = results.completed().keys().next_back().map_or(0, |k| k + 1);
        {
            let mut map = state.results.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            for row in results.completed().values() {
                if let (Some(body), Some(est)) =
                    (row.get("body").and_then(Json::as_str), Estimate::from_fields(row))
                {
                    map.insert(body.to_owned(), est);
                }
            }
            state.obs.metrics().add("serve.journal_results_loaded", map.len() as u64);
        }

        // Pending rows from the previous run are replayed now, so the
        // journal restarts empty (fresh) for this run's own drain.
        let replay: Vec<String> = {
            let pending = open("serve-pending", false)?;
            pending
                .completed()
                .values()
                .filter_map(|row| row.get("body").and_then(Json::as_str).map(str::to_owned))
                .collect()
        };
        let pending = Journal::open_with_retry(dir, "serve-pending", fp, true, &policy)?;
        *state.journals.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(Journals { results, pending, next_result, next_pending: 0 });
        Ok(replay)
    }

    fn spawn_pools(state: &Arc<State>, compile_workers: usize, estimate_workers: usize) {
        let restart_policy = BackoffPolicy {
            max_attempts: u32::MAX,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            jitter_seed: state.experiment.seed,
        };
        let on_restart = |state: Arc<State>, pool: &'static str| {
            Arc::new(move |slot: usize| {
                state.obs.metrics().add("serve.worker_restarts", 1);
                state.obs.emit(
                    Event::warn("serve.worker_restart", state.next_event_seq())
                        .with("pool", pool)
                        .with("slot", slot as u64),
                );
            })
        };
        let compile = Pool::spawn(
            "compile",
            compile_workers,
            restart_policy,
            {
                let state = Arc::clone(state);
                Arc::new(move |_slot| compile_work(&state))
            },
            on_restart(Arc::clone(state), "compile"),
        );
        let estimate = Pool::spawn(
            "estimate",
            estimate_workers,
            restart_policy,
            {
                let state = Arc::clone(state);
                Arc::new(move |_slot| estimate_work(&state))
            },
            on_restart(Arc::clone(state), "estimate"),
        );
        *state.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some((compile, estimate));
    }

    /// The address actually bound — for `tcp:HOST:0`, the resolved port.
    #[must_use]
    pub fn bind_addr(&self) -> &Bind {
        &self.bind
    }

    /// Triggers the graceful shutdown sequence from the host process (the
    /// wire `shutdown` request does the same).
    pub fn shutdown(&self) {
        trigger_shutdown(&self.state);
    }

    /// Blocks until the daemon has fully shut down (drained, journaled,
    /// stopped accepting).
    pub fn wait(mut self) {
        let (lock, cvar) = &self.state.done;
        let mut done = lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while !*done {
            done = cvar.wait(done).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(done);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Starts the drain sequence exactly once, on its own thread so the
/// triggering reader thread can keep servicing its connection.
fn trigger_shutdown(state: &Arc<State>) {
    if state.drain_once.swap(true, Ordering::SeqCst) {
        return;
    }
    state.shutting_down.store(true, Ordering::SeqCst);
    let state = Arc::clone(state);
    std::thread::Builder::new()
        .name("serr-serve/shutdown".to_owned())
        .spawn(move || drain_and_stop(&state))
        .expect("shutdown thread spawn");
}

/// The graceful shutdown sequence: stage by stage, upstream first, so no
/// in-flight request is lost — everything not completed is journaled and
/// answered with a typed `shed`.
fn drain_and_stop(state: &Arc<State>) {
    let pools = state.pools.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();
    let (compile_pool, estimate_pool) = match pools {
        Some(p) => p,
        None => return,
    };

    // 1. Close both queues before joining either pool: a compile worker
    //    blocked on a full estimate queue only unblocks when that queue
    //    closes, so closing first is what makes the joins deadlock-free.
    //    Workers finish the job they hold, then retire (pop → None).
    compile_pool.begin_shutdown();
    estimate_pool.begin_shutdown();
    state.ingress.close();
    for job in state.ingress.drain() {
        state.journal_pending(&job.canonical);
        state.shed(job.reply.as_ref(), job.tag, job.id, "draining; journaled for restart resume");
    }
    state.estimate_q.close();
    for ej in state.estimate_q.drain() {
        state.journal_pending(&ej.job.canonical);
        state.shed(
            ej.job.reply.as_ref(),
            ej.job.tag,
            ej.job.id,
            "draining; journaled for restart resume",
        );
    }
    compile_pool.join();
    estimate_pool.join();

    // 3. Release the journal locks so a successor can open them.
    state.journals.lock().unwrap_or_else(std::sync::PoisonError::into_inner).take();

    // 4. Stop accepting and wake `Server::wait`.
    state.stop_accept.store(true, Ordering::SeqCst);
    let (lock, cvar) = &state.done;
    *lock.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = true;
    cvar.notify_all();
}

fn accept_loop(state: &Arc<State>, listener: &Listener) {
    if listener.set_nonblocking().is_err() {
        // Cannot poll the stop flag without non-blocking accept; shut down
        // rather than hang forever.
        trigger_shutdown(state);
        return;
    }
    while !state.stop_accept.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok(stream) => {
                let _ = match &stream {
                    Stream::Unix(s) => s.set_nonblocking(false),
                    Stream::Tcp(s) => s.set_nonblocking(false),
                };
                spawn_connection(state, stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    if let Listener::Unix(_, path) = listener {
        let _ = std::fs::remove_file(path);
    }
}

/// One reader + one writer thread per connection. The reader exits on
/// client disconnect (so it is deliberately not joined at shutdown: a
/// connected-but-idle client would otherwise block the drain); the writer
/// exits when every reply sender for this connection is gone.
fn spawn_connection(state: &Arc<State>, stream: Stream) {
    let write_half = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    let (tx, rx) = mpsc::channel::<WireOut>();
    std::thread::Builder::new()
        .name("serr-serve/writer".to_owned())
        .spawn(move || writer_loop(write_half, &rx))
        .expect("writer thread spawn");
    let state = Arc::clone(state);
    std::thread::Builder::new()
        .name("serr-serve/reader".to_owned())
        .spawn(move || reader_loop(&state, stream, &tx))
        .expect("reader thread spawn");
}

fn writer_loop(mut stream: Stream, rx: &mpsc::Receiver<WireOut>) {
    while let Ok(out) = rx.recv() {
        if out.torn {
            // Injected SocketDrop: half the payload, then sever. The
            // request's terminal state is already recorded server-side;
            // the client sees a torn line + EOF and may simply re-request
            // (answered `resumed: true`, bit-identically, from the
            // results journal).
            let bytes = out.line.as_bytes();
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            let _ = stream.flush();
            stream.shutdown();
            return;
        }
        if stream.write_all(out.line.as_bytes()).is_err()
            || stream.write_all(b"\n").is_err()
            || stream.flush().is_err()
        {
            return;
        }
    }
}

/// Reads frames with a hard per-line byte bound: a frame exceeding
/// [`MAX_FRAME_BYTES`] is answered with a typed error and the rest of the
/// line discarded, so an oversized (or endless) frame cannot exhaust
/// memory.
fn reader_loop(state: &Arc<State>, stream: Stream, tx: &mpsc::Sender<WireOut>) {
    let mut reader = BufReader::new(stream);
    let limit = (MAX_FRAME_BYTES + 2) as u64;
    let mut buf: Vec<u8> = Vec::new();
    loop {
        buf.clear();
        let n = match reader.by_ref().take(limit).read_until(b'\n', &mut buf) {
            Ok(n) => n,
            Err(_) => return,
        };
        if n == 0 {
            return; // client disconnected
        }
        if !buf.ends_with(b"\n") && n as u64 == limit {
            // The line kept going past the frame bound: reject and skip
            // to the next newline without buffering the excess.
            let tag = state.fresh_tag();
            state.obs.metrics().add("serve.requests", 1);
            state.respond(
                Some(tx),
                tag,
                &Response::Error {
                    id: None,
                    error: format!("oversized frame: more than {MAX_FRAME_BYTES} bytes"),
                    budget_s: None,
                    elapsed_s: None,
                },
                false,
            );
            if !skip_to_newline(&mut reader) {
                return;
            }
            continue;
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        state.obs.metrics().add("serve.requests", 1);
        handle_line(state, line, tx);
    }
}

fn skip_to_newline(reader: &mut BufReader<Stream>) -> bool {
    let mut byte = [0u8; 1];
    loop {
        match reader.read(&mut byte) {
            Ok(0) | Err(_) => return false,
            Ok(_) if byte[0] == b'\n' => return true,
            Ok(_) => {}
        }
    }
}

/// Parse, admit, and route one frame. Every path out of this function
/// records exactly one terminal state for the request.
fn handle_line(state: &Arc<State>, line: &str, tx: &mpsc::Sender<WireOut>) {
    let req = match Request::parse(line) {
        Ok(req) => req,
        Err(FrameError { id, reason }) => {
            let tag = state.fresh_tag();
            state.respond(
                Some(tx),
                tag,
                &Response::Error { id, error: reason, budget_s: None, elapsed_s: None },
                false,
            );
            return;
        }
    };
    let tag = req.tag.unwrap_or_else(|| state.fresh_tag());
    match &req.body {
        RequestBody::Stats => {
            let counters: Vec<(String, u64)> =
                state.obs.metrics().snapshot().counters.into_iter().collect();
            state.respond(Some(tx), tag, &Response::Stats { id: req.id, counters }, false);
        }
        RequestBody::Shutdown => {
            state.respond(Some(tx), tag, &Response::ShutdownAck { id: req.id }, false);
            trigger_shutdown(state);
        }
        RequestBody::Mttf { .. } | RequestBody::Sofr { .. } | RequestBody::Sweep { .. } => {
            admit(state, req, tag, tx);
        }
    }
}

/// Admission control for estimation requests: answer from the resume map,
/// or shed (shutdown in progress, predicted deadline miss, full queue), or
/// enqueue.
fn admit(state: &Arc<State>, req: Request, tag: u64, tx: &mpsc::Sender<WireOut>) {
    if state.shutting_down.load(Ordering::SeqCst) {
        state.shed(Some(tx), tag, req.id, "shutting down");
        return;
    }
    let canonical = req.body_canonical();
    // A sweep resumes when EVERY point's equivalent single-point result is
    // already journaled — sound because the shared-stream kernel makes
    // each point bit-identical to the independent `mttf` request.
    if let RequestBody::Sweep { workload, rates_per_year, trials, sampler } = &req.body {
        let map = state.results.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let points: Option<Vec<Estimate>> = rates_per_year
            .iter()
            .map(|&r| {
                map.get(&point_canonical(workload, r, *trials, *sampler)).cloned().map(|mut est| {
                    est.resumed = true;
                    est
                })
            })
            .collect();
        drop(map);
        if let Some(points) = points {
            state.obs.metrics().add("serve.resumed", 1);
            state.respond(Some(tx), tag, &Response::Sweep { id: req.id, points }, false);
            return;
        }
    }
    let hit = state
        .results
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .get(&canonical)
        .cloned();
    if let Some(mut est) = hit {
        est.resumed = true;
        state.obs.metrics().add("serve.resumed", 1);
        state.respond(Some(tx), tag, &Response::Estimate { id: req.id, est }, false);
        return;
    }
    if let Some(ms) = req.deadline_ms {
        if let Some(predicted) = state.predicts_deadline_miss(ms) {
            state.shed(
                Some(tx),
                tag,
                req.id,
                &format!("predicted deadline miss: ~{predicted:.0} ms queued vs {ms} ms budget"),
            );
            return;
        }
    }
    let job = Job {
        tag,
        id: req.id,
        deadline: req.deadline_ms.map(|ms| (Instant::now() + Duration::from_millis(ms), ms)),
        body: req.body,
        canonical,
        reply: Some(tx.clone()),
        internal: false,
    };
    match state.ingress.try_push(job) {
        Ok(()) => {}
        Err(PushError::Full(job)) => {
            state.shed(
                job.reply.as_ref(),
                job.tag,
                job.id,
                &format!("queue full (depth {})", state.queue_depth),
            );
        }
        Err(PushError::Closed(job)) => {
            state.shed(job.reply.as_ref(), job.tag, job.id, "shutting down");
        }
    }
}

/// Compile-stage worker body: build (or fetch) the trace, hand off to the
/// estimate stage with blocking backpressure.
fn compile_work(state: &Arc<State>) -> WorkerExit {
    while let Some(job) = state.ingress.pop() {
        let spec = spec_of(&job.body).expect("only estimation bodies are enqueued").clone();
        let experiment = state.experiment;
        let built = state.cache.get_or_build(&job.canonical, || spec.trace(&experiment));
        let (cached, outcome, evicted) = match built {
            Ok(ok) => ok,
            Err(e) => {
                state.respond(
                    job.reply.as_ref(),
                    job.tag,
                    &Response::Error {
                        id: Some(job.id),
                        error: e.to_string(),
                        budget_s: None,
                        elapsed_s: None,
                    },
                    false,
                );
                continue;
            }
        };
        state.obs.metrics().add(
            match outcome {
                CacheOutcome::Hit => "serve.cache_hits",
                CacheOutcome::HitRebuilt => "serve.cache_rebuilds",
                CacheOutcome::Miss => "serve.cache_misses",
            },
            1,
        );
        if evicted {
            state.obs.metrics().add("serve.cache_evictions", 1);
        }
        if let Err(ej) = state.estimate_q.push(EstimateJob { job, cached }) {
            // The estimate queue closed mid-handoff: the drain already ran
            // past us, so journal and shed here — the request is not lost.
            state.journal_pending(&ej.job.canonical);
            state.shed(
                ej.job.reply.as_ref(),
                ej.job.tag,
                ej.job.id,
                "draining; journaled for restart resume",
            );
        }
    }
    WorkerExit::Shutdown
}

/// Estimate-stage worker body. Injected faults hit here: a stall delays
/// the request, a panic kills this worker *after* the request's terminal
/// state is recorded (the supervisor restarts the slot), and a socket drop
/// tears the response mid-line after recording the terminal state.
fn estimate_work(state: &Arc<State>) -> WorkerExit {
    while let Some(ej) = state.estimate_q.pop() {
        process_estimate(state, &ej);
    }
    WorkerExit::Shutdown
}

fn process_estimate(state: &Arc<State>, ej: &EstimateJob) {
    let job = &ej.job;
    let started = Instant::now();
    let fault =
        if job.internal { None } else { state.chaos.as_ref().and_then(|p| p.serve_fault(job.tag)) };
    let mut torn = false;
    match fault {
        Some(ServeFault::WorkerStall { stall_ms }) => {
            state.obs.metrics().add("serve.injected_stalls", 1);
            std::thread::sleep(Duration::from_millis(stall_ms));
        }
        Some(ServeFault::SocketDrop) => {
            state.obs.metrics().add("serve.injected_drops", 1);
            torn = true;
        }
        Some(ServeFault::WorkerPanic) => {
            // The request reaches its typed terminal state FIRST; then the
            // worker dies and the supervisor restarts the slot. Zero lost
            // requests, real restart coverage.
            state.obs.metrics().add("serve.injected_panics", 1);
            state.respond(
                job.reply.as_ref(),
                job.tag,
                &Response::Error {
                    id: Some(job.id),
                    error: "injected worker panic; the supervisor restarts this worker".to_owned(),
                    budget_s: None,
                    elapsed_s: None,
                },
                false,
            );
            panic!("chaos: injected estimate-worker panic");
        }
        // FrameCorrupt is a client-side fault: it never reaches a worker.
        Some(ServeFault::FrameCorrupt { .. }) | None => {}
    }

    // Map the request deadline onto the engine's budget: what is left of
    // the wall-clock budget after queueing. An already-blown budget makes
    // the engine return the typed DeadlineExhausted error (with elapsed
    // context); a tight one yields a truncated — honestly widened —
    // estimate tagged Degraded by the provenance lattice.
    let remaining = job.deadline.map(|(at, _)| at.saturating_duration_since(Instant::now()));
    if let RequestBody::Sweep { workload, rates_per_year, trials, sampler } = &job.body {
        let result = run_sweep_validator(state, job, &ej.cached, remaining);
        let elapsed = started.elapsed();
        match result {
            Ok(points) => {
                // Each clean point is published under its equivalent
                // single-point `mttf` canonical body: a later `mttf`
                // request for any swept rate — or a re-request of the
                // whole sweep — is answered from the journal
                // bit-identically.
                for (i, est) in points.iter().enumerate() {
                    if est.state() == "result" {
                        let key = point_canonical(workload, rates_per_year[i], *trials, *sampler);
                        state.publish_result(&key, est);
                    }
                }
                state.obs.metrics().add("serve.sweep_points", points.len() as u64);
                state.respond(
                    job.reply.as_ref(),
                    job.tag,
                    &Response::Sweep { id: job.id, points },
                    torn,
                );
            }
            Err(e) => respond_error(state, job, e, torn),
        }
        state.update_ewma(elapsed.as_secs_f64() * 1e3);
        state.obs.metrics().observe("serve.estimate_ms", elapsed.as_secs_f64() * 1e3);
        return;
    }
    let result = run_validator(state, job, &ej.cached, remaining);
    let elapsed = started.elapsed();
    match result {
        Ok(est) => {
            // Only clean full-fidelity results are journaled and resumable:
            // a truncated estimate depends on this run's deadline pressure
            // and must not masquerade as the canonical answer.
            if est.state() == "result" {
                state.publish_result(&job.canonical, &est);
            }
            state.respond(
                job.reply.as_ref(),
                job.tag,
                &Response::Estimate { id: job.id, est },
                torn,
            );
        }
        Err(e) => respond_error(state, job, e, torn),
    }
    state.update_ewma(elapsed.as_secs_f64() * 1e3);
    state.obs.metrics().observe("serve.estimate_ms", elapsed.as_secs_f64() * 1e3);
}

/// Ships a typed `error` terminal, preserving deadline-exhaustion context.
fn respond_error(state: &Arc<State>, job: &Job, e: serr_types::SerrError, torn: bool) {
    let (budget_s, elapsed_s) = match &e {
        serr_types::SerrError::DeadlineExhausted { budget_s, elapsed_s } => {
            (Some(*budget_s), Some(*elapsed_s))
        }
        _ => (None, None),
    };
    state.respond(
        job.reply.as_ref(),
        job.tag,
        &Response::Error { id: Some(job.id), error: e.to_string(), budget_s, elapsed_s },
        torn,
    );
}

/// The estimation itself — the exact code path `serr mttf` / `serr sofr`
/// run, so responses are bit-identical to the batch CLI at any
/// `SERR_THREADS` (deadline truncation aside).
fn run_validator(
    state: &Arc<State>,
    job: &Job,
    cached: &CachedTrace,
    deadline: Option<Duration>,
) -> Result<Estimate, serr_types::SerrError> {
    let (rate_per_year, trials, sampler) = match &job.body {
        RequestBody::Mttf { rate_per_year, trials, sampler, .. }
        | RequestBody::Sofr { rate_per_year, trials, sampler, .. } => {
            (*rate_per_year, *trials, *sampler)
        }
        RequestBody::Sweep { .. } | RequestBody::Stats | RequestBody::Shutdown => {
            unreachable!("sweeps run in run_sweep_validator; only estimation bodies are enqueued")
        }
    };
    let rate = RawErrorRate::try_per_year(rate_per_year)?;
    let mc = MonteCarloConfig {
        trials,
        threads: state.mc_threads,
        sampler,
        deadline,
        ..Default::default()
    };
    let v = Validator::new(state.experiment.frequency, mc);
    let (avf, mttf_step_s, mc_est) = match &job.body {
        RequestBody::Mttf { .. } => {
            let r = v.component(&*cached.raw, rate)?;
            (r.avf, r.mttf_avf.as_secs(), r.mttf_mc)
        }
        RequestBody::Sofr { components, .. } => {
            let r = v.system_identical(Arc::clone(&cached.raw), rate, *components)?;
            (cached.raw.avf(), r.mttf_sofr.as_secs(), r.mttf_mc)
        }
        RequestBody::Sweep { .. } | RequestBody::Stats | RequestBody::Shutdown => {
            unreachable!("gated above")
        }
    };
    Ok(Estimate {
        mttf_mc_s: mc_est.mttf.as_secs(),
        rel_ci95: mc_est.relative_ci95(),
        mttf_step_s,
        avf,
        provenance: classify_estimate(&mc_est).label().to_owned(),
        sampler: mc_est.sampler.label().to_owned(),
        trials_done: mc_est.ttf_seconds.count,
        truncated: mc_est.truncated,
        resumed: false,
    })
}

/// The multi-point sweep estimation: ONE shared-stream kernel run
/// (`MonteCarlo::component_mttf_multi`) produces every point's Monte
/// Carlo ground truth — common random numbers across the whole sweep —
/// and only the cheap analytic estimators remain per point. Each point is
/// bit-identical to the single-point `mttf` request for the same rate at
/// any `SERR_THREADS`, which is what licenses publishing clean points
/// under the equivalent `mttf` canonical bodies.
fn run_sweep_validator(
    state: &Arc<State>,
    job: &Job,
    cached: &CachedTrace,
    deadline: Option<Duration>,
) -> Result<Vec<Estimate>, serr_types::SerrError> {
    let RequestBody::Sweep { rates_per_year, trials, sampler, .. } = &job.body else {
        unreachable!("the caller routes only sweep bodies here")
    };
    let rates = rates_per_year
        .iter()
        .map(|&r| RawErrorRate::try_per_year(r))
        .collect::<Result<Vec<_>, serr_types::SerrError>>()?;
    let mc = MonteCarloConfig {
        trials: *trials,
        threads: state.mc_threads,
        sampler: *sampler,
        deadline,
        ..Default::default()
    };
    let v = Validator::new(state.experiment.frequency, mc);
    let ests =
        v.monte_carlo().component_mttf_multi(&*cached.raw, &rates, state.experiment.frequency)?;
    let mut points = Vec::with_capacity(ests.len());
    for (i, est) in ests.into_iter().enumerate() {
        let r = v.component_with_mc(&*cached.raw, rates[i], est?)?;
        points.push(Estimate {
            mttf_mc_s: r.mttf_mc.mttf.as_secs(),
            rel_ci95: r.mttf_mc.relative_ci95(),
            mttf_step_s: r.mttf_avf.as_secs(),
            avf: r.avf,
            provenance: classify_estimate(&r.mttf_mc).label().to_owned(),
            sampler: r.mttf_mc.sampler.label().to_owned(),
            trials_done: r.mttf_mc.ttf_seconds.count,
            truncated: r.mttf_mc.truncated,
            resumed: false,
        });
    }
    Ok(points)
}

/// Reconstructs a request body from its canonical spelling (the form the
/// pending journal stores). The canonical body is itself a valid frame
/// minus the `id`, so parsing is one splice away.
fn body_from_canonical(canonical: &str) -> Option<RequestBody> {
    let rest = canonical.strip_prefix('{')?;
    let line = format!("{{\"id\":0,{rest}");
    Request::parse(&line).ok().map(|r| r.body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_parses_both_schemes_and_rejects_garbage() {
        assert_eq!(Bind::parse("unix:/tmp/s.sock").unwrap(), Bind::Unix("/tmp/s.sock".into()));
        assert_eq!(
            Bind::parse("tcp:127.0.0.1:7979").unwrap(),
            Bind::Tcp("127.0.0.1:7979".to_owned())
        );
        assert!(Bind::parse("udp:1.2.3.4").is_err());
        assert_eq!(Bind::parse("unix:/a/b").unwrap().to_string(), "unix:/a/b");
    }

    #[test]
    fn sweep_requests_run_the_shared_kernel_and_resume_as_single_points() {
        use crate::client::Client;
        use crate::soak::{direct_estimate, shut_down, temp_dir};
        use serr_core::prelude::{SamplerKind, WorkloadSpec};

        let dir = temp_dir("sweep");
        let mut cfg = ServeConfig::new(Bind::Unix(dir.join("s.sock")));
        cfg.journal_dir = Some(dir.join("journal"));
        cfg.mc_threads = 1;
        let server = Server::start(cfg).expect("server starts");
        let bind = server.bind_addr().clone();
        let mut client = Client::connect(&bind).expect("connect");

        let workload = WorkloadSpec::parse("duty:0.002:0.5").expect("valid spec");
        let rates = vec![1e6, 2e6, 4e6];
        let sweep = Request {
            id: 1,
            deadline_ms: None,
            tag: Some(11),
            body: RequestBody::Sweep {
                workload: workload.clone(),
                rates_per_year: rates.clone(),
                trials: 1_200,
                sampler: SamplerKind::default(),
            },
        };
        let resp = client.roundtrip(&sweep).expect("sweep io").expect("sweep response");
        let points = match resp {
            Response::Sweep { id: 1, points } => points,
            other => panic!("expected a sweep response, got {other:?}"),
        };
        assert_eq!(points.len(), rates.len());
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.state(), "result", "point {i}: {p:?}");
            assert!(!p.resumed);
            // Every point is bit-identical to an independent single-point
            // computation — at one MC thread and at eight (the kernel is
            // thread-count invariant).
            let body = RequestBody::Mttf {
                workload: workload.clone(),
                rate_per_year: rates[i],
                trials: 1_200,
                sampler: SamplerKind::default(),
            };
            for threads in [1, 8] {
                let solo = direct_estimate(&body, threads);
                assert_eq!(
                    p.mttf_mc_s.to_bits(),
                    solo.mttf_mc_s.to_bits(),
                    "point {i} at {threads} threads"
                );
                assert_eq!(p.rel_ci95.to_bits(), solo.rel_ci95.to_bits());
            }
        }

        // A later single-point request for a swept rate is answered from
        // the journal — resumed, bit-identical.
        let single = Request {
            id: 2,
            deadline_ms: None,
            tag: Some(12),
            body: RequestBody::Mttf {
                workload: workload.clone(),
                rate_per_year: rates[1],
                trials: 1_200,
                sampler: SamplerKind::default(),
            },
        };
        let resp = client.roundtrip(&single).expect("mttf io").expect("mttf response");
        match resp {
            Response::Estimate { id: 2, est } => {
                assert!(est.resumed, "swept point should answer the single request");
                assert_eq!(est.mttf_mc_s.to_bits(), points[1].mttf_mc_s.to_bits());
            }
            other => panic!("expected the resumed estimate, got {other:?}"),
        }

        // Re-requesting the whole sweep assembles it from the per-point
        // journal entries without recomputation.
        let again = Request { tag: Some(13), id: 3, ..sweep };
        let resp = client.roundtrip(&again).expect("sweep io").expect("sweep response");
        match resp {
            Response::Sweep { id: 3, points: resumed } => {
                assert_eq!(resumed.len(), points.len());
                for (a, b) in resumed.iter().zip(&points) {
                    assert!(a.resumed);
                    assert_eq!(a.mttf_mc_s.to_bits(), b.mttf_mc_s.to_bits());
                }
            }
            other => panic!("expected the resumed sweep, got {other:?}"),
        }

        shut_down(&mut client, server);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn canonical_bodies_roundtrip_through_the_pending_journal_form() {
        let req = Request::parse(
            r#"{"id":5,"cmd":"sofr","workload":"duty:0.002:0.5","rate_per_year":1e6,"components":10,"trials":2000}"#,
        )
        .expect("parses");
        let body = body_from_canonical(&req.body_canonical()).expect("reconstructs");
        assert_eq!(body, req.body);
    }
}
