//! Graceful-shutdown drain and restart-resume: a request still in flight
//! when shutdown begins is journaled (and answered with a typed `shed`),
//! and a fresh server on the same journal directory — same configuration
//! fingerprint — replays it at startup, so a re-request is answered from
//! the results journal (`resumed: true`) bit-identically to the batch
//! computation path instead of being recomputed.

use serr_core::prelude::{SamplerKind, WorkloadSpec};
use serr_obs::Obs;

use crate::client::Client;
use crate::protocol::{Request, RequestBody, Response};
use crate::server::{Bind, ServeConfig, Server};
use crate::soak::{counter, direct_estimate, shut_down, stats, temp_dir, wait_for_counter};

#[test]
fn shutdown_drains_in_flight_work_and_a_fresh_server_resumes_bit_identically() {
    let dir = temp_dir("drain");
    let journal = dir.join("journal");
    let body = RequestBody::Mttf {
        workload: WorkloadSpec::parse("duty:0.002:0.5").expect("valid spec"),
        rate_per_year: 2e6,
        trials: 1_500,
        sampler: SamplerKind::default(),
    };

    // Server A runs zero estimate workers: admitted work compiles, then
    // parks in the estimate queue until the drain journals it.
    let (obs_a, _sink_a) = Obs::memory();
    let mut cfg = ServeConfig::new(Bind::Unix(dir.join("a.sock")));
    cfg.estimate_workers = 0;
    cfg.compile_workers = 1;
    cfg.journal_dir = Some(journal.clone());
    cfg.obs = obs_a;
    let a = Server::start(cfg).expect("server A starts");
    let bind_a = a.bind_addr().clone();

    let mut job_client = Client::connect(&bind_a).expect("connect A");
    let req = Request { id: 1, deadline_ms: None, tag: Some(7), body: body.clone() };
    job_client.send_line(&req.to_line()).expect("send request");

    let mut ctl = Client::connect(&bind_a).expect("control connect A");
    // Once the compile stage has run, the job sits in the estimate queue
    // with nobody to pop it — exactly the in-flight state drain must save.
    wait_for_counter(&mut ctl, "serve.cache_misses", 1);
    let shutdown = Request { id: 2, deadline_ms: None, tag: None, body: RequestBody::Shutdown };
    let ack = ctl.roundtrip(&shutdown).expect("shutdown io").expect("shutdown ack");
    assert!(matches!(ack, Response::ShutdownAck { .. }), "got {ack:?}");

    // The drain answers the parked request with a typed shed naming the
    // journal, not silence and not a dropped connection.
    let line = job_client.recv_line().expect("recv").expect("drain sends a full line");
    let shed = Response::parse(&line).expect("shed response parses");
    match &shed {
        Response::Shed { id: 1, reason } => {
            assert!(reason.contains("journaled"), "shed reason: {reason}");
        }
        other => panic!("expected shed for the parked request, got {other:?}"),
    }
    a.wait();

    // Server B: same journal directory, hence the same configuration
    // fingerprint, with real workers. Startup replays the pending journal.
    let (obs_b, _sink_b) = Obs::memory();
    let mut cfg = ServeConfig::new(Bind::Unix(dir.join("b.sock")));
    cfg.journal_dir = Some(journal);
    cfg.obs = obs_b;
    cfg.mc_threads = 1;
    let b = Server::start(cfg).expect("server B starts");
    let bind_b = b.bind_addr().clone();
    let mut ctl_b = Client::connect(&bind_b).expect("connect B");
    wait_for_counter(&mut ctl_b, "serve.replayed_pending", 1);
    wait_for_counter(&mut ctl_b, "serve.results_published", 1);

    let retry = Request { id: 3, deadline_ms: None, tag: Some(9), body: body.clone() };
    let resp = ctl_b.roundtrip(&retry).expect("retry io").expect("retry response");
    let est = match resp {
        Response::Estimate { id: 3, est } => est,
        other => panic!("expected the resumed estimate, got {other:?}"),
    };
    assert!(est.resumed, "answered from the results journal, not recomputed");
    assert!(!est.truncated);
    assert_eq!(est.provenance, "clean");

    let direct = direct_estimate(&body, 0);
    assert_eq!(
        est.mttf_mc_s.to_bits(),
        direct.mttf_mc_s.to_bits(),
        "resumed estimate is bit-identical to the batch path"
    );
    assert_eq!(est.rel_ci95.to_bits(), direct.rel_ci95.to_bits());
    assert_eq!(est.mttf_step_s.to_bits(), direct.mttf_step_s.to_bits());
    assert_eq!(est.avf.to_bits(), direct.avf.to_bits());
    assert_eq!(est.trials_done, direct.trials_done);

    let counters = stats(&mut ctl_b, 4);
    assert!(counter(&counters, "serve.resumed") >= 1, "{counters:?}");
    assert_eq!(counter(&counters, "serve.double_terminal"), 0, "{counters:?}");
    shut_down(&mut ctl_b, b);
}

#[test]
fn corrupt_results_journal_resets_and_the_server_still_starts() {
    let dir = temp_dir("journal-reset");
    let journal = dir.join("journal");
    let body = RequestBody::Mttf {
        workload: WorkloadSpec::parse("duty:0.002:0.5").expect("valid spec"),
        rate_per_year: 2e6,
        trials: 1_500,
        sampler: SamplerKind::default(),
    };

    // Server A computes one estimate into the results journal.
    let (obs_a, _sink_a) = Obs::memory();
    let mut cfg = ServeConfig::new(Bind::Unix(dir.join("a.sock")));
    cfg.journal_dir = Some(journal.clone());
    cfg.obs = obs_a;
    cfg.mc_threads = 1;
    let a = Server::start(cfg).expect("server A starts");
    let mut ctl = Client::connect(a.bind_addr()).expect("connect A");
    let req = Request { id: 1, deadline_ms: None, tag: None, body: body.clone() };
    let first = match ctl.roundtrip(&req).expect("io").expect("response") {
        Response::Estimate { est, .. } => est,
        other => panic!("expected estimate, got {other:?}"),
    };
    assert!(!first.resumed);
    shut_down(&mut ctl, a);

    // Damage the results journal's store header in place — a file a reader
    // must refuse wholesale, not misparse.
    let results = std::fs::read_dir(&journal)
        .expect("journal dir")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .find(|p| {
            p.extension().is_some_and(|x| x == "store")
                && p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("serve-results"))
        })
        .expect("results journal exists");
    let mut bytes = std::fs::read(&results).expect("read journal");
    bytes[2] ^= 0x20; // magic byte
    std::fs::write(&results, &bytes).expect("write corruption");

    // Server B must start anyway — the journal is reset, counted, and the
    // request recomputes instead of resuming from unverifiable bytes.
    let (obs_b, _sink_b) = Obs::memory();
    let mut cfg = ServeConfig::new(Bind::Unix(dir.join("b.sock")));
    cfg.journal_dir = Some(journal);
    cfg.obs = obs_b;
    cfg.mc_threads = 1;
    let b = Server::start(cfg).expect("server B starts despite the corrupt journal");
    let mut ctl_b = Client::connect(b.bind_addr()).expect("connect B");
    let retry = Request { id: 2, deadline_ms: None, tag: None, body };
    let est = match ctl_b.roundtrip(&retry).expect("io").expect("response") {
        Response::Estimate { est, .. } => est,
        other => panic!("expected estimate, got {other:?}"),
    };
    assert!(!est.resumed, "nothing may resume from a reset journal");
    assert_eq!(
        est.mttf_mc_s.to_bits(),
        first.mttf_mc_s.to_bits(),
        "recomputed estimate is still bit-identical"
    );
    let counters = stats(&mut ctl_b, 3);
    assert!(counter(&counters, "serve.journal_resets") >= 1, "{counters:?}");
    shut_down(&mut ctl_b, b);
}
