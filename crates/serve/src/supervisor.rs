//! Panic-isolated worker pools with supervised restart.
//!
//! Each worker slot is owned by a supervisor thread that runs the worker
//! body under [`std::panic::catch_unwind`]. A panic kills only that
//! worker's current request; the supervisor observes the death, waits out
//! a bounded exponential backoff (reusing [`BackoffPolicy`] from
//! `serr-core`, so the delays are deterministic given the seed), and
//! respawns the slot. A worker that returns [`WorkerExit::Shutdown`]
//! retires its slot permanently — that is the graceful-drain path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use serr_core::prelude::BackoffPolicy;

/// How one invocation of the worker body ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerExit {
    /// Clean exit: the input queue closed. The slot retires.
    Shutdown,
    /// The body asked to be treated as crashed (used by fault injection to
    /// exercise the restart path after the request was already answered).
    Died,
}

/// A pool of supervised worker slots over one worker body.
#[derive(Debug)]
pub struct Pool {
    name: &'static str,
    supervisors: Vec<JoinHandle<()>>,
    stopping: Arc<AtomicBool>,
    restarts: Arc<AtomicU64>,
}

impl Pool {
    /// Spawns `slots` supervised workers, each running `work(slot)` in a
    /// loop: panic or [`WorkerExit::Died`] → backoff and respawn;
    /// [`WorkerExit::Shutdown`] → retire. `on_restart(slot)` is called once
    /// per respawn (for metrics and telemetry).
    #[must_use]
    pub fn spawn(
        name: &'static str,
        slots: usize,
        policy: BackoffPolicy,
        work: Arc<dyn Fn(usize) -> WorkerExit + Send + Sync>,
        on_restart: Arc<dyn Fn(usize) + Send + Sync>,
    ) -> Pool {
        let stopping = Arc::new(AtomicBool::new(false));
        let restarts = Arc::new(AtomicU64::new(0));
        let supervisors = (0..slots)
            .map(|slot| {
                let work = Arc::clone(&work);
                let on_restart = Arc::clone(&on_restart);
                let stopping = Arc::clone(&stopping);
                let restarts = Arc::clone(&restarts);
                std::thread::Builder::new()
                    .name(format!("serr-serve/{name}-supervisor-{slot}"))
                    .spawn(move || {
                        let mut attempt: u32 = 0;
                        loop {
                            let body = Arc::clone(&work);
                            let worker = std::thread::Builder::new()
                                .name(format!("serr-serve/{name}-{slot}"))
                                .spawn(move || catch_unwind(AssertUnwindSafe(|| body(slot))))
                                .expect("worker thread spawn");
                            // An Err join (the worker's own thread panicked
                            // outside catch_unwind) is treated as a death too.
                            let exit = match worker.join() {
                                Ok(Ok(exit)) => exit,
                                Ok(Err(_)) | Err(_) => WorkerExit::Died,
                            };
                            match exit {
                                WorkerExit::Shutdown => break,
                                WorkerExit::Died => {
                                    if stopping.load(Ordering::SeqCst) {
                                        break;
                                    }
                                    restarts.fetch_add(1, Ordering::SeqCst);
                                    on_restart(slot);
                                    // Bounded exponential backoff: delay()
                                    // caps at the policy's max_delay, so a
                                    // crash-looping worker cannot spin.
                                    std::thread::sleep(policy.delay(attempt.min(16)));
                                    attempt = attempt.saturating_add(1);
                                }
                            }
                        }
                    })
                    .expect("supervisor thread spawn")
            })
            .collect();
        Pool { name, supervisors, stopping, restarts }
    }

    /// Total worker respawns across all slots so far.
    #[must_use]
    pub fn restarts(&self) -> u64 {
        self.restarts.load(Ordering::SeqCst)
    }

    /// Stops supervising: workers that die after this retire instead of
    /// respawning. Call before closing the input queue so drain is clean.
    pub fn begin_shutdown(&self) {
        self.stopping.store(true, Ordering::SeqCst);
    }

    /// Waits for every slot to retire. Workers only retire when their body
    /// returns [`WorkerExit::Shutdown`] (input queue closed) or when they
    /// die after [`Pool::begin_shutdown`] — so close the queue first.
    pub fn join(self) {
        for s in self.supervisors {
            if s.join().is_err() {
                // A supervisor itself panicking is a bug, but shutdown must
                // still complete; the pool name identifies the culprit.
                debug_assert!(false, "supervisor panicked in pool {}", self.name);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::Bounded;
    use std::time::Duration;

    fn tight_policy() -> BackoffPolicy {
        BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            jitter_seed: 7,
        }
    }

    #[test]
    fn panicking_workers_are_restarted_and_finish_the_backlog() {
        let q: Arc<Bounded<u64>> = Arc::new(Bounded::new(64));
        for i in 0..40 {
            q.try_push(i).expect("space");
        }
        let done = Arc::new(AtomicU64::new(0));
        let work = {
            let q = Arc::clone(&q);
            let done = Arc::clone(&done);
            Arc::new(move |_slot: usize| {
                while let Some(i) = q.pop() {
                    if i % 10 == 3 {
                        // The item is counted first: a panic kills the
                        // worker, not the request's terminal state.
                        done.fetch_add(1, Ordering::SeqCst);
                        panic!("injected worker panic on item {i}");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }
                WorkerExit::Shutdown
            })
        };
        let pool = Pool::spawn("test", 2, tight_policy(), work, Arc::new(|_| {}));
        while done.load(Ordering::SeqCst) < 40 {
            std::thread::yield_now();
        }
        pool.begin_shutdown();
        q.close();
        assert!(pool.restarts() >= 4, "four panic items, each a restart");
        pool.join();
        assert_eq!(done.load(Ordering::SeqCst), 40, "no item was lost to a panic");
    }

    #[test]
    fn shutdown_exit_retires_the_slot_without_restart() {
        let q: Arc<Bounded<u64>> = Arc::new(Bounded::new(4));
        let work = {
            let q = Arc::clone(&q);
            Arc::new(move |_slot: usize| {
                while q.pop().is_some() {}
                WorkerExit::Shutdown
            })
        };
        let pool = Pool::spawn("test", 3, tight_policy(), work, Arc::new(|_| {}));
        q.close();
        pool.join();
    }

    #[test]
    fn died_exit_after_begin_shutdown_retires_instead_of_respawning() {
        let q: Arc<Bounded<u64>> = Arc::new(Bounded::new(4));
        let work = {
            let q = Arc::clone(&q);
            Arc::new(move |_slot: usize| match q.pop() {
                Some(_) => WorkerExit::Died,
                None => WorkerExit::Shutdown,
            })
        };
        let restarts_seen = Arc::new(AtomicU64::new(0));
        let on_restart = {
            let n = Arc::clone(&restarts_seen);
            Arc::new(move |_slot: usize| {
                n.fetch_add(1, Ordering::SeqCst);
            })
        };
        let pool = Pool::spawn("test", 1, tight_policy(), work, on_restart);
        q.try_push(1).expect("space");
        // First death: supervisor restarts the slot.
        while pool.restarts() < 1 {
            std::thread::yield_now();
        }
        assert_eq!(restarts_seen.load(Ordering::SeqCst), 1, "restart hook fired");
        // After begin_shutdown, a death retires the slot.
        pool.begin_shutdown();
        q.try_push(2).expect("space");
        q.close();
        pool.join();
    }
}
