//! A minimal work-stealing-free parallel map over a slice, built on
//! `std::thread::scope` only (the build environment is offline; no rayon).
//!
//! Design points in the figure sweeps are mutually independent and vary
//! wildly in cost (a `C = 5000`, `N×S = 1e13` Monte Carlo run is orders of
//! magnitude heavier than the small-`λL` corner), so workers pull the next
//! item off a shared atomic counter rather than pre-partitioning the slice.
//! Output order is the input order regardless of which worker computed
//! which item, so parallel sweeps produce byte-identical report rows.

use std::sync::atomic::{AtomicUsize, Ordering};

/// The number of worker threads to use for a fan-out over `jobs` independent
/// items: `available_parallelism` capped by the job count (never zero).
#[must_use]
pub fn fanout_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(jobs.max(1))
}

/// Applies `f` to every element of `items` using up to `threads` OS threads
/// and returns the results **in input order**.
///
/// `f` receives `(index, &item)`. Items are claimed dynamically (atomic
/// counter), so a slow item does not stall the remaining work. With
/// `threads <= 1` or fewer than two items this degenerates to a plain
/// sequential map on the calling thread — no threads are spawned.
///
/// # Panics
///
/// If `f` panics on any item, the panic is propagated to the caller after
/// the other workers finish their current items.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    // Each worker collects (index, result) pairs; the merge below restores
    // input order without sharing mutable state across threads.
    let per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let (f, next) = (&f, &next);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index claimed exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let got = par_map(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..41).collect();
        let seq = par_map(&items, 1, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let par = par_map(&items, 8, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn fanout_threads_is_positive_and_capped() {
        assert_eq!(fanout_threads(0), 1);
        assert_eq!(fanout_threads(1), 1);
        assert!(fanout_threads(1024) >= 1);
        assert!(fanout_threads(2) <= 2);
    }

    #[test]
    fn propagates_results_with_errors() {
        // The common call shape: f returns Result, caller collects.
        let items: Vec<i32> = (0..20).collect();
        let rows: Result<Vec<i32>, String> =
            par_map(&items, 4, |_, &x| if x == 13 { Err("boom".to_owned()) } else { Ok(x) })
                .into_iter()
                .collect();
        assert_eq!(rows.unwrap_err(), "boom");
    }
}
