//! A minimal work-stealing-free parallel map over a slice, built on
//! `std::thread::scope` only (the build environment is offline; no rayon).
//!
//! Design points in the figure sweeps are mutually independent and vary
//! wildly in cost (a `C = 5000`, `N×S = 1e13` Monte Carlo run is orders of
//! magnitude heavier than the small-`λL` corner), so workers pull the next
//! item off a shared atomic counter rather than pre-partitioning the slice.
//! Output order is the input order regardless of which worker computed
//! which item, so parallel sweeps produce byte-identical report rows.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use serr_types::SerrError;

/// The number of worker threads to use for a fan-out over `jobs` independent
/// items: the `SERR_THREADS` override when set, else `available_parallelism`,
/// capped by the job count (never zero).
///
/// `SERR_THREADS` follows the same convention as the Monte Carlo engine's
/// CLI plumbing — unset, empty, unparsable, or `0` means all cores — so one
/// environment variable pins every thread pool in a run, sweeps included.
/// Results never depend on the setting (sweep output is input-ordered and
/// each MC estimate is chunk-deterministic); the variable exists so that
/// invariance can be demonstrated, and core counts bounded, from the shell.
#[must_use]
pub fn fanout_threads(jobs: usize) -> usize {
    let configured = std::env::var("SERR_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0);
    configured
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
        .min(jobs.max(1))
}

/// Applies `f` to every element of `items` using up to `threads` OS threads
/// and returns the results **in input order**.
///
/// `f` receives `(index, &item)`. Items are claimed dynamically (atomic
/// counter), so a slow item does not stall the remaining work. With
/// `threads <= 1` or fewer than two items this degenerates to a plain
/// sequential map on the calling thread — no threads are spawned.
///
/// # Panics
///
/// If `f` panics on any item, the panic is propagated to the caller after
/// the other workers finish their current items.
pub fn par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }

    let next = AtomicUsize::new(0);
    // Each worker collects (index, result) pairs; the merge below restores
    // input order without sharing mutable state across threads.
    let per_worker: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let (f, next) = (&f, &next);
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(v) => v,
                Err(payload) => std::panic::resume_unwind(payload),
            })
            .collect()
    });

    let mut slots: Vec<Option<U>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    for (i, value) in per_worker.into_iter().flatten() {
        slots[i] = Some(value);
    }
    slots.into_iter().map(|s| s.expect("every index claimed exactly once")).collect()
}

/// Renders a caught panic payload for error reporting: `panic!` with a
/// string message covers practically every panic in this workspace
/// (asserts included); anything else gets a placeholder.
pub(crate) fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Panic-isolating variant of [`par_map`] for fallible work items: applies
/// `f` to every element in parallel and returns one `Result` per item **in
/// input order**. A panic in `f` poisons only its own item — it is caught
/// with `catch_unwind` and surfaced as [`SerrError::PointFailed`] carrying
/// the item's index and the panic message — so one pathological design
/// point cannot abort a multi-hour sweep or discard its finished siblings.
///
/// Ordinary `Err` returns from `f` pass through untouched.
pub fn try_par_map<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<Result<U, SerrError>>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> Result<U, SerrError> + Sync,
{
    // `AssertUnwindSafe` is sound here: `f` only sees shared references, and
    // a poisoned item's partial state is confined to the closure call that
    // panicked — nothing it touched is observed afterwards.
    par_map(items, threads, |i, item| {
        catch_unwind(AssertUnwindSafe(|| f(i, item))).unwrap_or_else(|payload| {
            Err(SerrError::PointFailed {
                index: i,
                payload: panic_payload_string(payload.as_ref()),
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<u64> = (0..97).collect();
        let got = par_map(&items, 4, |i, &x| {
            assert_eq!(i as u64, x);
            x * x
        });
        let want: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let items: Vec<u64> = (0..41).collect();
        let seq = par_map(&items, 1, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let par = par_map(&items, 8, |_, &x| x.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(seq, par);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let items = [1u32, 2, 3];
        assert_eq!(par_map(&items, 64, |_, &x| x * 10), vec![10, 20, 30]);
    }

    #[test]
    fn fanout_threads_is_positive_and_capped() {
        assert_eq!(fanout_threads(0), 1);
        assert_eq!(fanout_threads(1), 1);
        assert!(fanout_threads(1024) >= 1);
        assert!(fanout_threads(2) <= 2);
    }

    #[test]
    fn fanout_threads_honors_serr_threads() {
        // Env mutation is process-global: take values through every branch
        // inside one test so no parallel test observes a half-set variable.
        let saved = std::env::var("SERR_THREADS").ok();
        std::env::set_var("SERR_THREADS", "5");
        assert_eq!(fanout_threads(1024), 5, "explicit override wins");
        assert_eq!(fanout_threads(3), 3, "job count still caps the override");
        assert_eq!(fanout_threads(0), 1, "never zero");
        std::env::set_var("SERR_THREADS", " 2 ");
        assert_eq!(fanout_threads(1024), 2, "whitespace-tolerant like the CLI");
        for all_cores in ["0", "", "not-a-number"] {
            std::env::set_var("SERR_THREADS", all_cores);
            let n = fanout_threads(1024);
            assert!(n >= 1, "{all_cores:?} must fall back to all cores, got {n}");
        }
        match saved {
            Some(v) => std::env::set_var("SERR_THREADS", v),
            None => std::env::remove_var("SERR_THREADS"),
        }
    }

    #[test]
    fn try_par_map_isolates_a_poisoned_point() {
        let items: Vec<u64> = (0..50).collect();
        for threads in [1, 4] {
            let got = try_par_map(&items, threads, |_, &x| {
                assert!(x != 17, "poisoned point {x}");
                Ok(x * 2)
            });
            assert_eq!(got.len(), items.len());
            for (i, res) in got.iter().enumerate() {
                if i == 17 {
                    match res {
                        Err(SerrError::PointFailed { index, payload }) => {
                            assert_eq!(*index, 17);
                            assert!(payload.contains("poisoned point 17"), "payload: {payload}");
                        }
                        other => panic!("expected PointFailed, got {other:?}"),
                    }
                } else {
                    // Every other result is present, correct, in input order.
                    assert_eq!(res.as_ref().expect("healthy point"), &(i as u64 * 2));
                }
            }
        }
    }

    #[test]
    fn try_par_map_passes_plain_errors_through() {
        let items = [1u32, 2, 3];
        let got = try_par_map(&items, 2, |_, &x| {
            if x == 2 {
                Err(SerrError::invalid_config("two is right out"))
            } else {
                Ok(x)
            }
        });
        assert_eq!(got[0], Ok(1));
        assert_eq!(got[1], Err(SerrError::invalid_config("two is right out")));
        assert_eq!(got[2], Ok(3));
    }

    #[test]
    fn try_par_map_reports_non_string_payloads() {
        let items = [0u8];
        let got = try_par_map(&items, 1, |_, _| -> Result<(), SerrError> {
            std::panic::panic_any(42i32)
        });
        match &got[0] {
            Err(SerrError::PointFailed { index: 0, payload }) => {
                assert_eq!(payload, "non-string panic payload");
            }
            other => panic!("expected PointFailed, got {other:?}"),
        }
    }

    #[test]
    fn propagates_results_with_errors() {
        // The common call shape: f returns Result, caller collects.
        let items: Vec<i32> = (0..20).collect();
        let rows: Result<Vec<i32>, String> =
            par_map(&items, 4, |_, &x| if x == 13 { Err("boom".to_owned()) } else { Ok(x) })
                .into_iter()
                .collect();
        assert_eq!(rows.unwrap_err(), "boom");
    }
}
