//! The paper's component raw error rates (Section 4.1).

use serde::{Deserialize, Serialize};
use serr_types::RawErrorRate;

/// Raw soft-error rates of the four studied processor components.
///
/// The paper (citing Li et al.'s SoftArch derivation from published device
/// error rates): integer unit 2.3e-6, FP unit 4.5e-6, decode unit 3.3e-6,
/// and the 256-entry register file 1.0e-4 errors/year.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UnitRates {
    /// Integer-unit raw rate.
    pub int_unit: RawErrorRate,
    /// FP-unit raw rate.
    pub fp_unit: RawErrorRate,
    /// Decode-unit raw rate.
    pub decode: RawErrorRate,
    /// Register-file raw rate.
    pub regfile: RawErrorRate,
}

impl UnitRates {
    /// The paper's rates.
    #[must_use]
    pub fn paper() -> Self {
        UnitRates {
            int_unit: RawErrorRate::per_year(2.3e-6),
            fp_unit: RawErrorRate::per_year(4.5e-6),
            decode: RawErrorRate::per_year(3.3e-6),
            regfile: RawErrorRate::per_year(1.0e-4),
        }
    }

    /// All four rates scaled by `s` (the paper's technology/altitude axis).
    #[must_use]
    pub fn scaled(&self, s: f64) -> Self {
        UnitRates {
            int_unit: self.int_unit.scale(s),
            fp_unit: self.fp_unit.scale(s),
            decode: self.decode.scale(s),
            regfile: self.regfile.scale(s),
        }
    }

    /// The processor-total raw rate (sum of the four).
    #[must_use]
    pub fn total(&self) -> RawErrorRate {
        self.int_unit + self.fp_unit + self.decode + self.regfile
    }

    /// Rates as `(name, rate)` pairs in the paper's order.
    #[must_use]
    pub fn named(&self) -> [(&'static str, RawErrorRate); 4] {
        [
            ("int", self.int_unit),
            ("fp", self.fp_unit),
            ("decode", self.decode),
            ("regfile", self.regfile),
        ]
    }
}

impl Default for UnitRates {
    fn default() -> Self {
        UnitRates::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let r = UnitRates::paper();
        assert!((r.int_unit.events_per_year() - 2.3e-6).abs() < 1e-18);
        assert!((r.fp_unit.events_per_year() - 4.5e-6).abs() < 1e-18);
        assert!((r.decode.events_per_year() - 3.3e-6).abs() < 1e-18);
        assert!((r.regfile.events_per_year() - 1.0e-4).abs() < 1e-16);
        // The register file dominates the processor total.
        assert!(r.regfile.events_per_year() / r.total().events_per_year() > 0.9);
    }

    #[test]
    fn scaling_axis() {
        let hot = UnitRates::paper().scaled(5000.0);
        assert!((hot.int_unit.events_per_year() - 2.3e-6 * 5000.0).abs() < 1e-12);
        assert!(
            (hot.total().events_per_year() - UnitRates::paper().total().events_per_year() * 5000.0)
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn named_order_is_stable() {
        let names: Vec<_> = UnitRates::paper().named().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["int", "fp", "decode", "regfile"]);
    }
}
