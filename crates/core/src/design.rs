//! The Table 2 design space.
//!
//! Three axes beyond the workload: `N` (elements per component), `S`
//! (scaling of the baseline per-element raw error rate — technology,
//! altitude, accelerated test), and `C` (components in the system). The
//! component raw error rate is `N × S × baseline`; only the product `N×S`
//! matters for a single component, which is how the paper reports Figure 5.

use serde::{Deserialize, Serialize};
use serr_types::{RawErrorRate, SerrError};

/// Table 2: number of elements (e.g. bits) in a component.
pub const N_VALUES: [f64; 5] = [1e5, 1e6, 1e7, 1e8, 1e9];
/// Table 2: scaling factors for the baseline per-element rate.
pub const S_VALUES: [f64; 5] = [1.0, 5.0, 100.0, 2000.0, 5000.0];
/// Table 2: number of components in the system.
pub const C_VALUES: [u64; 5] = [2, 8, 5000, 50_000, 500_000];

/// The workloads of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// A SPEC CPU2000 floating-point benchmark (synthetic profile).
    SpecFp,
    /// A SPEC CPU2000 integer benchmark (synthetic profile).
    SpecInt,
    /// The `day` loop: 24 h period, busy 12 h.
    Day,
    /// The `week` loop: 7-day period, busy 5 business days.
    Week,
    /// The `combined` loop: two benchmarks alternating over 24 h.
    Combined,
}

impl Workload {
    /// All five workload classes in Table 2 order.
    #[must_use]
    pub fn all() -> [Workload; 5] {
        [Workload::SpecFp, Workload::SpecInt, Workload::Day, Workload::Week, Workload::Combined]
    }

    /// The synthesized (long-horizon) workloads.
    #[must_use]
    pub fn synthesized() -> [Workload; 3] {
        [Workload::Day, Workload::Week, Workload::Combined]
    }

    /// Short label used in reports ("SPEC fp", "day", ...).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Workload::SpecFp => "SPEC fp",
            Workload::SpecInt => "SPEC int",
            Workload::Day => "day",
            Workload::Week => "week",
            Workload::Combined => "combined",
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One point of the design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Elements per component.
    pub n: f64,
    /// Rate scaling factor.
    pub s: f64,
    /// Components in the system.
    pub c: u64,
    /// Workload class.
    pub workload: Workload,
}

impl DesignPoint {
    /// The component raw error rate `N × S × baseline`.
    #[must_use]
    pub fn component_rate(&self) -> RawErrorRate {
        RawErrorRate::baseline_per_bit().scale(self.n).scale(self.s)
    }

    /// The product `N × S` (the axis of Figures 5 and 6).
    #[must_use]
    pub fn n_times_s(&self) -> f64 {
        self.n * self.s
    }

    /// Validates ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for non-positive `n`/`s`/`c`.
    pub fn validate(&self) -> Result<(), SerrError> {
        if !(self.n > 0.0 && self.n.is_finite()) {
            return Err(SerrError::invalid_config("N must be positive"));
        }
        if !(self.s > 0.0 && self.s.is_finite()) {
            return Err(SerrError::invalid_config("S must be positive"));
        }
        if self.c == 0 {
            return Err(SerrError::invalid_config("C must be positive"));
        }
        Ok(())
    }
}

/// The full Table 2 grid, as an iterator of [`DesignPoint`]s.
#[derive(Debug, Clone, Default)]
pub struct DesignSpace {
    /// Restrict to these workloads (empty = all of Table 2).
    pub workloads: Vec<Workload>,
    /// Restrict to these C values (empty = all of Table 2).
    pub c_values: Vec<u64>,
    /// Restrict to these N×S products (empty = full N × S cross product).
    pub n_times_s: Vec<f64>,
}

impl DesignSpace {
    /// The complete Table 2 space.
    #[must_use]
    pub fn full() -> Self {
        DesignSpace::default()
    }

    /// Iterates all points, in workload-major order.
    pub fn points(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        let workloads: Vec<Workload> = if self.workloads.is_empty() {
            Workload::all().to_vec()
        } else {
            self.workloads.clone()
        };
        let cs: Vec<u64> =
            if self.c_values.is_empty() { C_VALUES.to_vec() } else { self.c_values.clone() };
        let ns: Vec<f64> = if self.n_times_s.is_empty() {
            let mut v: Vec<f64> =
                N_VALUES.iter().flat_map(|&n| S_VALUES.iter().map(move |&s| n * s)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v.dedup();
            v
        } else {
            self.n_times_s.clone()
        };
        workloads.into_iter().flat_map(move |w| {
            let cs = cs.clone();
            let ns = ns.clone();
            cs.into_iter().flat_map(move |c| {
                let ns = ns.clone();
                ns.into_iter().map(move |prod| DesignPoint { n: prod, s: 1.0, c, workload: w })
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values() {
        assert_eq!(N_VALUES.len(), 5);
        assert_eq!(S_VALUES.len(), 5);
        assert_eq!(C_VALUES, [2, 8, 5000, 50_000, 500_000]);
        assert_eq!(Workload::all().len(), 5);
    }

    #[test]
    fn component_rate_is_n_s_baseline() {
        let p = DesignPoint { n: 1e8, s: 5.0, c: 1, workload: Workload::Day };
        // 1e8 × 5 × 1e-8/yr = 5 errors/year.
        assert!((p.component_rate().events_per_year() - 5.0).abs() < 1e-9);
        assert_eq!(p.n_times_s(), 5e8);
        p.validate().unwrap();
    }

    #[test]
    fn full_space_size() {
        // 5 workloads × 5 C × distinct N×S products.
        let distinct_products = {
            let mut v: Vec<f64> =
                N_VALUES.iter().flat_map(|&n| S_VALUES.iter().map(move |&s| n * s)).collect();
            v.sort_by(f64::total_cmp);
            v.dedup();
            v.len()
        };
        let count = DesignSpace::full().points().count();
        assert_eq!(count, 5 * 5 * distinct_products);
        for p in DesignSpace::full().points() {
            p.validate().unwrap();
        }
    }

    #[test]
    fn restricted_space() {
        let space = DesignSpace {
            workloads: vec![Workload::Day],
            c_values: vec![1],
            n_times_s: vec![1e8, 1e9],
        };
        let pts: Vec<_> = space.points().collect();
        assert_eq!(pts.len(), 2);
        assert!(pts.iter().all(|p| p.workload == Workload::Day && p.c == 1));
    }

    #[test]
    fn validation_rejects_bad_points() {
        let bad = DesignPoint { n: 0.0, s: 1.0, c: 1, workload: Workload::Day };
        assert!(bad.validate().is_err());
        let bad = DesignPoint { n: 1.0, s: -1.0, c: 1, workload: Workload::Day };
        assert!(bad.validate().is_err());
        let bad = DesignPoint { n: 1.0, s: 1.0, c: 0, workload: Workload::Day };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn labels_are_paper_names() {
        let labels: Vec<_> = Workload::all().iter().map(|w| w.label()).collect();
        assert_eq!(labels, ["SPEC fp", "SPEC int", "day", "week", "combined"]);
    }
}
