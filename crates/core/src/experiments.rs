//! Generators for every experimental table and figure in the paper's
//! evaluation (Sections 5.1–5.4). Each function returns the rows the paper
//! plots; the `serr-bench` binaries print them.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serr_mc::MonteCarloConfig;
use serr_trace::{ConcatTrace, VulnerabilityTrace};
use serr_types::{Frequency, RawErrorRate, Seconds, SerrError};
use serr_workload::synthesized;

use crate::design::Workload;
use crate::par;
use crate::pipeline::{processor_trace, simulate_benchmark};
use crate::rates::UnitRates;
use crate::validate::Validator;

/// The three representative SPEC benchmarks used for Figure 6(a): one
/// compute-bound integer, one memory-bound integer, and one floating-point
/// program with pronounced compute/memory phases.
pub const REPRESENTATIVE_BENCHMARKS: [&str; 3] = ["gzip", "mcf", "equake"];

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Instructions of detailed simulation per benchmark. The paper uses
    /// 100M; masking statistics converge far earlier for the synthetic
    /// workloads (see DESIGN.md substitution 3).
    pub sim_instructions: u64,
    /// Workload-generator / simulation seed.
    pub seed: u64,
    /// Monte Carlo configuration.
    pub mc: MonteCarloConfig,
    /// Machine clock.
    pub frequency: Frequency,
}

impl ExperimentConfig {
    /// Fast settings for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            sim_instructions: 60_000,
            seed: 42,
            mc: MonteCarloConfig { trials: 20_000, ..Default::default() },
            frequency: Frequency::base(),
        }
    }

    /// Full settings for the reproduction runs reported in EXPERIMENTS.md.
    #[must_use]
    pub fn full() -> Self {
        ExperimentConfig {
            sim_instructions: 1_000_000,
            seed: 42,
            mc: MonteCarloConfig { trials: 200_000, ..Default::default() },
            frequency: Frequency::base(),
        }
    }

    /// Paper-scale trace lengths: 8M instructions of detailed simulation
    /// per benchmark (the paper uses 100M). At this length the SPEC
    /// program-phase windows are long enough for the Figure 6(a) corner
    /// discrepancies to appear; unit traces are transparently coarsened to
    /// keep queries fast (AVF preserved exactly).
    #[must_use]
    pub fn paper_scale() -> Self {
        ExperimentConfig { sim_instructions: 8_000_000, ..Self::full() }
    }

    fn validator(&self) -> Validator {
        Validator::new(self.frequency, self.mc)
    }
}

/// Picks the fan-out width for `jobs` independent design points, along with
/// the per-job configuration. When more than one job runs at once, the
/// inner Monte Carlo is pinned to a single thread so a sweep uses one core
/// per design point instead of oversubscribing `jobs × cores`. The engine's
/// chunk-based RNG makes estimates bit-identical at every thread count, so
/// the pinning cannot change any row — only how the same work is scheduled.
fn fanout(cfg: &ExperimentConfig, jobs: usize) -> (usize, ExperimentConfig) {
    let threads = par::fanout_threads(jobs);
    let mut inner = *cfg;
    if threads > 1 {
        inner.mc.threads = 1;
    }
    (threads, inner)
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::full()
    }
}

/// Builds a synthesized workload's component-level masking trace.
///
/// For `day`/`week` these are the paper's duty-cycle loops; `combined`
/// tiles two simulated benchmarks (gzip, swim) for 12 hours each.
///
/// # Errors
///
/// Propagates simulation/trace construction errors.
pub fn synthesized_trace(
    workload: Workload,
    cfg: &ExperimentConfig,
) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
    match workload {
        Workload::Day => Ok(Arc::new(synthesized::day(cfg.frequency))),
        Workload::Week => Ok(Arc::new(synthesized::week(cfg.frequency))),
        Workload::Combined => Ok(Arc::new(combined_trace(cfg)?)),
        Workload::SpecInt | Workload::SpecFp => Err(SerrError::invalid_config(
            "SPEC workloads use per-benchmark traces; call spec_processor_trace",
        )),
    }
}

/// The `combined` workload: gzip then swim, 12 simulated hours each.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn combined_trace(cfg: &ExperimentConfig) -> Result<ConcatTrace, SerrError> {
    let rates = UnitRates::paper();
    let a = simulate_benchmark("gzip", cfg.sim_instructions, cfg.seed)?;
    let b = simulate_benchmark("swim", cfg.sim_instructions, cfg.seed)?;
    synthesized::combined(
        Arc::new(processor_trace(&a, &rates)?),
        Arc::new(processor_trace(&b, &rates)?),
        cfg.frequency,
    )
}

/// The processor-level masking trace of one SPEC benchmark.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn spec_processor_trace(
    benchmark: &str,
    cfg: &ExperimentConfig,
) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
    let run = simulate_benchmark(benchmark, cfg.sim_instructions, cfg.seed)?;
    let cycles = run.output.stats.cycles;
    // Long simulations produce multi-million-segment unit traces; aggregate
    // to ≤ ~2¹⁷ windows (AVF exact, cumulative drift ≤ one window — far
    // below the cycle scales any Table 2 rate can resolve).
    if cycles > 16_777_216 {
        let window = cycles / 131_072;
        let rates = UnitRates::paper();
        let t = &run.output.traces;
        let parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)> = vec![
            (rates.int_unit.per_second_value(), Arc::new(t.int_unit.coarsen(window)?) as _),
            (rates.fp_unit.per_second_value(), Arc::new(t.fp_unit.coarsen(window)?) as _),
            (rates.decode.per_second_value(), Arc::new(t.decode.coarsen(window)?) as _),
        ];
        return Ok(Arc::new(serr_trace::CompositeTrace::new(parts)?));
    }
    Ok(Arc::new(processor_trace(&run, &UnitRates::paper())?))
}

// ---------------------------------------------------------------------------
// Section 5.1: today's uniprocessors running SPEC.
// ---------------------------------------------------------------------------

/// One benchmark's row of the Section 5.1 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec51Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-component `(name, AVF, AVF-step error vs Monte Carlo)`.
    pub components: Vec<(String, f64, f64)>,
    /// Worst per-component AVF-step error.
    pub max_component_error: f64,
    /// Worst per-component AVF-step error vs the exact renewal reference
    /// (free of Monte-Carlo sampling noise).
    pub max_component_error_exact: f64,
    /// Processor-level SOFR error vs Monte Carlo.
    pub sofr_error: f64,
    /// Processor-level SOFR error vs the exact renewal reference.
    pub sofr_error_exact: f64,
    /// Simulated IPC (sanity signal for the substrate).
    pub ipc: f64,
}

/// Reproduces Section 5.1: for each benchmark, the AVF step per component
/// and the SOFR step across the four components of one processor, all
/// versus Monte Carlo. The paper reports "< 0.5% discrepancy for all cases".
///
/// Benchmarks fan out across cores ([`par::par_map`]); row order follows
/// the input order and every row is bit-identical to a serial run.
///
/// # Errors
///
/// Propagates pipeline and estimator errors.
pub fn sec5_1(benchmarks: &[&str], cfg: &ExperimentConfig) -> Result<Vec<Sec51Row>, SerrError> {
    let (threads, cfg) = fanout(cfg, benchmarks.len());
    par::par_map(benchmarks, threads, |_, &name| sec5_1_row(name, &cfg))
        .into_iter()
        .collect()
}

fn sec5_1_row(name: &str, cfg: &ExperimentConfig) -> Result<Sec51Row, SerrError> {
    let rates = UnitRates::paper();
    let v = cfg.validator();
    let run = simulate_benchmark(name, cfg.sim_instructions, cfg.seed)?;
    let t = &run.output.traces;
    let units: [(&str, RawErrorRate, Arc<dyn VulnerabilityTrace>); 4] = [
        ("int", rates.int_unit, Arc::new(t.int_unit.clone())),
        ("fp", rates.fp_unit, Arc::new(t.fp_unit.clone())),
        ("decode", rates.decode, Arc::new(t.decode.clone())),
        ("regfile", rates.regfile, Arc::new(t.regfile.clone())),
    ];
    let mut components = Vec::new();
    let mut max_err = 0.0f64;
    let mut max_err_exact = 0.0f64;
    for (unit, rate, trace) in &units {
        if trace.is_never_vulnerable() {
            // FP units on integer benchmarks never fail; the AVF step
            // and the first-principles methods agree trivially.
            components.push(((*unit).to_owned(), 0.0, 0.0));
            continue;
        }
        let cv = v.component(trace, *rate)?;
        components.push(((*unit).to_owned(), cv.avf, cv.avf_error_vs_mc));
        max_err = max_err.max(cv.avf_error_vs_mc);
        max_err_exact = max_err_exact.max(cv.avf_error_vs_renewal);
    }
    let parts: Vec<(RawErrorRate, Arc<dyn VulnerabilityTrace>)> =
        units.iter().map(|(_, r, t)| (*r, t.clone())).collect();
    let sv = v.system_parts(&parts)?;
    Ok(Sec51Row {
        benchmark: name.to_owned(),
        components,
        max_component_error: max_err,
        max_component_error_exact: max_err_exact,
        sofr_error: sv.sofr_error_vs_mc,
        sofr_error_exact: sv.sofr_error_vs_renewal,
        ipc: run.output.stats.ipc(),
    })
}

// ---------------------------------------------------------------------------
// Figure 5: the AVF step across the broad design space.
// ---------------------------------------------------------------------------

/// One point of Figure 5.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Workload label.
    pub workload: String,
    /// The `N × S` product.
    pub n_times_s: f64,
    /// The component's AVF.
    pub avf: f64,
    /// AVF-step MTTF in years.
    pub mttf_avf_years: f64,
    /// Monte Carlo MTTF in years.
    pub mttf_mc_years: f64,
    /// AVF-step error vs Monte Carlo.
    pub error: f64,
    /// SoftArch error vs Monte Carlo at the same point (Section 5.4 data).
    pub softarch_error: f64,
}

/// Reproduces Figure 5: AVF-step error for the synthesized workloads at
/// representative `N×S` values (C = 1 throughout).
///
/// Traces are built serially (once per workload), then the
/// `workload × N×S` design points fan out across cores with deterministic
/// row order.
///
/// # Errors
///
/// Propagates pipeline and estimator errors.
pub fn fig5(
    workloads: &[Workload],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig5Row>, SerrError> {
    let mut points: Vec<(Workload, Arc<dyn VulnerabilityTrace>, f64)> = Vec::new();
    for &w in workloads {
        let trace = synthesized_trace(w, cfg)?;
        for &prod in n_times_s {
            points.push((w, trace.clone(), prod));
        }
    }
    let (threads, cfg) = fanout(cfg, points.len());
    let v = cfg.validator();
    par::par_map(&points, threads, |_, (w, trace, prod)| {
        let rate = RawErrorRate::baseline_per_bit().scale(*prod);
        let cv = v.component(trace, rate)?;
        Ok(Fig5Row {
            workload: w.label().to_owned(),
            n_times_s: *prod,
            avf: cv.avf,
            mttf_avf_years: cv.mttf_avf.as_years(),
            mttf_mc_years: cv.mttf_mc.mttf.as_years(),
            error: cv.avf_error_vs_mc,
            softarch_error: cv.softarch_error_vs_mc,
        })
    })
    .into_iter()
    .collect()
}

// ---------------------------------------------------------------------------
// Figure 6: the SOFR step across the broad design space.
// ---------------------------------------------------------------------------

/// One point of Figure 6 (either panel).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload or benchmark label.
    pub workload: String,
    /// Number of components (processors).
    pub c: u64,
    /// The `N × S` product per component.
    pub n_times_s: f64,
    /// SOFR-step system MTTF in years.
    pub mttf_sofr_years: f64,
    /// Monte Carlo system MTTF in years.
    pub mttf_mc_years: f64,
    /// SOFR-step error vs Monte Carlo.
    pub error: f64,
    /// SoftArch error vs Monte Carlo at the same point.
    pub softarch_error: f64,
}

/// Reproduces Figure 6(a): SOFR error for clusters of processors running
/// SPEC benchmarks.
///
/// Per-benchmark simulation runs serially; the `benchmark × C × N×S`
/// design points then fan out across cores with deterministic row order.
///
/// # Errors
///
/// Propagates pipeline and estimator errors.
pub fn fig6a(
    benchmarks: &[&str],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig6Row>, SerrError> {
    let mut points = Vec::new();
    for &name in benchmarks {
        let trace = spec_processor_trace(name, cfg)?;
        collect_fig6_points(&mut points, name, &trace, c_values, n_times_s);
    }
    fig6_rows(points, cfg)
}

/// Reproduces Figure 6(b): SOFR error for clusters running the synthesized
/// workloads. Design points fan out across cores like [`fig6a`].
///
/// # Errors
///
/// Propagates pipeline and estimator errors.
pub fn fig6b(
    workloads: &[Workload],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig6Row>, SerrError> {
    let mut points = Vec::new();
    for &w in workloads {
        let trace = synthesized_trace(w, cfg)?;
        collect_fig6_points(&mut points, w.label(), &trace, c_values, n_times_s);
    }
    fig6_rows(points, cfg)
}

/// One Figure 6 design point awaiting evaluation: `(label, trace, C, N×S)`.
type Fig6Point = (String, Arc<dyn VulnerabilityTrace>, u64, f64);

fn collect_fig6_points(
    points: &mut Vec<Fig6Point>,
    label: &str,
    trace: &Arc<dyn VulnerabilityTrace>,
    c_values: &[u64],
    n_times_s: &[f64],
) {
    for &c in c_values {
        for &prod in n_times_s {
            points.push((label.to_owned(), trace.clone(), c, prod));
        }
    }
}

fn fig6_rows(points: Vec<Fig6Point>, cfg: &ExperimentConfig) -> Result<Vec<Fig6Row>, SerrError> {
    let (threads, cfg) = fanout(cfg, points.len());
    let v = cfg.validator();
    par::par_map(&points, threads, |_, (label, trace, c, prod)| {
        let rate = RawErrorRate::baseline_per_bit().scale(*prod);
        let sv = v.system_identical(trace.clone(), rate, *c)?;
        Ok(Fig6Row {
            workload: label.clone(),
            c: *c,
            n_times_s: *prod,
            mttf_sofr_years: sv.mttf_sofr.as_years(),
            mttf_mc_years: sv.mttf_mc.mttf.as_years(),
            error: sv.sofr_error_vs_mc,
            softarch_error: sv.softarch_error_vs_mc,
        })
    })
    .into_iter()
    .collect()
}

// ---------------------------------------------------------------------------
// Section 5.4: SoftArch across the design space.
// ---------------------------------------------------------------------------

/// One point of the Section 5.4 sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sec54Row {
    /// Workload label.
    pub workload: String,
    /// Number of components.
    pub c: u64,
    /// The `N × S` product per component.
    pub n_times_s: f64,
    /// SoftArch error vs Monte Carlo.
    pub softarch_error: f64,
    /// SoftArch error vs the exact renewal answer (noise-free reference).
    pub softarch_error_vs_renewal: f64,
}

/// Reproduces Section 5.4: SoftArch versus Monte Carlo over the design
/// space. The paper reports "< 1% for a single component and less than 2%
/// for the full system".
///
/// # Errors
///
/// Propagates pipeline and estimator errors.
pub fn sec5_4(
    workloads: &[Workload],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Sec54Row>, SerrError> {
    let mut points = Vec::new();
    for &w in workloads {
        let trace = synthesized_trace(w, cfg)?;
        collect_fig6_points(&mut points, w.label(), &trace, c_values, n_times_s);
    }
    let (threads, cfg) = fanout(cfg, points.len());
    let v = cfg.validator();
    par::par_map(&points, threads, |_, (label, trace, c, prod)| {
        let rate = RawErrorRate::baseline_per_bit().scale(*prod);
        let sv = v.system_identical(trace.clone(), rate, *c)?;
        Ok(Sec54Row {
            workload: label.clone(),
            c: *c,
            n_times_s: *prod,
            softarch_error: sv.softarch_error_vs_mc,
            softarch_error_vs_renewal: serr_types::relative_error(
                sv.mttf_softarch.as_secs(),
                sv.mttf_renewal.as_secs(),
            ),
        })
    })
    .into_iter()
    .collect()
}

/// Helper: the length of one iteration of a workload's trace in wall-clock
/// time, for reports.
#[must_use]
pub fn trace_period(trace: &dyn VulnerabilityTrace, freq: Frequency) -> Seconds {
    Seconds::new(trace.period_cycles() as f64 / freq.hz())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.sim_instructions = 30_000;
        c.mc.trials = 15_000;
        c
    }

    #[test]
    fn sec5_1_matches_paper_for_one_benchmark() {
        let rows = sec5_1(&["gzip"], &cfg()).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // Paper: < 0.5% everywhere. MC noise at 15k trials is ~1.6% (95%),
        // so allow 3%; the renewal-referenced error in validate.rs tests
        // pins the methodology itself much tighter.
        assert!(row.max_component_error < 0.03, "{row:?}");
        assert!(row.sofr_error < 0.03, "{row:?}");
        assert!(row.ipc > 0.1);
        assert_eq!(row.components.len(), 4);
    }

    #[test]
    fn fig5_day_shows_error_growth_with_n_s() {
        let rows =
            fig5(&[Workload::Day], &[1e7, 1e11, 1e13], &cfg()).unwrap();
        assert_eq!(rows.len(), 3);
        // Small N×S: valid regime. Large N×S: the paper's up-to-90% regime.
        assert!(rows[0].error < 0.05, "small N×S: {}", rows[0].error);
        assert!(rows[2].error > 0.3, "large N×S: {}", rows[2].error);
        // SoftArch stays accurate everywhere (within MC noise).
        for r in &rows {
            assert!(r.softarch_error < 0.05, "{r:?}");
        }
        assert!((rows[0].avf - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fig6b_day_shows_error_growth_with_c() {
        let rows = fig6b(&[Workload::Day], &[2, 5_000], &[1e8], &cfg()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].error < 0.05, "C=2: {}", rows[0].error);
        // The paper reports ~11% at (N×S = 1e8, C = 5000); under this
        // workspace's start-at-busy-phase convention the discrepancy at the
        // same crossover point is much larger (~100%) — the crossover
        // location matches, the steepness depends on the (unstated) trial
        // start-phase convention. See EXPERIMENTS.md.
        assert!(rows[1].error > 0.3, "C=5000: {}", rows[1].error);
    }

    #[test]
    fn sec5_4_softarch_accurate_in_avf_breaking_regime() {
        let rows = sec5_4(&[Workload::Week], &[5_000], &[1e8], &cfg()).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].softarch_error_vs_renewal < 1e-5, "{:?}", rows[0]);
        assert!(rows[0].softarch_error < 0.05, "{:?}", rows[0]);
    }

    #[test]
    fn synthesized_traces_have_paper_periods() {
        let c = cfg();
        let day = synthesized_trace(Workload::Day, &c).unwrap();
        assert_eq!(
            trace_period(&day, c.frequency).as_hours().round() as u64,
            24
        );
        let week = synthesized_trace(Workload::Week, &c).unwrap();
        assert_eq!(trace_period(&week, c.frequency).as_days().round() as u64, 7);
        assert!(matches!(
            synthesized_trace(Workload::SpecInt, &c),
            Err(SerrError::InvalidConfig { .. })
        ));
    }
}
