//! Generators for every experimental table and figure in the paper's
//! evaluation (Sections 5.1–5.4). Each function returns the rows the paper
//! plots; the `serr-bench` binaries print them.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serr_mc::batched::BATCHED_RNG_SCHEDULE_VERSION;
use serr_mc::{MonteCarlo, MonteCarloConfig, MttfEstimate};
use serr_obs::Obs;
use serr_trace::{ConcatTrace, VulnerabilityTrace};
use serr_types::{Frequency, RawErrorRate, Seconds, SerrError};
use serr_workload::synthesized;

use crate::checkpoint::{self, JournalRow, SweepOptions, SweepReport};
use crate::design::Workload;
use crate::jsonio::Json;
use crate::par;
use crate::pipeline::{processor_trace, simulate_benchmark};
use crate::rates::UnitRates;
use crate::validate::Validator;

/// The three representative SPEC benchmarks used for Figure 6(a): one
/// compute-bound integer, one memory-bound integer, and one floating-point
/// program with pronounced compute/memory phases.
pub const REPRESENTATIVE_BENCHMARKS: [&str; 3] = ["gzip", "mcf", "equake"];

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Instructions of detailed simulation per benchmark. The paper uses
    /// 100M; masking statistics converge far earlier for the synthetic
    /// workloads (see DESIGN.md substitution 3).
    pub sim_instructions: u64,
    /// Workload-generator / simulation seed.
    pub seed: u64,
    /// Monte Carlo configuration.
    pub mc: MonteCarloConfig,
    /// Machine clock.
    pub frequency: Frequency,
}

impl ExperimentConfig {
    /// Fast settings for tests and smoke runs.
    #[must_use]
    pub fn quick() -> Self {
        ExperimentConfig {
            sim_instructions: 60_000,
            seed: 42,
            mc: MonteCarloConfig { trials: 20_000, ..Default::default() },
            frequency: Frequency::base(),
        }
    }

    /// Full settings for the reproduction runs reported in EXPERIMENTS.md.
    #[must_use]
    pub fn full() -> Self {
        ExperimentConfig {
            sim_instructions: 1_000_000,
            seed: 42,
            mc: MonteCarloConfig { trials: 200_000, ..Default::default() },
            frequency: Frequency::base(),
        }
    }

    /// The interactive front-end configuration, shared by the `serr` CLI
    /// and the `serr serve` daemon: [`Self::quick`]'s seed and trial count
    /// with longer simulations (300k instructions) so `spec:` workloads
    /// develop realistic phase structure. The two front ends **must** build
    /// traces from the same config — the service's bit-parity contract with
    /// the batch CLI depends on it — so neither is allowed its own copy of
    /// these numbers.
    #[must_use]
    pub fn cli() -> Self {
        ExperimentConfig { sim_instructions: 300_000, ..Self::quick() }
    }

    /// Paper-scale trace lengths: 8M instructions of detailed simulation
    /// per benchmark (the paper uses 100M). At this length the SPEC
    /// program-phase windows are long enough for the Figure 6(a) corner
    /// discrepancies to appear; unit traces are transparently coarsened to
    /// keep queries fast (AVF preserved exactly).
    #[must_use]
    pub fn paper_scale() -> Self {
        ExperimentConfig { sim_instructions: 8_000_000, ..Self::full() }
    }

    fn validator(&self) -> Validator {
        Validator::new(self.frequency, self.mc)
    }
}

/// Picks the fan-out width for `jobs` independent design points, along with
/// the per-job configuration. When more than one job runs at once, the
/// inner Monte Carlo is pinned to a single thread so a sweep uses one core
/// per design point instead of oversubscribing `jobs × cores`. The engine's
/// chunk-based RNG makes estimates bit-identical at every thread count, so
/// the pinning cannot change any row — only how the same work is scheduled.
fn fanout(cfg: &ExperimentConfig, jobs: usize) -> (usize, ExperimentConfig) {
    let threads = par::fanout_threads(jobs);
    let mut inner = *cfg;
    if threads > 1 {
        inner.mc.threads = 1;
    }
    (threads, inner)
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig::full()
    }
}

/// The checkpoint-journal fingerprint of a sweep: the sweep kind, the full
/// configuration, and every design-point coordinate. Any change to any of
/// them lands in a different journal file, so a resumed run can never mix
/// rows computed under different settings.
///
/// `mc.threads` is canonicalised to zero first: the engine's chunked RNG
/// makes every estimate bit-identical at any thread count, so a journal
/// written on an 8-core box must resume cleanly on a 64-core one.
fn sweep_fingerprint(kind: &str, cfg: &ExperimentConfig, coords: &[String]) -> u64 {
    let mut canon = *cfg;
    canon.mc.threads = 0;
    let cfg_str = format!("{canon:?}");
    // The RNG schedule version joins the fingerprint only once it moves off
    // v1. The shared-stream sweep kernel consumes the v1 word schedule
    // exactly like the independent per-point path did, so rows journaled by
    // either are bit-identical and legacy journals stay resumable; a future
    // schedule bump changes the sampled bits themselves and must send
    // resumed runs to a fresh journal.
    let schedule = format!("rng-schedule-v{BATCHED_RNG_SCHEDULE_VERSION}");
    let mut parts: Vec<&str> = Vec::with_capacity(3 + coords.len());
    parts.push(kind);
    parts.push(&cfg_str);
    if BATCHED_RNG_SCHEDULE_VERSION != 1 {
        parts.push(&schedule);
    }
    parts.extend(coords.iter().map(String::as_str));
    checkpoint::fingerprint(&parts)
}

/// Runs the shared-stream Monte Carlo kernel
/// ([`MonteCarlo::component_mttf_multi`]) over the still-pending design
/// points of a sweep, one kernel invocation per distinct trace.
///
/// Groups form by `Arc` identity: every point built on the same shared
/// trace — a workload's, or one protection transform of it — lands in one
/// group whose trace is compiled once and whose RNG/log passes are paid
/// once per chunk for all of its rates (the Fig 6 c-axis rides along
/// because `c` identical components superpose to a `c·λ` rate over the
/// same trace). Returns each point's ground-truth estimate indexed by
/// point position: `None` for points the journal already restored,
/// `Some(Err)` when the point — or its whole group — failed, so a
/// corrupted shared trace degrades every dependent point rather than any
/// of them reporting clean.
fn shared_mc_estimates(
    cfg: &ExperimentConfig,
    obs: Option<&Obs>,
    traces: &[Arc<dyn VulnerabilityTrace>],
    rates: &[RawErrorRate],
    pending: &[usize],
) -> Vec<Option<Result<MttfEstimate, SerrError>>> {
    let mut mc = MonteCarlo::new(cfg.mc);
    if let Some(o) = obs {
        mc = mc.with_observer(o.clone());
    }
    let mut groups: Vec<(Arc<dyn VulnerabilityTrace>, Vec<usize>)> = Vec::new();
    for &i in pending {
        match groups.iter_mut().find(|(t, _)| Arc::ptr_eq(t, &traces[i])) {
            Some((_, members)) => members.push(i),
            None => groups.push((traces[i].clone(), vec![i])),
        }
    }
    let mut out: Vec<Option<Result<MttfEstimate, SerrError>>> = Vec::with_capacity(traces.len());
    out.resize_with(traces.len(), || None);
    for (trace, members) in groups {
        let group_rates: Vec<RawErrorRate> = members.iter().map(|&i| rates[i]).collect();
        match mc.component_mttf_multi(&*trace, &group_rates, cfg.frequency) {
            Ok(results) => {
                for (&i, res) in members.iter().zip(results) {
                    out[i] = Some(res);
                }
            }
            // A group-level fault (bad shared trace, exhausted deadline,
            // engine fault in a shared chunk) fails every dependent point.
            Err(e) => {
                for &i in &members {
                    out[i] = Some(Err(e.clone()));
                }
            }
        }
    }
    out
}

/// Pulls one design point's estimate out of [`shared_mc_estimates`]'s
/// output inside a sweep's `eval`.
fn prepared_estimate(
    prepared: &[Option<Result<MttfEstimate, SerrError>>],
    i: usize,
) -> Result<MttfEstimate, SerrError> {
    match prepared.get(i).and_then(Option::as_ref) {
        Some(Ok(est)) => Ok(*est),
        Some(Err(e)) => Err(e.clone()),
        // Unreachable by construction: `prepare` covers every pending
        // index and `eval` only runs on pending points.
        None => Err(SerrError::invalid_config(
            "design point was not prepared by the shared sweep kernel",
        )),
    }
}

/// Builds a synthesized workload's component-level masking trace.
///
/// For `day`/`week` these are the paper's duty-cycle loops; `combined`
/// tiles two simulated benchmarks (gzip, swim) for 12 hours each.
///
/// # Errors
///
/// Propagates simulation/trace construction errors.
pub fn synthesized_trace(
    workload: Workload,
    cfg: &ExperimentConfig,
) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
    match workload {
        Workload::Day => Ok(Arc::new(synthesized::day(cfg.frequency))),
        Workload::Week => Ok(Arc::new(synthesized::week(cfg.frequency))),
        Workload::Combined => Ok(Arc::new(combined_trace(cfg)?)),
        Workload::SpecInt | Workload::SpecFp => Err(SerrError::invalid_config(
            "SPEC workloads use per-benchmark traces; call spec_processor_trace",
        )),
    }
}

/// The `combined` workload: gzip then swim, 12 simulated hours each.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn combined_trace(cfg: &ExperimentConfig) -> Result<ConcatTrace, SerrError> {
    let rates = UnitRates::paper();
    let a = simulate_benchmark("gzip", cfg.sim_instructions, cfg.seed)?;
    let b = simulate_benchmark("swim", cfg.sim_instructions, cfg.seed)?;
    synthesized::combined(
        Arc::new(processor_trace(&a, &rates)?),
        Arc::new(processor_trace(&b, &rates)?),
        cfg.frequency,
    )
}

/// The processor-level masking trace of one SPEC benchmark.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn spec_processor_trace(
    benchmark: &str,
    cfg: &ExperimentConfig,
) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
    let run = simulate_benchmark(benchmark, cfg.sim_instructions, cfg.seed)?;
    let cycles = run.output.stats.cycles;
    // Long simulations produce multi-million-segment unit traces; aggregate
    // to ≤ ~2¹⁷ windows (AVF exact, cumulative drift ≤ one window — far
    // below the cycle scales any Table 2 rate can resolve).
    if cycles > 16_777_216 {
        let window = cycles / 131_072;
        let rates = UnitRates::paper();
        let t = &run.output.traces;
        let parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)> = vec![
            (rates.int_unit.per_second_value(), Arc::new(t.int_unit.coarsen(window)?) as _),
            (rates.fp_unit.per_second_value(), Arc::new(t.fp_unit.coarsen(window)?) as _),
            (rates.decode.per_second_value(), Arc::new(t.decode.coarsen(window)?) as _),
        ];
        return Ok(Arc::new(serr_trace::CompositeTrace::new(parts)?));
    }
    Ok(Arc::new(processor_trace(&run, &UnitRates::paper())?))
}

// ---------------------------------------------------------------------------
// Section 5.1: today's uniprocessors running SPEC.
// ---------------------------------------------------------------------------

/// One benchmark's row of the Section 5.1 result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec51Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Per-component `(name, AVF, AVF-step error vs Monte Carlo)`.
    pub components: Vec<(String, f64, f64)>,
    /// Worst per-component AVF-step error.
    pub max_component_error: f64,
    /// Worst per-component AVF-step error vs the exact renewal reference
    /// (free of Monte-Carlo sampling noise).
    pub max_component_error_exact: f64,
    /// Processor-level SOFR error vs Monte Carlo.
    pub sofr_error: f64,
    /// Processor-level SOFR error vs the exact renewal reference.
    pub sofr_error_exact: f64,
    /// Simulated IPC (sanity signal for the substrate).
    pub ipc: f64,
}

impl JournalRow for Sec51Row {
    fn to_journal(&self) -> Json {
        let components = self
            .components
            .iter()
            .map(|(name, avf, err)| {
                Json::Arr(vec![Json::Str(name.clone()), Json::Num(*avf), Json::Num(*err)])
            })
            .collect();
        Json::Obj(vec![
            ("benchmark".to_owned(), Json::Str(self.benchmark.clone())),
            ("components".to_owned(), Json::Arr(components)),
            ("max_component_error".to_owned(), Json::Num(self.max_component_error)),
            ("max_component_error_exact".to_owned(), Json::Num(self.max_component_error_exact)),
            ("sofr_error".to_owned(), Json::Num(self.sofr_error)),
            ("sofr_error_exact".to_owned(), Json::Num(self.sofr_error_exact)),
            ("ipc".to_owned(), Json::Num(self.ipc)),
        ])
    }

    fn from_journal(v: &Json) -> Option<Self> {
        let mut components = Vec::new();
        for entry in v.get("components")?.as_array()? {
            let triple = entry.as_array()?;
            if triple.len() != 3 {
                return None;
            }
            components.push((
                triple[0].as_str()?.to_owned(),
                triple[1].as_f64()?,
                triple[2].as_f64()?,
            ));
        }
        Some(Sec51Row {
            benchmark: v.get("benchmark")?.as_str()?.to_owned(),
            components,
            max_component_error: v.get("max_component_error")?.as_f64()?,
            max_component_error_exact: v.get("max_component_error_exact")?.as_f64()?,
            sofr_error: v.get("sofr_error")?.as_f64()?,
            sofr_error_exact: v.get("sofr_error_exact")?.as_f64()?,
            ipc: v.get("ipc")?.as_f64()?,
        })
    }
}

/// Reproduces Section 5.1: for each benchmark, the AVF step per component
/// and the SOFR step across the four components of one processor, all
/// versus Monte Carlo. The paper reports "< 0.5% discrepancy for all cases".
///
/// Benchmarks fan out across cores ([`par::par_map`]); row order follows
/// the input order and every row is bit-identical to a serial run.
///
/// # Errors
///
/// Fails on the first failed benchmark, in input order. Use [`sec5_1_sweep`]
/// to keep the healthy rows (and to checkpoint).
pub fn sec5_1(benchmarks: &[&str], cfg: &ExperimentConfig) -> Result<Vec<Sec51Row>, SerrError> {
    sec5_1_sweep(benchmarks, cfg, &SweepOptions::off())?.into_result()
}

/// Fault-tolerant, checkpointable variant of [`sec5_1`]: a panicking or
/// failing benchmark is reported in [`SweepReport::failures`] while every
/// other row survives, and with checkpointing on, finished benchmarks are
/// journaled so a killed run resumes without recomputing them.
///
/// # Errors
///
/// [`SerrError::JournalLocked`] when another live process holds this
/// sweep's checkpoint journal.
pub fn sec5_1_sweep(
    benchmarks: &[&str],
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepReport<Sec51Row>, SerrError> {
    let coords: Vec<String> = benchmarks.iter().map(|&b| b.to_owned()).collect();
    let fp = sweep_fingerprint("sec5_1", cfg, &coords);
    let (threads, cfg) = fanout(cfg, benchmarks.len());
    checkpoint::run_sweep("sec5_1", fp, benchmarks, threads, opts, |_, &name| {
        sec5_1_row(name, &cfg)
    })
}

fn sec5_1_row(name: &str, cfg: &ExperimentConfig) -> Result<Sec51Row, SerrError> {
    let rates = UnitRates::paper();
    let v = cfg.validator();
    let run = simulate_benchmark(name, cfg.sim_instructions, cfg.seed)?;
    let t = &run.output.traces;
    let units: [(&str, RawErrorRate, Arc<dyn VulnerabilityTrace>); 4] = [
        ("int", rates.int_unit, Arc::new(t.int_unit.clone())),
        ("fp", rates.fp_unit, Arc::new(t.fp_unit.clone())),
        ("decode", rates.decode, Arc::new(t.decode.clone())),
        ("regfile", rates.regfile, Arc::new(t.regfile.clone())),
    ];
    let mut components = Vec::new();
    let mut max_err = 0.0f64;
    let mut max_err_exact = 0.0f64;
    for (unit, rate, trace) in &units {
        if trace.is_never_vulnerable() {
            // FP units on integer benchmarks never fail; the AVF step
            // and the first-principles methods agree trivially.
            components.push(((*unit).to_owned(), 0.0, 0.0));
            continue;
        }
        let cv = v.component(trace, *rate)?;
        components.push(((*unit).to_owned(), cv.avf, cv.avf_error_vs_mc));
        max_err = max_err.max(cv.avf_error_vs_mc);
        max_err_exact = max_err_exact.max(cv.avf_error_vs_renewal);
    }
    let parts: Vec<(RawErrorRate, Arc<dyn VulnerabilityTrace>)> =
        units.iter().map(|(_, r, t)| (*r, t.clone())).collect();
    let sv = v.system_parts(&parts)?;
    Ok(Sec51Row {
        benchmark: name.to_owned(),
        components,
        max_component_error: max_err,
        max_component_error_exact: max_err_exact,
        sofr_error: sv.sofr_error_vs_mc,
        sofr_error_exact: sv.sofr_error_vs_renewal,
        ipc: run.output.stats.ipc(),
    })
}

// ---------------------------------------------------------------------------
// Figure 5: the AVF step across the broad design space.
// ---------------------------------------------------------------------------

/// One point of Figure 5.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig5Row {
    /// Workload label.
    pub workload: String,
    /// The `N × S` product.
    pub n_times_s: f64,
    /// The component's AVF.
    pub avf: f64,
    /// AVF-step MTTF in years.
    pub mttf_avf_years: f64,
    /// Monte Carlo MTTF in years.
    pub mttf_mc_years: f64,
    /// AVF-step error vs Monte Carlo.
    pub error: f64,
    /// SoftArch error vs Monte Carlo at the same point (Section 5.4 data).
    pub softarch_error: f64,
}

impl JournalRow for Fig5Row {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("workload".to_owned(), Json::Str(self.workload.clone())),
            ("n_times_s".to_owned(), Json::Num(self.n_times_s)),
            ("avf".to_owned(), Json::Num(self.avf)),
            ("mttf_avf_years".to_owned(), Json::Num(self.mttf_avf_years)),
            ("mttf_mc_years".to_owned(), Json::Num(self.mttf_mc_years)),
            ("error".to_owned(), Json::Num(self.error)),
            ("softarch_error".to_owned(), Json::Num(self.softarch_error)),
        ])
    }

    fn from_journal(v: &Json) -> Option<Self> {
        Some(Fig5Row {
            workload: v.get("workload")?.as_str()?.to_owned(),
            n_times_s: v.get("n_times_s")?.as_f64()?,
            avf: v.get("avf")?.as_f64()?,
            mttf_avf_years: v.get("mttf_avf_years")?.as_f64()?,
            mttf_mc_years: v.get("mttf_mc_years")?.as_f64()?,
            error: v.get("error")?.as_f64()?,
            softarch_error: v.get("softarch_error")?.as_f64()?,
        })
    }
}

/// Reproduces Figure 5: AVF-step error for the synthesized workloads at
/// representative `N×S` values (C = 1 throughout).
///
/// Traces are built serially (once per workload), then the
/// `workload × N×S` design points fan out across cores with deterministic
/// row order.
///
/// # Errors
///
/// Propagates trace-construction errors, then fails on the first failed
/// design point in input order. Use [`fig5_sweep`] to keep healthy rows.
pub fn fig5(
    workloads: &[Workload],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig5Row>, SerrError> {
    fig5_sweep(workloads, n_times_s, cfg, &SweepOptions::off())?.into_result()
}

/// Fault-tolerant, checkpointable variant of [`fig5`].
///
/// # Errors
///
/// Only trace construction (shared by all points of a workload) and a
/// checkpoint journal held by another live process
/// ([`SerrError::JournalLocked`]) abort the sweep; per-point panics and
/// errors land in [`SweepReport::failures`].
pub fn fig5_sweep(
    workloads: &[Workload],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepReport<Fig5Row>, SerrError> {
    let mut points: Vec<(Workload, Arc<dyn VulnerabilityTrace>, f64)> = Vec::new();
    for &w in workloads {
        let trace = synthesized_trace(w, cfg)?;
        for &prod in n_times_s {
            points.push((w, trace.clone(), prod));
        }
    }
    let coords: Vec<String> =
        points.iter().map(|(w, _, prod)| format!("{}@{prod:?}", w.label())).collect();
    let fp = sweep_fingerprint("fig5", cfg, &coords);
    let (threads, inner) = fanout(cfg, points.len());
    let v = match &opts.obs {
        Some(o) => inner.validator().with_observer(o.clone()),
        None => inner.validator(),
    };
    // One shared-stream kernel run per workload trace covers every pending
    // N×S point of that workload (λ-axis CRN reuse); the per-point eval
    // only runs the cheap analytic estimators. The kernel itself keeps the
    // caller's thread budget — the per-point pinning in `fanout` applies to
    // the analytics fan-out, not to it.
    let traces: Vec<Arc<dyn VulnerabilityTrace>> =
        points.iter().map(|(_, t, _)| t.clone()).collect();
    let rates: Vec<RawErrorRate> =
        points.iter().map(|(_, _, prod)| RawErrorRate::baseline_per_bit().scale(*prod)).collect();
    checkpoint::run_sweep_prepared(
        "fig5",
        fp,
        &points,
        threads,
        opts,
        |pending| shared_mc_estimates(cfg, opts.obs.as_ref(), &traces, &rates, pending),
        |i, (w, trace, prod), prepared| {
            let cv = v.component_with_mc(trace, rates[i], prepared_estimate(prepared, i)?)?;
            Ok(Fig5Row {
                workload: w.label().to_owned(),
                n_times_s: *prod,
                avf: cv.avf,
                mttf_avf_years: cv.mttf_avf.as_years(),
                mttf_mc_years: cv.mttf_mc.mttf.as_years(),
                error: cv.avf_error_vs_mc,
                softarch_error: cv.softarch_error_vs_mc,
            })
        },
    )
}

// ---------------------------------------------------------------------------
// Figure 6: the SOFR step across the broad design space.
// ---------------------------------------------------------------------------

/// One point of Figure 6 (either panel).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig6Row {
    /// Workload or benchmark label.
    pub workload: String,
    /// Number of components (processors).
    pub c: u64,
    /// The `N × S` product per component.
    pub n_times_s: f64,
    /// SOFR-step system MTTF in years.
    pub mttf_sofr_years: f64,
    /// Monte Carlo system MTTF in years.
    pub mttf_mc_years: f64,
    /// SOFR-step error vs Monte Carlo.
    pub error: f64,
    /// SoftArch error vs Monte Carlo at the same point.
    pub softarch_error: f64,
}

impl JournalRow for Fig6Row {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("workload".to_owned(), Json::Str(self.workload.clone())),
            ("c".to_owned(), Json::Num(self.c as f64)),
            ("n_times_s".to_owned(), Json::Num(self.n_times_s)),
            ("mttf_sofr_years".to_owned(), Json::Num(self.mttf_sofr_years)),
            ("mttf_mc_years".to_owned(), Json::Num(self.mttf_mc_years)),
            ("error".to_owned(), Json::Num(self.error)),
            ("softarch_error".to_owned(), Json::Num(self.softarch_error)),
        ])
    }

    fn from_journal(v: &Json) -> Option<Self> {
        Some(Fig6Row {
            workload: v.get("workload")?.as_str()?.to_owned(),
            c: v.get("c")?.as_u64()?,
            n_times_s: v.get("n_times_s")?.as_f64()?,
            mttf_sofr_years: v.get("mttf_sofr_years")?.as_f64()?,
            mttf_mc_years: v.get("mttf_mc_years")?.as_f64()?,
            error: v.get("error")?.as_f64()?,
            softarch_error: v.get("softarch_error")?.as_f64()?,
        })
    }
}

/// Reproduces Figure 6(a): SOFR error for clusters of processors running
/// SPEC benchmarks.
///
/// Per-benchmark simulation runs serially; the `benchmark × C × N×S`
/// design points then fan out across cores with deterministic row order.
///
/// # Errors
///
/// Propagates trace-construction errors, then fails on the first failed
/// design point in input order. Use [`fig6a_sweep`] to keep healthy rows.
pub fn fig6a(
    benchmarks: &[&str],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig6Row>, SerrError> {
    fig6a_sweep(benchmarks, c_values, n_times_s, cfg, &SweepOptions::off())?.into_result()
}

/// Fault-tolerant, checkpointable variant of [`fig6a`].
///
/// # Errors
///
/// Only benchmark simulation / trace construction and a held checkpoint
/// journal ([`SerrError::JournalLocked`]) abort the sweep; per-point panics
/// and errors land in [`SweepReport::failures`].
pub fn fig6a_sweep(
    benchmarks: &[&str],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepReport<Fig6Row>, SerrError> {
    let mut points = Vec::new();
    for &name in benchmarks {
        let trace = spec_processor_trace(name, cfg)?;
        collect_fig6_points(&mut points, name, &trace, c_values, n_times_s);
    }
    fig6_rows_sweep("fig6a", points, cfg, opts)
}

/// Reproduces Figure 6(b): SOFR error for clusters running the synthesized
/// workloads. Design points fan out across cores like [`fig6a`].
///
/// # Errors
///
/// Propagates trace-construction errors, then fails on the first failed
/// design point in input order. Use [`fig6b_sweep`] to keep healthy rows.
pub fn fig6b(
    workloads: &[Workload],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Fig6Row>, SerrError> {
    fig6b_sweep(workloads, c_values, n_times_s, cfg, &SweepOptions::off())?.into_result()
}

/// Fault-tolerant, checkpointable variant of [`fig6b`].
///
/// # Errors
///
/// Only trace construction and a held checkpoint journal
/// ([`SerrError::JournalLocked`]) abort the sweep; per-point panics and
/// errors land in [`SweepReport::failures`].
pub fn fig6b_sweep(
    workloads: &[Workload],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepReport<Fig6Row>, SerrError> {
    let mut points = Vec::new();
    for &w in workloads {
        let trace = synthesized_trace(w, cfg)?;
        collect_fig6_points(&mut points, w.label(), &trace, c_values, n_times_s);
    }
    fig6_rows_sweep("fig6b", points, cfg, opts)
}

/// One Figure 6 design point awaiting evaluation: `(label, trace, C, N×S)`.
type Fig6Point = (String, Arc<dyn VulnerabilityTrace>, u64, f64);

fn collect_fig6_points(
    points: &mut Vec<Fig6Point>,
    label: &str,
    trace: &Arc<dyn VulnerabilityTrace>,
    c_values: &[u64],
    n_times_s: &[f64],
) {
    for &c in c_values {
        for &prod in n_times_s {
            points.push((label.to_owned(), trace.clone(), c, prod));
        }
    }
}

/// The Figure 6 design-point coordinate string used for journal
/// fingerprints: label, cluster size, and `N×S` (exact `{:?}` float form).
fn fig6_point_coords(points: &[Fig6Point]) -> Vec<String> {
    points.iter().map(|(label, _, c, prod)| format!("{label}@{c}@{prod:?}")).collect()
}

fn fig6_rows_sweep(
    kind: &str,
    points: Vec<Fig6Point>,
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepReport<Fig6Row>, SerrError> {
    let fp = sweep_fingerprint(kind, cfg, &fig6_point_coords(&points));
    let (threads, inner) = fanout(cfg, points.len());
    let v = match &opts.obs {
        Some(o) => inner.validator().with_observer(o.clone()),
        None => inner.validator(),
    };
    // The Fig 6 grid reuses one shared-stream kernel run per trace across
    // its whole `C × N×S` plane: identical phase-aligned components
    // superpose to a single process at `c·λ`, so every cell is one rate of
    // a λ-sweep over the shared trace (see `serr_mc::sweep`).
    let traces: Vec<Arc<dyn VulnerabilityTrace>> =
        points.iter().map(|(_, t, _, _)| t.clone()).collect();
    let component_rates: Vec<RawErrorRate> = points
        .iter()
        .map(|(_, _, _, prod)| RawErrorRate::baseline_per_bit().scale(*prod))
        .collect();
    let system_rates: Vec<RawErrorRate> = points
        .iter()
        .zip(&component_rates)
        .map(|((_, _, c, _), rate)| rate.scale(*c as f64))
        .collect();
    checkpoint::run_sweep_prepared(
        kind,
        fp,
        &points,
        threads,
        opts,
        |pending| shared_mc_estimates(cfg, opts.obs.as_ref(), &traces, &system_rates, pending),
        |i, (label, trace, c, prod), prepared| {
            if *c == 0 {
                return Err(SerrError::invalid_config("system must have at least one component"));
            }
            let est = prepared_estimate(prepared, i)?;
            let sv = v.system_identical_with_mc(&**trace, component_rates[i], *c, est)?;
            Ok(Fig6Row {
                workload: label.clone(),
                c: *c,
                n_times_s: *prod,
                mttf_sofr_years: sv.mttf_sofr.as_years(),
                mttf_mc_years: sv.mttf_mc.mttf.as_years(),
                error: sv.sofr_error_vs_mc,
                softarch_error: sv.softarch_error_vs_mc,
            })
        },
    )
}

// ---------------------------------------------------------------------------
// Section 5.4: SoftArch across the design space.
// ---------------------------------------------------------------------------

/// One point of the Section 5.4 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sec54Row {
    /// Workload label.
    pub workload: String,
    /// Number of components.
    pub c: u64,
    /// The `N × S` product per component.
    pub n_times_s: f64,
    /// SoftArch error vs Monte Carlo.
    pub softarch_error: f64,
    /// SoftArch error vs the exact renewal answer (noise-free reference).
    pub softarch_error_vs_renewal: f64,
}

impl JournalRow for Sec54Row {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("workload".to_owned(), Json::Str(self.workload.clone())),
            ("c".to_owned(), Json::Num(self.c as f64)),
            ("n_times_s".to_owned(), Json::Num(self.n_times_s)),
            ("softarch_error".to_owned(), Json::Num(self.softarch_error)),
            ("softarch_error_vs_renewal".to_owned(), Json::Num(self.softarch_error_vs_renewal)),
        ])
    }

    fn from_journal(v: &Json) -> Option<Self> {
        Some(Sec54Row {
            workload: v.get("workload")?.as_str()?.to_owned(),
            c: v.get("c")?.as_u64()?,
            n_times_s: v.get("n_times_s")?.as_f64()?,
            softarch_error: v.get("softarch_error")?.as_f64()?,
            softarch_error_vs_renewal: v.get("softarch_error_vs_renewal")?.as_f64()?,
        })
    }
}

/// Reproduces Section 5.4: SoftArch versus Monte Carlo over the design
/// space. The paper reports "< 1% for a single component and less than 2%
/// for the full system".
///
/// # Errors
///
/// Propagates trace-construction errors, then fails on the first failed
/// design point in input order. Use [`sec5_4_sweep`] to keep healthy rows.
pub fn sec5_4(
    workloads: &[Workload],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
) -> Result<Vec<Sec54Row>, SerrError> {
    sec5_4_sweep(workloads, c_values, n_times_s, cfg, &SweepOptions::off())?.into_result()
}

/// Fault-tolerant, checkpointable variant of [`sec5_4`].
///
/// # Errors
///
/// Only trace construction and a held checkpoint journal
/// ([`SerrError::JournalLocked`]) abort the sweep; per-point panics and
/// errors land in [`SweepReport::failures`].
pub fn sec5_4_sweep(
    workloads: &[Workload],
    c_values: &[u64],
    n_times_s: &[f64],
    cfg: &ExperimentConfig,
    opts: &SweepOptions,
) -> Result<SweepReport<Sec54Row>, SerrError> {
    let mut points = Vec::new();
    for &w in workloads {
        let trace = synthesized_trace(w, cfg)?;
        collect_fig6_points(&mut points, w.label(), &trace, c_values, n_times_s);
    }
    let fp = sweep_fingerprint("sec5_4", cfg, &fig6_point_coords(&points));
    let (threads, inner) = fanout(cfg, points.len());
    let v = match &opts.obs {
        Some(o) => inner.validator().with_observer(o.clone()),
        None => inner.validator(),
    };
    let traces: Vec<Arc<dyn VulnerabilityTrace>> =
        points.iter().map(|(_, t, _, _)| t.clone()).collect();
    let component_rates: Vec<RawErrorRate> = points
        .iter()
        .map(|(_, _, _, prod)| RawErrorRate::baseline_per_bit().scale(*prod))
        .collect();
    let system_rates: Vec<RawErrorRate> = points
        .iter()
        .zip(&component_rates)
        .map(|((_, _, c, _), rate)| rate.scale(*c as f64))
        .collect();
    checkpoint::run_sweep_prepared(
        "sec5_4",
        fp,
        &points,
        threads,
        opts,
        |pending| shared_mc_estimates(cfg, opts.obs.as_ref(), &traces, &system_rates, pending),
        |i, (label, trace, c, prod), prepared| {
            if *c == 0 {
                return Err(SerrError::invalid_config("system must have at least one component"));
            }
            let est = prepared_estimate(prepared, i)?;
            let sv = v.system_identical_with_mc(&**trace, component_rates[i], *c, est)?;
            Ok(Sec54Row {
                workload: label.clone(),
                c: *c,
                n_times_s: *prod,
                softarch_error: sv.softarch_error_vs_mc,
                softarch_error_vs_renewal: serr_types::relative_error(
                    sv.mttf_softarch.as_secs(),
                    sv.mttf_renewal.as_secs(),
                ),
            })
        },
    )
}

/// Helper: the length of one iteration of a workload's trace in wall-clock
/// time, for reports.
#[must_use]
pub fn trace_period(trace: &dyn VulnerabilityTrace, freq: Frequency) -> Seconds {
    Seconds::new(trace.period_cycles() as f64 / freq.hz())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick();
        c.sim_instructions = 30_000;
        c.mc.trials = 15_000;
        c
    }

    #[test]
    fn sec5_1_matches_paper_for_one_benchmark() {
        let rows = sec5_1(&["gzip"], &cfg()).unwrap();
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        // Paper: < 0.5% everywhere. MC noise at 15k trials is ~1.6% (95%),
        // so allow 3%; the renewal-referenced error in validate.rs tests
        // pins the methodology itself much tighter.
        assert!(row.max_component_error < 0.03, "{row:?}");
        assert!(row.sofr_error < 0.03, "{row:?}");
        assert!(row.ipc > 0.1);
        assert_eq!(row.components.len(), 4);
    }

    #[test]
    fn fig5_day_shows_error_growth_with_n_s() {
        let rows = fig5(&[Workload::Day], &[1e7, 1e11, 1e13], &cfg()).unwrap();
        assert_eq!(rows.len(), 3);
        // Small N×S: valid regime. Large N×S: the paper's up-to-90% regime.
        assert!(rows[0].error < 0.05, "small N×S: {}", rows[0].error);
        assert!(rows[2].error > 0.3, "large N×S: {}", rows[2].error);
        // SoftArch stays accurate everywhere (within MC noise).
        for r in &rows {
            assert!(r.softarch_error < 0.05, "{r:?}");
        }
        assert!((rows[0].avf - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fig6b_day_shows_error_growth_with_c() {
        let rows = fig6b(&[Workload::Day], &[2, 5_000], &[1e8], &cfg()).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].error < 0.05, "C=2: {}", rows[0].error);
        // The paper reports ~11% at (N×S = 1e8, C = 5000); under this
        // workspace's start-at-busy-phase convention the discrepancy at the
        // same crossover point is much larger (~100%) — the crossover
        // location matches, the steepness depends on the (unstated) trial
        // start-phase convention. See EXPERIMENTS.md.
        assert!(rows[1].error > 0.3, "C=5000: {}", rows[1].error);
    }

    #[test]
    fn sec5_4_softarch_accurate_in_avf_breaking_regime() {
        let rows = sec5_4(&[Workload::Week], &[5_000], &[1e8], &cfg()).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(rows[0].softarch_error_vs_renewal < 1e-5, "{:?}", rows[0]);
        assert!(rows[0].softarch_error < 0.05, "{:?}", rows[0]);
    }

    /// Round-trips each row type through its journal encoding and checks
    /// bit-identity (PartialEq on f64 is exact for the finite values used).
    #[test]
    fn all_row_types_roundtrip_through_the_journal() {
        let sec51 = Sec51Row {
            benchmark: "gzip".to_owned(),
            components: vec![
                ("int".to_owned(), 0.3125, 0.001_953_125), // exact binary fractions
                ("fp".to_owned(), 0.1 + 0.2, 1.0 / 3.0),   // awkward ones
            ],
            max_component_error: 0.017,
            max_component_error_exact: 3.2e-7,
            sofr_error: 0.004,
            sofr_error_exact: 1.1e-9,
            ipc: 1.37,
        };
        assert_eq!(Sec51Row::from_journal(&sec51.to_journal()).unwrap(), sec51);

        let fig5 = Fig5Row {
            workload: "day".to_owned(),
            n_times_s: 1e13,
            avf: 0.5,
            mttf_avf_years: 12.34,
            mttf_mc_years: 6.78,
            error: 0.9,
            softarch_error: 0.01,
        };
        assert_eq!(Fig5Row::from_journal(&fig5.to_journal()).unwrap(), fig5);

        let fig6 = Fig6Row {
            workload: "week".to_owned(),
            c: 5_000,
            n_times_s: 1e8,
            mttf_sofr_years: 1.0 / 7.0,
            mttf_mc_years: 0.1,
            error: 0.11,
            softarch_error: 0.02,
        };
        assert_eq!(Fig6Row::from_journal(&fig6.to_journal()).unwrap(), fig6);

        let sec54 = Sec54Row {
            workload: "combined".to_owned(),
            c: 2,
            n_times_s: 1e10,
            softarch_error: 0.015,
            softarch_error_vs_renewal: 2.5e-6,
        };
        assert_eq!(Sec54Row::from_journal(&sec54.to_journal()).unwrap(), sec54);

        // Schema mismatch (missing field) must decode to None, not garbage.
        assert!(Fig5Row::from_journal(&sec54.to_journal()).is_none());
    }

    /// The acceptance scenario at the experiments layer: a checkpointed
    /// sweep re-invoked after completing restores every row from the
    /// journal — zero recomputation — bit-identically.
    #[test]
    fn fig5_sweep_checkpoints_and_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("serr-fig5-resume-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = cfg();
        let points: &[f64] = &[1e7, 1e13];

        let first =
            fig5_sweep(&[Workload::Day], points, &c, &SweepOptions::fresh().in_dir(&dir)).unwrap();
        assert!(first.failures.is_empty());
        assert_eq!((first.computed, first.resumed), (2, 0));

        let second =
            fig5_sweep(&[Workload::Day], points, &c, &SweepOptions::resume().in_dir(&dir)).unwrap();
        assert!(second.failures.is_empty());
        assert_eq!((second.computed, second.resumed), (0, 2));
        assert_eq!(second.rows.len(), first.rows.len());
        for (a, b) in first.rows.iter().zip(&second.rows) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.mttf_mc_years.to_bits(), b.mttf_mc_years.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
            assert_eq!(a.softarch_error.to_bits(), b.softarch_error.to_bits());
        }

        // A different config must not resume from this journal.
        let mut other = c;
        other.mc.trials += 1;
        let third =
            fig5_sweep(&[Workload::Day], points, &other, &SweepOptions::resume().in_dir(&dir))
                .unwrap();
        assert_eq!((third.computed, third.resumed), (2, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A journal written by the pre-kernel per-point path — one independent
    /// Monte Carlo engine run per design point through
    /// [`Validator::component`] — must resume bit-identically under the
    /// shared-stream kernel: same sweep name, same fingerprint (the RNG
    /// schedule is still v1), same bits in every restored row, and the
    /// points the legacy run never reached compute on the kernel path to
    /// exactly the values the legacy path would have produced.
    #[test]
    fn legacy_per_point_journal_resumes_bit_identically_under_the_kernel() {
        let dir = std::env::temp_dir().join(format!("serr-fig5-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c = cfg();
        let n_points: &[f64] = &[1e7, 1e10, 1e13];

        // Rebuild exactly the design points and fingerprint `fig5_sweep`
        // derives, then journal a two-point prefix the way the old code
        // did — `run_sweep` with a per-point independent engine run —
        // simulating a legacy run interrupted before its last point.
        let trace = synthesized_trace(Workload::Day, &c).unwrap();
        let points: Vec<(Workload, Arc<dyn VulnerabilityTrace>, f64)> =
            n_points.iter().map(|&prod| (Workload::Day, trace.clone(), prod)).collect();
        let coords: Vec<String> =
            points.iter().map(|(w, _, prod)| format!("{}@{prod:?}", w.label())).collect();
        let fp = sweep_fingerprint("fig5", &c, &coords);
        let (threads, inner) = fanout(&c, points.len());
        let v = inner.validator();
        let legacy = checkpoint::run_sweep(
            "fig5",
            fp,
            &points[..2],
            threads,
            &SweepOptions::fresh().in_dir(&dir),
            |_, (w, trace, prod)| {
                let cv = v.component(&**trace, RawErrorRate::baseline_per_bit().scale(*prod))?;
                Ok(Fig5Row {
                    workload: w.label().to_owned(),
                    n_times_s: *prod,
                    avf: cv.avf,
                    mttf_avf_years: cv.mttf_avf.as_years(),
                    mttf_mc_years: cv.mttf_mc.mttf.as_years(),
                    error: cv.avf_error_vs_mc,
                    softarch_error: cv.softarch_error_vs_mc,
                })
            },
        )
        .unwrap();
        assert!(legacy.failures.is_empty());
        assert_eq!((legacy.computed, legacy.resumed), (2, 0));

        // Resume under the kernel: the legacy prefix restores from the
        // journal; only the third point runs, on the shared-stream path.
        let resumed =
            fig5_sweep(&[Workload::Day], n_points, &c, &SweepOptions::resume().in_dir(&dir))
                .unwrap();
        assert!(resumed.failures.is_empty());
        assert_eq!((resumed.computed, resumed.resumed), (1, 2));

        // Every row — legacy-restored or kernel-computed — is bit-identical
        // to an un-journaled kernel run of the whole sweep.
        let fresh = fig5(&[Workload::Day], n_points, &c).unwrap();
        assert_eq!(resumed.rows.len(), fresh.len());
        for (a, b) in resumed.rows.iter().zip(&fresh) {
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.n_times_s.to_bits(), b.n_times_s.to_bits());
            assert_eq!(a.avf.to_bits(), b.avf.to_bits());
            assert_eq!(a.mttf_avf_years.to_bits(), b.mttf_avf_years.to_bits());
            assert_eq!(a.mttf_mc_years.to_bits(), b.mttf_mc_years.to_bits());
            assert_eq!(a.error.to_bits(), b.error.to_bits());
            assert_eq!(a.softarch_error.to_bits(), b.softarch_error.to_bits());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn synthesized_traces_have_paper_periods() {
        let c = cfg();
        let day = synthesized_trace(Workload::Day, &c).unwrap();
        assert_eq!(trace_period(&day, c.frequency).as_hours().round() as u64, 24);
        let week = synthesized_trace(Workload::Week, &c).unwrap();
        assert_eq!(trace_period(&week, c.frequency).as_days().round() as u64, 7);
        assert!(matches!(
            synthesized_trace(Workload::SpecInt, &c),
            Err(SerrError::InvalidConfig { .. })
        ));
    }
}
