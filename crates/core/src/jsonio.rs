//! A minimal JSON value, writer, and parser for the checkpoint journal.
//!
//! The workspace is built offline with a deliberately small dependency set
//! (no `serde_json`), and the checkpoint journal (see [`crate::checkpoint`])
//! only needs flat rows of strings, numbers, booleans, and small arrays —
//! so this module hand-rolls the ~200 lines of JSON it needs rather than
//! pulling in a crate.
//!
//! # Float round-tripping
//!
//! Journal resume must reproduce **bit-identical** rows, so numbers are
//! written with Rust's shortest-round-trip `{:?}` formatting (guaranteed to
//! parse back to the same `f64`) and parsed with `str::parse::<f64>`. The
//! `float_roundtrip` proptest pins this contract.

use std::fmt::Write as _;

/// A parsed JSON value.
///
/// Numbers are kept as `f64`; the journal never stores integers outside the
/// exactly-representable `±2^53` range (indices, counts, element counts).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys keep the last value on
    /// lookup, like every mainstream parser).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document. Returns `None` on any syntax error or on
    /// trailing non-whitespace garbage — journal readers treat a malformed
    /// line (e.g. torn by a crash mid-append) as "not checkpointed".
    #[must_use]
    pub fn parse(text: &str) -> Option<Json> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos == p.bytes.len() {
            Some(v)
        } else {
            None
        }
    }

    /// Object field lookup (last occurrence wins); `None` for non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`, if it is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integral number small
    /// enough to be exact in an `f64`.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        ((0.0..=9_007_199_254_740_992.0).contains(&n) && n.fract() == 0.0).then_some(n as u64)
    }

    /// The value as a `usize`, via [`Json::as_u64`].
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the value (compact, no whitespace).
    ///
    /// # Panics
    ///
    /// Panics if a `Num` is NaN or infinite — JSON has no spelling for
    /// those, and journal rows are validated finite before encoding.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "JSON cannot represent {n}");
                // Shortest round-trip repr; `{:?}` guarantees parse-back
                // equality and emits valid JSON syntax for finite floats.
                let _ = write!(out, "{n:?}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Writes `s` as a quoted JSON string literal into `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting accepted by the parser. Journal lines nest two
/// or three deep; this cap just keeps hostile input from exhausting the
/// stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Option<Json> {
        if depth > MAX_DEPTH {
            return None;
        }
        self.skip_ws();
        match *self.bytes.get(self.pos)? {
            b'n' => self.eat_literal("null").then_some(Json::Null),
            b't' => self.eat_literal("true").then_some(Json::Bool(true)),
            b'f' => self.eat_literal("false").then_some(Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.eat(b']') {
                    return Some(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    if self.eat(b']') {
                        return Some(Json::Arr(items));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.eat(b'}') {
                    return Some(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    if !self.eat(b':') {
                        return None;
                    }
                    fields.push((key, self.value(depth + 1)?));
                    self.skip_ws();
                    if self.eat(b'}') {
                        return Some(Json::Obj(fields));
                    }
                    if !self.eat(b',') {
                        return None;
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Option<String> {
        if !self.eat(b'"') {
            return None;
        }
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Run of plain bytes up to the next quote or backslash.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).ok()?);
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    self.pos += 1;
                    return Some(out);
                }
                b'\\' => {
                    self.pos += 1;
                    match *self.bytes.get(self.pos)? {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require a low surrogate.
                                if !self.eat_literal("\\u") {
                                    return None;
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return None;
                                }
                                let cp = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(cp)?
                            } else {
                                char::from_u32(hi)?
                            };
                            out.push(c);
                            // hex4 leaves pos one past the escape already.
                            continue;
                        }
                        _ => return None,
                    }
                    self.pos += 1;
                }
                // Unescaped control byte: invalid JSON.
                _ => return None,
            }
        }
    }

    /// Reads exactly four hex digits at `pos`, advancing past them.
    fn hex4(&mut self) -> Option<u32> {
        let digits = self.bytes.get(self.pos..self.pos + 4)?;
        let s = std::str::from_utf8(digits).ok()?;
        let v = u32::from_str_radix(s, 16).ok()?;
        self.pos += 4;
        Some(v)
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        let _ = self.eat(b'-');
        let digits_start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return None;
        }
        if self.eat(b'.') {
            let frac_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return None;
            }
        }
        if self.eat(b'e') || self.eat(b'E') {
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            let exp_start = self.pos;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return None;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        let n: f64 = text.parse().ok()?;
        n.is_finite().then_some(Json::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null"), Some(Json::Null));
        assert_eq!(Json::parse(" true "), Some(Json::Bool(true)));
        assert_eq!(Json::parse("false"), Some(Json::Bool(false)));
        assert_eq!(Json::parse("-3.5e2"), Some(Json::Num(-350.0)));
        assert_eq!(Json::parse("0"), Some(Json::Num(0.0)));
        assert_eq!(Json::parse("\"hi\""), Some(Json::Str("hi".into())));
    }

    #[test]
    fn parses_nested_structures() {
        let v =
            Json::parse(r#"{"i":3,"row":{"name":"gzip","xs":[1,2.5,-3e-2],"ok":true}}"#).unwrap();
        assert_eq!(v.get("i").unwrap().as_usize(), Some(3));
        let row = v.get("row").unwrap();
        assert_eq!(row.get("name").unwrap().as_str(), Some("gzip"));
        assert_eq!(row.get("ok").unwrap().as_bool(), Some(true));
        let xs = row.get("xs").unwrap().as_array().unwrap();
        assert_eq!(xs.len(), 3);
        assert_eq!(xs[1].as_f64(), Some(2.5));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\":}",
            "tru",
            "nul",
            "1.2.3",
            "--1",
            "1e",
            "\"unterminated",
            "{\"a\":1} trailing",
            "[1 2]",
            "\"bad \\x escape\"",
            "nan",
            "Infinity",
            "01x",
            "{\"i\":5,\"row\":{\"v\":0.1", // a torn journal line
        ] {
            assert_eq!(Json::parse(bad), None, "accepted malformed input: {bad:?}");
        }
    }

    #[test]
    fn string_escapes_roundtrip() {
        let nasty = "quote\" back\\slash \nnewline \ttab \r\u{1}ctl \u{1F600} ünïcode";
        let encoded = Json::Str(nasty.to_owned()).to_json();
        assert_eq!(Json::parse(&encoded), Some(Json::Str(nasty.to_owned())));
    }

    #[test]
    fn parses_unicode_escapes_and_surrogate_pairs() {
        assert_eq!(Json::parse(r#""A""#), Some(Json::Str("A".into())));
        assert_eq!(Json::parse(r#""😀""#), Some(Json::Str("\u{1F600}".into())));
        // A lone high surrogate is invalid.
        assert_eq!(Json::parse(r#""\ud83d""#), None);
    }

    #[test]
    fn writer_emits_compact_documents() {
        let v = Json::Obj(vec![
            ("i".into(), Json::Num(7.0)),
            ("name".into(), Json::Str("mcf".into())),
            ("xs".into(), Json::Arr(vec![Json::Num(1.5), Json::Null, Json::Bool(false)])),
        ]);
        assert_eq!(v.to_json(), r#"{"i":7.0,"name":"mcf","xs":[1.5,null,false]}"#);
        assert_eq!(Json::parse(&v.to_json()), Some(v));
    }

    #[test]
    fn u64_accessor_guards_range_and_integrality() {
        assert_eq!(Json::Num(5.0).as_u64(), Some(5));
        assert_eq!(Json::Num(5.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
        assert_eq!(Json::Str("5".into()).as_u64(), None);
    }

    #[test]
    #[should_panic(expected = "JSON cannot represent")]
    fn writer_rejects_non_finite_numbers() {
        let _ = Json::Num(f64::NAN).to_json();
    }

    proptest! {
        /// The bit-identical resume contract: any finite f64 written by the
        /// journal parses back to exactly the same bits.
        #[test]
        fn float_roundtrip(bits in any::<u64>()) {
            let x = f64::from_bits(bits);
            prop_assume!(x.is_finite());
            let text = Json::Num(x).to_json();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            prop_assert_eq!(back.to_bits(), x.to_bits());
        }

        /// Arbitrary strings survive an encode/parse cycle.
        #[test]
        fn string_roundtrip(s in ".*") {
            let encoded = Json::Str(s.clone()).to_json();
            prop_assert_eq!(Json::parse(&encoded), Some(Json::Str(s)));
        }
    }
}
