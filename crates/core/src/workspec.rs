//! Textual workload specifications, shared by the CLI and the estimation
//! service.
//!
//! Both front ends accept the same `--workload` / `"workload"` strings and
//! must materialize **the same trace** for them — the service's bit-parity
//! contract with the batch CLI rests on there being exactly one spec
//! grammar and one trace-construction path. That path lives here, next to
//! the experiment generators it delegates to.

use std::sync::Arc;

use serr_trace::VulnerabilityTrace;
use serr_types::{Seconds, SerrError};

use crate::design::Workload;
use crate::experiments::{self, ExperimentConfig};

/// Which workload a command or request targets.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The 24-hour half-busy loop.
    Day,
    /// The 7-day business-week loop.
    Week,
    /// The gzip+swim 24-hour combined loop.
    Combined,
    /// A simulated SPEC-like benchmark by name.
    Spec(String),
    /// `duty:<period_seconds>:<busy_fraction>`.
    Duty {
        /// Loop period in seconds.
        period_s: f64,
        /// Fraction of the period that is busy.
        busy: f64,
    },
}

impl WorkloadSpec {
    /// Parses the `--workload` argument value.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::UnknownWorkload`] for unrecognized syntax.
    pub fn parse(s: &str) -> Result<Self, SerrError> {
        match s {
            "day" => return Ok(WorkloadSpec::Day),
            "week" => return Ok(WorkloadSpec::Week),
            "combined" => return Ok(WorkloadSpec::Combined),
            _ => {}
        }
        if let Some(name) = s.strip_prefix("spec:") {
            return Ok(WorkloadSpec::Spec(name.to_owned()));
        }
        if let Some(rest) = s.strip_prefix("duty:") {
            let mut it = rest.split(':');
            let period = it.next().and_then(|v| v.parse::<f64>().ok());
            let busy = it.next().and_then(|v| v.parse::<f64>().ok());
            if let (Some(period_s), Some(busy), None) = (period, busy, it.next()) {
                // Catch bad numerics at parse time with a message naming the
                // flag, instead of a trace-construction error much later.
                if !(period_s.is_finite() && period_s > 0.0) {
                    return Err(SerrError::invalid_config(format!(
                        "duty: period must be a positive finite number of seconds, \
                         got {period_s}"
                    )));
                }
                if !(busy > 0.0 && busy <= 1.0) {
                    return Err(SerrError::invalid_config(format!(
                        "duty: busy fraction must lie in (0, 1], got {busy}"
                    )));
                }
                return Ok(WorkloadSpec::Duty { period_s, busy });
            }
        }
        Err(SerrError::UnknownWorkload { name: s.to_owned() })
    }

    /// The canonical spelling of this spec: parses back to an equal value,
    /// and two equal specs always render identically. Used as a cache /
    /// journal fingerprint component, where `duty:1e3:0.5` and
    /// `duty:1000:0.5` must collide.
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            WorkloadSpec::Day => "day".to_owned(),
            WorkloadSpec::Week => "week".to_owned(),
            WorkloadSpec::Combined => "combined".to_owned(),
            WorkloadSpec::Spec(name) => format!("spec:{name}"),
            // `{:?}` is shortest-round-trip: exact and canonical per value.
            WorkloadSpec::Duty { period_s, busy } => format!("duty:{period_s:?}:{busy:?}"),
        }
    }

    /// Materializes the workload's vulnerability trace.
    ///
    /// # Errors
    ///
    /// Propagates workload construction and simulation errors.
    pub fn trace(&self, cfg: &ExperimentConfig) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
        match self {
            WorkloadSpec::Day => experiments::synthesized_trace(Workload::Day, cfg),
            WorkloadSpec::Week => experiments::synthesized_trace(Workload::Week, cfg),
            WorkloadSpec::Combined => experiments::synthesized_trace(Workload::Combined, cfg),
            WorkloadSpec::Spec(name) => experiments::spec_processor_trace(name, cfg),
            WorkloadSpec::Duty { period_s, busy } => {
                let t = serr_workload::synthesized::duty_cycle(
                    Seconds::new(*period_s),
                    *busy,
                    cfg.frequency,
                )?;
                Ok(Arc::new(t))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_parse() {
        assert_eq!(WorkloadSpec::parse("day").unwrap(), WorkloadSpec::Day);
        assert_eq!(WorkloadSpec::parse("week").unwrap(), WorkloadSpec::Week);
        assert_eq!(WorkloadSpec::parse("combined").unwrap(), WorkloadSpec::Combined);
        assert_eq!(WorkloadSpec::parse("spec:mcf").unwrap(), WorkloadSpec::Spec("mcf".into()));
        assert_eq!(
            WorkloadSpec::parse("duty:3600:0.25").unwrap(),
            WorkloadSpec::Duty { period_s: 3600.0, busy: 0.25 }
        );
        assert!(WorkloadSpec::parse("quake").is_err());
        assert!(WorkloadSpec::parse("duty:1:2:3").is_err());
        assert!(WorkloadSpec::parse("duty:x:0.5").is_err());
        assert!(WorkloadSpec::parse("duty:0:0.5").is_err());
        assert!(WorkloadSpec::parse("duty:3600:1.5").is_err());
    }

    #[test]
    fn canonical_roundtrips_and_collapses_spellings() {
        for s in ["day", "week", "combined", "spec:gzip", "duty:3600.0:0.25"] {
            let spec = WorkloadSpec::parse(s).unwrap();
            assert_eq!(WorkloadSpec::parse(&spec.canonical()).unwrap(), spec);
        }
        // Different spellings of the same value share one canonical form.
        let a = WorkloadSpec::parse("duty:1e3:0.5").unwrap();
        let b = WorkloadSpec::parse("duty:1000:0.5").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn duty_trace_has_requested_period_and_avf() {
        let cfg = ExperimentConfig::quick();
        let t = WorkloadSpec::parse("duty:0.002:0.5").unwrap().trace(&cfg).unwrap();
        let period_s = t.period_cycles() as f64 / cfg.frequency.hz();
        assert!((period_s - 0.002).abs() / 0.002 < 1e-9, "period {period_s}");
        assert!((t.avf() - 0.5).abs() < 1e-9);
    }
}
