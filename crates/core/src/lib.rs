//! The AVF+SOFR methodology and its validation — the subject of
//! *"Architecture-Level Soft Error Analysis: Examining the Limits of Common
//! Assumptions"* (DSN 2007).
//!
//! The widely used two-step method for projecting soft-error MTTF:
//!
//! 1. **AVF step** ([`avf`]): each component's failure rate is its raw
//!    error rate derated by its architecture vulnerability factor;
//!    `MTTF_c = 1/(λ_c · AVF_c)` (paper Equation 1).
//! 2. **SOFR step** ([`sofr`]): the system failure rate is the sum of
//!    component failure rates, and the system MTTF its reciprocal (paper
//!    Equations 2–3).
//!
//! Both steps rest on assumptions — uniform vulnerability across the
//! program for AVF, exponential per-component time-to-failure for SOFR —
//! that architectural masking can violate. The [`validate`] module
//! quantifies the resulting MTTF error against three assumption-free
//! estimators (Monte Carlo, renewal analysis, SoftArch), over the Table 2
//! design space in [`design`], with the SPEC-like simulation pipeline in
//! [`pipeline`] and the paper's experiment generators in [`experiments`].
//!
//! # Quickstart
//!
//! ```
//! use serr_core::prelude::*;
//!
//! // A component busy 30% of the time, raw rate 10 errors/year.
//! let trace = IntervalTrace::busy_idle(3_000, 7_000).unwrap();
//! let rate = RawErrorRate::per_year(10.0);
//!
//! // The AVF step...
//! let avf_mttf = serr_core::avf::avf_step_mttf(&trace, rate).unwrap();
//! // ...against ground truth (exact here because λL is tiny):
//! let truth = serr_analytic::renewal::renewal_mttf(&trace, rate, Frequency::base()).unwrap();
//! let err = (avf_mttf.as_secs() - truth.as_secs()).abs() / truth.as_secs();
//! assert!(err < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod avf;
pub mod binjson;
pub mod chaos;
pub mod checkpoint;
pub mod design;
pub mod experiments;
pub mod guard;
pub mod jsonio;
pub mod par;
pub mod pipeline;
pub mod protect;
pub mod rates;
pub mod retry;
pub mod sofr;
pub mod validate;
pub mod workspec;

/// Convenient re-exports for downstream code and examples.
pub mod prelude {
    pub use serr_analytic as analytic;
    pub use serr_mc::system::SystemModel;
    pub use serr_mc::{MonteCarlo, MonteCarloConfig, MttfEstimate, SamplerKind, StartPhase};
    pub use serr_sim::{SimConfig, SimOutput, Simulator};
    pub use serr_softarch::SoftArch;
    pub use serr_trace::{
        CompositeTrace, ConcatTrace, IntervalTrace, ShiftedTrace, VulnerabilityTrace,
    };
    pub use serr_types::{
        Component, ComponentKind, FailureRate, FitRate, Frequency, Mttf, RawErrorRate, Seconds,
        SerrError,
    };
    pub use serr_workload::{BenchmarkProfile, Suite, TraceGenerator};

    pub use serr_inject::{FaultKind, FaultPlan};
    pub use serr_types::Provenance;

    pub use crate::chaos::{run_chaos, CampaignOutcome, ChaosConfig, ChaosReport};
    pub use crate::checkpoint::{CheckpointMode, SweepOptions, SweepReport};
    pub use crate::design::{DesignPoint, DesignSpace, Workload};
    pub use crate::guard::{classify_estimate, Guard, GuardPolicy, GuardedMttf};
    pub use crate::protect::ProtectionSpec;
    pub use crate::rates::UnitRates;
    pub use crate::retry::{retry_with_backoff, BackoffPolicy};
    pub use crate::validate::{ComponentValidation, SystemValidation, Validator};
    pub use crate::workspec::WorkloadSpec;
}
