//! The SOFR step (paper Section 2.3, Equations 2–3).

use serr_types::{FailureRate, Mttf, SerrError};

/// Sums component failure rates into a system failure rate (Equation 2).
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] if no components are given.
pub fn sofr_failure_rate(
    components: impl IntoIterator<Item = FailureRate>,
) -> Result<FailureRate, SerrError> {
    let mut any = false;
    let mut total = FailureRate::ZERO;
    for fr in components {
        total = total + fr;
        any = true;
    }
    if !any {
        return Err(SerrError::invalid_config("SOFR requires at least one component"));
    }
    Ok(total)
}

/// The SOFR system MTTF (Equations 2–3):
/// `MTTF_sys = 1 / Σᵢ (1/MTTFᵢ)`.
///
/// Assumes each component's time to failure is exponentially distributed
/// with constant rate `1/MTTFᵢ` and that the first component failure fails
/// the (series) system — the assumptions whose limits the paper maps.
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] if no components are given.
///
/// ```
/// use serr_core::sofr::sofr_mttf;
/// use serr_types::Mttf;
///
/// let sys = sofr_mttf([Mttf::from_years(2.0), Mttf::from_years(2.0)]).unwrap();
/// assert!((sys.as_years() - 1.0).abs() < 1e-12);
/// ```
pub fn sofr_mttf(components: impl IntoIterator<Item = Mttf>) -> Result<Mttf, SerrError> {
    let total = sofr_failure_rate(components.into_iter().map(Mttf::to_failure_rate))?;
    Ok(total.to_mttf())
}

/// SOFR for `count` identical components: `MTTF_sys = MTTF_c / count`.
///
/// This is how the paper's cluster experiments apply the step (Section 5.3:
/// "a cluster of 5,000 processors").
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] if `count` is zero.
pub fn sofr_mttf_identical(component: Mttf, count: u64) -> Result<Mttf, SerrError> {
    if count == 0 {
        return Err(SerrError::invalid_config("system must have at least one component"));
    }
    Ok(Mttf::from_secs(component.as_secs() / count as f64))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reciprocal_sum() {
        // 1/(1/2 + 1/3 + 1/6) = 1
        let sys = sofr_mttf([Mttf::from_years(2.0), Mttf::from_years(3.0), Mttf::from_years(6.0)])
            .unwrap();
        assert!((sys.as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_components_divide() {
        let sys = sofr_mttf_identical(Mttf::from_years(5000.0), 5000).unwrap();
        assert!((sys.as_years() - 1.0).abs() < 1e-12);
        // Agrees with the general form.
        let general = sofr_mttf(std::iter::repeat_n(Mttf::from_years(5000.0), 5000)).unwrap();
        assert!((general.as_years() - sys.as_years()).abs() < 1e-9);
    }

    #[test]
    fn single_component_is_identity() {
        let m = Mttf::from_years(7.5);
        let sys = sofr_mttf([m]).unwrap();
        assert!((sys.as_secs() - m.as_secs()).abs() / m.as_secs() < 1e-12);
    }

    #[test]
    fn empty_and_zero_rejected() {
        assert!(sofr_mttf(std::iter::empty::<Mttf>()).is_err());
        assert!(sofr_failure_rate(std::iter::empty::<FailureRate>()).is_err());
        assert!(sofr_mttf_identical(Mttf::from_years(1.0), 0).is_err());
    }

    #[test]
    fn system_is_weaker_than_weakest_component() {
        let sys = sofr_mttf([Mttf::from_years(1.0), Mttf::from_years(100.0)]).unwrap();
        assert!(sys.as_years() < 1.0);
        assert!(sys.as_years() > 0.9);
    }
}
