//! Checkpoint journals and the fault-tolerant sweep runner.
//!
//! The figure sweeps (`sec5_1`, `fig5`, `fig6a/b`, `sec5_4`) can run for
//! hours at paper scale (`C = 5000`, `N×S = 1e13`, 10⁶ trials per point).
//! This module makes them restartable and panic-tolerant:
//!
//! * Each completed design point is appended as one JSON line to an
//!   fsync'd journal under `target/serr-checkpoints/` (overridable via the
//!   `SERR_CHECKPOINT_DIR` environment variable), keyed by a fingerprint of
//!   the sweep kind, configuration, and point list. A re-run of the same
//!   sweep resumes from the journal, recomputing only the missing points;
//!   a *fresh* run discards the journal first.
//! * Work items run through [`crate::par::try_par_map`], so one panicking
//!   point surfaces as a [`SerrError::PointFailed`] in the report instead
//!   of aborting the sweep.
//!
//! # Journal format
//!
//! One line per completed point:
//! `{"i":<index>,"ck":"<checksum>","row":<row object>}`, where
//! `<row object>` is produced by the row type's [`JournalRow`]
//! implementation and `<checksum>` is a hex FNV-1a fingerprint over the
//! index and the row's canonical JSON. Rows are written with
//! shortest-round-trip float formatting (see [`crate::jsonio`]), so a
//! resumed sweep reproduces **bit-identical** rows. A torn final line
//! (crash mid-append), any malformed line, or a line whose checksum does
//! not match its content (on-disk corruption) is simply ignored — that
//! point is recomputed.
//!
//! Journal appends are flushed with `sync_data` per point: a killed process
//! loses at most the point it was computing, never a recorded one.
//!
//! # Locking
//!
//! Two processes appending to one journal would interleave lines and each
//! would resume from a snapshot the other invalidates. [`Journal::open`]
//! therefore takes an advisory per-journal lock — a `<journal>.lock` file
//! created with `O_EXCL` and holding the owner's PID — and fails with
//! [`SerrError::JournalLocked`] while another live process holds it. A lock
//! left behind by a dead process (checked via `/proc`) is reclaimed
//! automatically; the lock is removed when the [`Journal`] drops.
//!
//! # Fault injection
//!
//! [`SweepOptions::chaos`] accepts a deterministic [`FaultPlan`] (see
//! `serr-inject`) that simulates journal I/O failures — an unopenable
//! journal or failing per-point appends — so the degrade paths above are
//! exercised under test exactly as a real filesystem error would.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serr_inject::{FaultPlan, IoSite};
use serr_obs::{Event, Obs};
use serr_types::SerrError;

use crate::jsonio::Json;
use crate::par;
use crate::retry::{retry_with_backoff, BackoffPolicy};

/// How a sweep interacts with its checkpoint journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// No journal: compute everything, record nothing.
    #[default]
    Off,
    /// Resume from an existing journal (if any) and record new points.
    Resume,
    /// Discard any existing journal, then record points as they complete.
    Fresh,
}

/// Options controlling a fault-tolerant sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Checkpoint behavior; [`CheckpointMode::Off`] by default.
    pub mode: CheckpointMode,
    /// Journal directory override. `None` uses `SERR_CHECKPOINT_DIR` or
    /// `target/serr-checkpoints`.
    pub dir: Option<PathBuf>,
    /// Deterministic fault-injection plan. `None` (the default) injects
    /// nothing; `Some(plan)` simulates the journal I/O failure the plan's
    /// seed selects (see `serr-inject`), degrading exactly like the real
    /// error would.
    pub chaos: Option<FaultPlan>,
    /// Observability handle for checkpoint warnings and resume/compute
    /// counters. `None` falls back to [`serr_obs::global`], whose default
    /// renders warnings to stderr — the behaviour the old ad-hoc
    /// `eprintln!` diagnostics had.
    pub obs: Option<Obs>,
}

impl SweepOptions {
    /// No checkpointing (the default).
    #[must_use]
    pub fn off() -> Self {
        SweepOptions { mode: CheckpointMode::Off, ..SweepOptions::default() }
    }

    /// Resume from the journal if one exists.
    #[must_use]
    pub fn resume() -> Self {
        SweepOptions { mode: CheckpointMode::Resume, ..SweepOptions::default() }
    }

    /// Discard any stale journal and start over.
    #[must_use]
    pub fn fresh() -> Self {
        SweepOptions { mode: CheckpointMode::Fresh, ..SweepOptions::default() }
    }

    /// Pins the journal directory (tests; tools with their own layout).
    #[must_use]
    pub fn in_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Arms a deterministic fault-injection plan (chaos campaigns only).
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Routes checkpoint warnings and counters through `obs` instead of
    /// the process-wide default.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The effective observability handle: the attached one, else the
    /// process-wide default (warnings to stderr).
    #[must_use]
    pub fn effective_obs(&self) -> &Obs {
        self.obs.as_ref().unwrap_or_else(|| serr_obs::global())
    }
}

/// One failed design point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// Input-order index of the failed point.
    pub index: usize,
    /// What went wrong: [`SerrError::PointFailed`] for a panic, or the
    /// point's own typed error.
    pub error: SerrError,
}

/// The outcome of a fault-tolerant sweep.
#[derive(Debug, Clone)]
pub struct SweepReport<R> {
    /// Completed rows in input order (failed points are absent).
    pub rows: Vec<R>,
    /// Failed points, ascending by index.
    pub failures: Vec<PointFailure>,
    /// Points restored from the journal without recomputation.
    pub resumed: usize,
    /// Points computed (successfully) in this run.
    pub computed: usize,
}

impl<R> SweepReport<R> {
    /// Collapses the report into the classic all-or-nothing shape: the rows
    /// if every point succeeded, otherwise the first failure in input order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index [`PointFailure`]'s error.
    pub fn into_result(self) -> Result<Vec<R>, SerrError> {
        match self.failures.into_iter().next() {
            None => Ok(self.rows),
            Some(f) => Err(f.error),
        }
    }
}

/// A row type that can round-trip through the checkpoint journal.
///
/// Implementations must be lossless for every field that feeds a report:
/// `from_journal(&to_journal(row))` must reconstruct `row` bit-for-bit
/// (floats included — [`Json`] guarantees shortest-round-trip formatting).
pub trait JournalRow: Sized {
    /// Encodes the row as a JSON value (one journal line's `"row"` field).
    fn to_journal(&self) -> Json;
    /// Decodes a row; `None` (schema mismatch, missing field) means the
    /// journal entry is discarded and the point recomputed.
    fn from_journal(v: &Json) -> Option<Self>;
}

/// The journal directory: `SERR_CHECKPOINT_DIR` if set, else
/// `target/serr-checkpoints` relative to the working directory.
#[must_use]
pub fn default_journal_dir() -> PathBuf {
    match std::env::var_os("SERR_CHECKPOINT_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("serr-checkpoints"),
    }
}

/// FNV-1a fingerprint over a list of string parts, with a separator fold so
/// part boundaries matter (`["ab","c"] != ["a","bc"]`). Keys sweeps to
/// their configuration: same kind + config + point list → same journal.
#[must_use]
pub fn fingerprint(parts: &[&str]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h = (h ^ 0xff).wrapping_mul(PRIME);
    }
    h
}

/// The journal file path for `(kind, fingerprint)` under `dir`.
#[must_use]
pub fn journal_path(dir: &Path, kind: &str, fingerprint: u64) -> PathBuf {
    dir.join(format!("{kind}-{fingerprint:016x}.jsonl"))
}

/// The advisory lock file guarding a journal: the journal path with a
/// `.lock` suffix appended.
#[must_use]
pub fn journal_lock_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_owned();
    os.push(".lock");
    PathBuf::from(os)
}

/// The per-line integrity checksum: an FNV-1a fingerprint over the point
/// index (decimal) and the row's canonical JSON.
fn line_checksum(index: usize, row_json: &str) -> u64 {
    fingerprint(&[&index.to_string(), row_json])
}

/// Whether the process named in `lock_path` is provably dead, so the lock
/// is stale and may be reclaimed. An unreadable or unparsable lock file
/// (torn write) also counts as stale. Without a `/proc` filesystem,
/// liveness cannot be checked, so a well-formed lock is assumed live.
fn lock_holder_is_dead(lock_path: &Path) -> bool {
    let Some(pid) = fs::read_to_string(lock_path).ok().and_then(|s| s.trim().parse::<u32>().ok())
    else {
        return true;
    };
    let proc_root = Path::new("/proc");
    proc_root.is_dir() && !proc_root.join(pid.to_string()).is_dir()
}

/// Takes the advisory lock for a journal, reclaiming a stale holder once.
fn acquire_journal_lock(lock_path: &Path) -> Result<(), SerrError> {
    for attempt in 0..2u8 {
        match OpenOptions::new().write(true).create_new(true).open(lock_path) {
            Ok(mut f) => {
                // Best-effort PID stamp: a missing stamp reads as a torn
                // (stale) lock, which is the safe direction.
                let _ = write!(f, "{}", std::process::id());
                let _ = f.sync_data();
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if attempt == 0 && lock_holder_is_dead(lock_path) {
                    let _ = fs::remove_file(lock_path);
                    continue;
                }
                return Err(SerrError::JournalLocked { path: lock_path.display().to_string() });
            }
            Err(e) => return Err(SerrError::io("create journal lock", e.to_string())),
        }
    }
    Err(SerrError::JournalLocked { path: lock_path.display().to_string() })
}

/// An append-only, fsync'd JSONL checkpoint journal for one sweep, held
/// under an advisory lock that is released when the journal drops.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    lock_path: PathBuf,
    file: Mutex<File>,
    completed: BTreeMap<usize, Json>,
}

impl Journal {
    /// Opens (or creates) the journal for `(kind, fingerprint)` under
    /// `dir`, loading previously completed points. With `fresh`, any
    /// existing journal is deleted first.
    ///
    /// Malformed lines — including a final line torn by a crash mid-append
    /// — and lines whose checksum does not match their content are skipped:
    /// those points simply recompute.
    ///
    /// # Errors
    ///
    /// [`SerrError::JournalLocked`] when another live process holds the
    /// journal's advisory lock (fatal: two writers would corrupt each
    /// other's resume state), or [`SerrError::Io`] for filesystem errors
    /// (unwritable directory, etc.) — callers degrade the latter to
    /// checkpoint-less operation rather than failing the sweep.
    pub fn open(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
    ) -> Result<Journal, SerrError> {
        Self::open_inner(dir, kind, fingerprint, fresh)
    }

    /// [`Journal::open`] wrapped in [`retry_with_backoff`]: a journal
    /// locked by a process that is just shutting down (the common transient
    /// — e.g. a draining service handing over to its replacement) is
    /// retried on the bounded, jitter-deterministic schedule instead of
    /// failing the first probe. A lock held by a *live* writer still
    /// defeats every attempt and returns the same typed error as before.
    ///
    /// # Errors
    ///
    /// [`SerrError::JournalLocked`] once retries are exhausted, or any
    /// non-transient [`Journal::open`] error unchanged from the first try.
    pub fn open_with_retry(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
        policy: &BackoffPolicy,
    ) -> Result<Journal, SerrError> {
        retry_with_backoff(
            policy,
            |_| Self::open_inner(dir, kind, fingerprint, fresh),
            |e| matches!(e, SerrError::JournalLocked { .. }),
            std::thread::sleep,
        )
    }

    fn open_inner(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
    ) -> Result<Journal, SerrError> {
        fs::create_dir_all(dir)
            .map_err(|e| SerrError::io("create checkpoint directory", e.to_string()))?;
        let path = journal_path(dir, kind, fingerprint);
        let lock_path = journal_lock_path(&path);
        acquire_journal_lock(&lock_path)?;
        match Self::open_locked(&path, fresh) {
            Ok((file, completed)) => {
                Ok(Journal { path, lock_path, file: Mutex::new(file), completed })
            }
            Err(e) => {
                let _ = fs::remove_file(&lock_path);
                Err(e)
            }
        }
    }

    /// The fallible tail of [`Journal::open`], split out so the caller can
    /// release the just-taken lock on any error.
    fn open_locked(path: &Path, fresh: bool) -> Result<(File, BTreeMap<usize, Json>), SerrError> {
        if fresh {
            match fs::remove_file(path) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                Err(e) => return Err(SerrError::io("discard stale journal", e.to_string())),
            }
        }
        let mut completed = BTreeMap::new();
        if let Ok(text) = fs::read_to_string(path) {
            for line in text.lines() {
                let Some(entry) = Json::parse(line) else { continue };
                let Some(i) = entry.get("i").and_then(Json::as_usize) else { continue };
                let Some(row) = entry.get("row") else { continue };
                let Some(ck) = entry.get("ck").and_then(Json::as_str) else { continue };
                // Re-serialization is canonical (shortest-round-trip floats),
                // so a checksum over the parsed row matches the written line
                // unless the bytes changed underneath it.
                if ck != format!("{:016x}", line_checksum(i, &row.to_json())) {
                    continue;
                }
                completed.insert(i, row.clone());
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| SerrError::io("open checkpoint journal", e.to_string()))?;
        Ok((file, completed))
    }

    /// Points already recorded, by input index.
    #[must_use]
    pub fn completed(&self) -> &BTreeMap<usize, Json> {
        &self.completed
    }

    /// The journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one completed point and syncs it to disk, so a subsequent
    /// crash cannot lose it.
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; the sweep runner logs and continues
    /// (losing checkpointing for that point, not the point itself).
    pub fn record(&self, index: usize, row: &Json) -> std::io::Result<()> {
        let row_json = row.to_json();
        let ck = line_checksum(index, &row_json);
        let line = format!("{{\"i\":{index},\"ck\":\"{ck:016x}\",\"row\":{row_json}}}");
        // A poisoned lock only means another worker panicked *between*
        // journal writes; the file itself is line-consistent, so keep going.
        let mut file = self.file.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        file.write_all(line.as_bytes())?;
        file.write_all(b"\n")?;
        file.sync_data()
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.lock_path);
    }
}

/// Runs a fault-tolerant, checkpointed sweep over `items`.
///
/// Completed points are restored from the journal (when `opts.mode` says
/// so) without calling `eval`; the rest run in parallel on up to `threads`
/// workers via [`par::try_par_map`], each success being journaled before
/// the report is assembled. Panics and errors in `eval` poison only their
/// own point.
///
/// If the journal cannot be opened (read-only filesystem, permission
/// error, or an injected open fault), the sweep still runs — it just
/// doesn't checkpoint; a `checkpoint.journal_unavailable` warning event is
/// emitted through `opts.obs` (or the process-wide default sink, which
/// renders warnings to stderr). Resume/compute/failure counts land in the
/// same handle's metrics registry.
///
/// # Errors
///
/// [`SerrError::JournalLocked`] when another live process holds the
/// journal's advisory lock. Every other journal problem degrades instead
/// of failing.
pub fn run_sweep<T, R, F>(
    kind: &str,
    fingerprint: u64,
    items: &[T],
    threads: usize,
    opts: &SweepOptions,
    eval: F,
) -> Result<SweepReport<R>, SerrError>
where
    T: Sync,
    R: JournalRow + Send,
    F: Fn(usize, &T) -> Result<R, SerrError> + Sync,
{
    let injected_io = opts.chaos.and_then(|p| p.io_fault_site());
    let obs = opts.effective_obs();
    // Typed replacements for the old `eprintln!` warnings: same severity
    // (the default global sink renders warnings to stderr), but structured,
    // keyed by point index, and capturable by tests and `--metrics` files.
    let warn_open = |reason: String| {
        obs.emit(
            Event::warn("checkpoint.journal_unavailable", 0)
                .with("sweep", kind)
                .with("reason", reason)
                .with("action", "sweep runs without checkpointing"),
        );
    };
    let journal = match opts.mode {
        CheckpointMode::Off => None,
        CheckpointMode::Resume | CheckpointMode::Fresh => {
            let dir = opts.dir.clone().unwrap_or_else(default_journal_dir);
            let fresh = opts.mode == CheckpointMode::Fresh;
            if injected_io == Some(IoSite::Open) {
                warn_open("injected i/o fault at open".to_owned());
                None
            } else {
                // A lock holder that is mid-shutdown clears within the
                // bounded retry schedule; a genuinely live writer defeats
                // every attempt and the typed error stays fatal.
                let policy = BackoffPolicy::journal(fingerprint);
                match Journal::open_with_retry(&dir, kind, fingerprint, fresh, &policy) {
                    Ok(j) => Some(j),
                    Err(e @ SerrError::JournalLocked { .. }) => return Err(e),
                    Err(e) => {
                        warn_open(e.to_string());
                        None
                    }
                }
            }
        }
    };

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut resumed = 0usize;
    if let Some(j) = &journal {
        for (&i, row) in j.completed() {
            if i < items.len() {
                if let Some(decoded) = R::from_journal(row) {
                    slots[i] = Some(decoded);
                    resumed += 1;
                }
            }
        }
    }

    let pending: Vec<usize> = (0..items.len()).filter(|&i| slots[i].is_none()).collect();
    // Record-failure events carry the point index as their sequence key:
    // workers emit concurrently, so sink order is nondeterministic, but the
    // key set for a given failure pattern is thread-count invariant.
    let warn_record = |i: usize, reason: String| {
        obs.emit(
            Event::warn("checkpoint.record_failed", i as u64)
                .with("sweep", kind)
                .with("point", i)
                .with("reason", reason),
        );
    };
    let results = par::try_par_map(&pending, threads, |_, &i| {
        let row = eval(i, &items[i])?;
        if let Some(j) = &journal {
            if injected_io == Some(IoSite::Record) {
                warn_record(i, "injected i/o fault at record".to_owned());
            } else if let Err(e) = j.record(i, &row.to_journal()) {
                warn_record(i, e.to_string());
            }
        }
        Ok(row)
    });

    let mut failures = Vec::new();
    let mut computed = 0usize;
    for (&orig, res) in pending.iter().zip(results) {
        match res {
            Ok(row) => {
                slots[orig] = Some(row);
                computed += 1;
            }
            // try_par_map indexes into `pending`; report the original
            // position in the sweep's point list instead.
            Err(SerrError::PointFailed { payload, .. }) => failures.push(PointFailure {
                index: orig,
                error: SerrError::PointFailed { index: orig, payload },
            }),
            Err(error) => failures.push(PointFailure { index: orig, error }),
        }
    }
    failures.sort_by_key(|f| f.index);

    let metrics = obs.metrics();
    metrics.add("checkpoint.resumed", resumed as u64);
    metrics.add("checkpoint.computed", computed as u64);
    metrics.add("checkpoint.failed", failures.len() as u64);

    Ok(SweepReport { rows: slots.into_iter().flatten().collect(), failures, resumed, computed })
}

#[cfg(test)]
mod tests {
    use super::*;
    // `Write as _` in the parent has no name, so the glob import above does
    // not bring it in; the torn-line test writes to a raw `File` directly.
    use std::io::Write as _;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct TestRow {
        idx: u64,
        value: f64,
        label: String,
    }

    impl JournalRow for TestRow {
        fn to_journal(&self) -> Json {
            Json::Obj(vec![
                ("idx".to_owned(), Json::Num(self.idx as f64)),
                ("value".to_owned(), Json::Num(self.value)),
                ("label".to_owned(), Json::Str(self.label.clone())),
            ])
        }
        fn from_journal(v: &Json) -> Option<Self> {
            Some(TestRow {
                idx: v.get("idx")?.as_u64()?,
                value: v.get("value")?.as_f64()?,
                label: v.get("label")?.as_str()?.to_owned(),
            })
        }
    }

    /// A deliberately awkward float per index, to catch any formatting
    /// loss in the journal round trip.
    fn eval_row(i: usize, x: &u64) -> Result<TestRow, SerrError> {
        let value = (*x as f64).sqrt() * 0.1 + 0.2 + 1.0 / (*x as f64 + 3.0);
        Ok(TestRow { idx: *x, value, label: format!("point-{i}") })
    }

    fn fresh_test_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("serr-checkpoint-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn assert_rows_bit_identical(a: &[TestRow], b: &[TestRow]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.idx, y.idx);
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.value.to_bits(),
                y.value.to_bits(),
                "row {} not bit-identical: {} vs {}",
                x.idx,
                x.value,
                y.value
            );
        }
    }

    #[test]
    fn off_mode_computes_everything_and_journals_nothing() {
        let items: Vec<u64> = (0..10).collect();
        let calls = AtomicUsize::new(0);
        let report = run_sweep("t-off", 1, &items, 4, &SweepOptions::off(), |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert_eq!(report.rows.len(), 10);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.computed, 10);
        assert!(report.failures.is_empty());
        // Rows come back in input order.
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.idx, i as u64);
        }
    }

    #[test]
    fn interrupted_sweep_resumes_without_recomputing_completed_points() {
        let dir = fresh_test_dir("resume");
        let items: Vec<u64> = (0..12).collect();
        let opts = SweepOptions::resume().in_dir(&dir);
        let fp = fingerprint(&["resume-test", "v1"]);

        // Uninterrupted reference run (no journal involved).
        let reference =
            run_sweep("t-resume", fp, &items, 4, &SweepOptions::off(), eval_row).unwrap().rows;

        // "Killed" run: points >= 7 fail, so the journal records 0..=6 only
        // — the on-disk state a mid-run SIGKILL leaves behind.
        let partial = run_sweep("t-resume", fp, &items, 4, &opts, |i, x| {
            if *x >= 7 {
                return Err(SerrError::invalid_config("simulated crash"));
            }
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(partial.rows.len(), 7);
        assert_eq!(partial.failures.len(), 5);

        // Re-invocation: only the 5 missing points are recomputed...
        let calls = AtomicUsize::new(0);
        let second = run_sweep("t-resume", fp, &items, 4, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 5, "resumed points were recomputed");
        assert_eq!(second.resumed, 7);
        assert_eq!(second.computed, 5);
        assert!(second.failures.is_empty());
        assert_rows_bit_identical(&second.rows, &reference);

        // ...and a third run recomputes zero points, bit-identically.
        let calls = AtomicUsize::new(0);
        let third = run_sweep("t-resume", fp, &items, 4, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(third.resumed, 12);
        assert_rows_bit_identical(&third.rows, &reference);

        // The advisory lock is released between runs and after the last.
        let lock = journal_lock_path(&journal_path(&dir, "t-resume", fp));
        assert!(!lock.exists(), "lock file left behind: {}", lock.display());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_mode_discards_the_journal() {
        let dir = fresh_test_dir("fresh");
        let items: Vec<u64> = (0..6).collect();
        let fp = fingerprint(&["fresh-test"]);
        let resume = SweepOptions::resume().in_dir(&dir);
        run_sweep("t-fresh", fp, &items, 2, &resume, eval_row).unwrap();

        let calls = AtomicUsize::new(0);
        let fresh = SweepOptions::fresh().in_dir(&dir);
        let report = run_sweep("t-fresh", fp, &items, 2, &fresh, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 6, "--fresh must recompute everything");
        assert_eq!(report.resumed, 0);
        assert_eq!(report.computed, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_malformed_journal_lines_are_recomputed() {
        let dir = fresh_test_dir("torn");
        let items: Vec<u64> = (0..4).collect();
        let fp = fingerprint(&["torn-test"]);
        let journal = Journal::open(&dir, "t-torn", fp, false).unwrap();
        // Two good lines, one torn mid-append, one schema-mismatched.
        journal.record(0, &eval_row(0, &0).unwrap().to_journal()).unwrap();
        journal.record(1, &eval_row(1, &1).unwrap().to_journal()).unwrap();
        drop(journal);
        let path = dir.join(format!("t-torn-{fp:016x}.jsonl"));
        let mut file = OpenOptions::new().append(true).open(&path).unwrap();
        writeln!(file, "{}", r#"{"i":2,"row":{"idx":2,"value":"not a number","label":"x"}}"#)
            .unwrap();
        write!(file, "{}", r#"{"i":3,"row":{"idx":3,"va"#).unwrap(); // torn
        drop(file);

        let calls = AtomicUsize::new(0);
        let opts = SweepOptions::resume().in_dir(&dir);
        let report = run_sweep("t-torn", fp, &items, 1, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.resumed, 2, "good lines resume");
        assert_eq!(calls.load(Ordering::Relaxed), 2, "bad lines recompute");
        assert_eq!(report.rows.len(), 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_point_is_reported_with_its_input_index() {
        let items: Vec<u64> = (0..8).collect();
        let report = run_sweep("t-poison", 1, &items, 3, &SweepOptions::off(), |i, x| {
            assert!(*x != 5, "point {x} is poisoned");
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.rows.len(), 7);
        let expected: Vec<u64> = (0..8).filter(|&x| x != 5).collect();
        assert_eq!(report.rows.iter().map(|r| r.idx).collect::<Vec<_>>(), expected);
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.index, 5);
        match &failure.error {
            SerrError::PointFailed { index: 5, payload } => {
                assert!(payload.contains("point 5 is poisoned"), "payload: {payload}");
            }
            other => panic!("expected PointFailed {{ index: 5, .. }}, got {other:?}"),
        }
        // into_result surfaces the failure as a typed error.
        assert!(matches!(report.into_result(), Err(SerrError::PointFailed { index: 5, .. })));
    }

    #[test]
    fn fingerprints_respect_part_boundaries() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["fig5"]), fingerprint(&["fig6a"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }

    #[test]
    fn journal_row_roundtrip_is_lossless() {
        let row = TestRow { idx: 42, value: 0.1 + 0.2, label: "λ \"quoted\"\n".to_owned() };
        let back = TestRow::from_journal(&row.to_journal()).unwrap();
        assert_eq!(back.label, row.label);
        assert_eq!(back.value.to_bits(), row.value.to_bits());
    }

    #[test]
    fn second_writer_on_a_live_journal_gets_the_typed_lock_error() {
        let dir = fresh_test_dir("lock");
        let items: Vec<u64> = (0..3).collect();
        let fp = fingerprint(&["lock-test"]);
        let held = Journal::open(&dir, "t-lock", fp, false).unwrap();

        // A sweep against the same journal must refuse, naming the lock.
        let opts = SweepOptions::resume().in_dir(&dir);
        match run_sweep("t-lock", fp, &items, 2, &opts, eval_row) {
            Err(SerrError::JournalLocked { path }) => {
                assert!(path.contains("t-lock"), "lock path should name the journal: {path}");
                assert!(path.ends_with(".lock"), "lock path: {path}");
            }
            other => panic!("expected JournalLocked, got {other:?}"),
        }
        // So must a direct second open.
        assert!(matches!(
            Journal::open(&dir, "t-lock", fp, false),
            Err(SerrError::JournalLocked { .. })
        ));

        // Dropping the holder releases the lock; the sweep then proceeds.
        drop(held);
        let report = run_sweep("t-lock", fp, &items, 2, &opts, eval_row).unwrap();
        assert_eq!(report.rows.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_with_retry_outlasts_a_holder_that_is_shutting_down() {
        let dir = fresh_test_dir("retry-open");
        let fp = fingerprint(&["retry-open-test"]);
        let held = Journal::open(&dir, "t-retry", fp, false).unwrap();

        // Release the lock partway through the retry schedule; the
        // contender's later attempt then succeeds where the first failed.
        let policy = BackoffPolicy::journal(fp);
        let release = std::thread::spawn(move || {
            std::thread::sleep(policy.delay(0) / 2);
            drop(held);
        });
        let j = Journal::open_with_retry(&dir, "t-retry", fp, false, &policy)
            .expect("retry must outlast a shutting-down holder");
        release.join().expect("release thread");
        drop(j);

        // A holder that never releases still defeats every attempt with
        // the same typed error the fail-fast path produced.
        let held = Journal::open(&dir, "t-retry", fp, false).unwrap();
        assert!(matches!(
            Journal::open_with_retry(&dir, "t-retry", fp, false, &policy),
            Err(SerrError::JournalLocked { .. })
        ));
        drop(held);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = fresh_test_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        let fp = fingerprint(&["stale-test"]);
        let lock = journal_lock_path(&journal_path(&dir, "t-stale", fp));
        // PID far above any real pid_max, so /proc/<pid> cannot exist.
        fs::write(&lock, "4000000000").unwrap();
        let j = Journal::open(&dir, "t-stale", fp, false).expect("stale lock must be reclaimed");
        drop(j);
        // A torn (unparsable) lock file is also stale.
        fs::write(&lock, "not a pid").unwrap();
        Journal::open(&dir, "t-stale", fp, false).expect("torn lock must be reclaimed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_journal_lines_fail_their_checksum_and_recompute() {
        let dir = fresh_test_dir("ck");
        let items: Vec<u64> = (0..3).collect();
        let fp = fingerprint(&["ck-test"]);
        let journal = Journal::open(&dir, "t-ck", fp, false).unwrap();
        for i in 0..3usize {
            journal.record(i, &eval_row(i, &(i as u64)).unwrap().to_journal()).unwrap();
        }
        drop(journal);

        // Flip one row's payload in place (still valid JSON, wrong checksum).
        let path = journal_path(&dir, "t-ck", fp);
        let text = fs::read_to_string(&path).unwrap();
        assert!(text.contains("point-1"), "journal should hold row 1: {text}");
        fs::write(&path, text.replace("point-1", "point-X")).unwrap();

        let calls = AtomicUsize::new(0);
        let opts = SweepOptions::resume().in_dir(&dir);
        let report = run_sweep("t-ck", fp, &items, 1, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.resumed, 2, "intact lines resume");
        assert_eq!(calls.load(Ordering::Relaxed), 1, "the corrupted line recomputes");
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[1].label, "point-1", "recomputed row is correct");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_warnings_are_typed_events_not_stderr_noise() {
        use serr_inject::{FaultKind, FaultPlan};
        let dir = fresh_test_dir("obs-events");
        let items: Vec<u64> = (0..4).collect();
        let fp = fingerprint(&["obs-events-test"]);
        let plan_for = |site: IoSite| {
            (0..1_000u64)
                .map(|s| FaultPlan::new(s, FaultKind::CheckpointIo))
                .find(|p| p.io_fault_site() == Some(site))
                .expect("some seed selects the site")
        };

        // Open fault: one journal_unavailable warning, no record events.
        let (obs, sink) = Obs::memory();
        let opts = SweepOptions::resume()
            .in_dir(&dir)
            .with_chaos(plan_for(IoSite::Open))
            .with_obs(obs.clone());
        run_sweep("t-obs-ev", fp, &items, 2, &opts, eval_row).unwrap();
        let warns = sink.events_of("checkpoint.journal_unavailable");
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].level, serr_obs::Level::Warn);
        assert!(sink.events_of("checkpoint.record_failed").is_empty());
        assert_eq!(obs.metrics().snapshot().counters["checkpoint.computed"], 4);

        // Record fault: one record_failed warning per computed point, keyed
        // by point index — the same key set at any worker count.
        let (obs, sink) = Obs::memory();
        let opts = SweepOptions::resume()
            .in_dir(&dir)
            .with_chaos(plan_for(IoSite::Record))
            .with_obs(obs.clone());
        run_sweep("t-obs-ev", fp, &items, 2, &opts, eval_row).unwrap();
        let mut keys: Vec<u64> =
            sink.events_of("checkpoint.record_failed").iter().map(|e| e.seq).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_faults_degrade_without_losing_rows() {
        use serr_inject::{FaultKind, FaultPlan};
        let dir = fresh_test_dir("chaos-io");
        let items: Vec<u64> = (0..5).collect();
        let fp = fingerprint(&["chaos-io-test"]);

        // Find plans hitting each injection site.
        let plan_for = |site: IoSite| {
            (0..1_000u64)
                .map(|s| FaultPlan::new(s, FaultKind::CheckpointIo))
                .find(|p| p.io_fault_site() == Some(site))
                .expect("some seed selects the site")
        };
        let reference =
            run_sweep("t-chaos-io", fp, &items, 1, &SweepOptions::off(), eval_row).unwrap().rows;

        // Open fault: no journal at all, rows still correct.
        let opts = SweepOptions::resume().in_dir(&dir).with_chaos(plan_for(IoSite::Open));
        let report = run_sweep("t-chaos-io", fp, &items, 1, &opts, eval_row).unwrap();
        assert_rows_bit_identical(&report.rows, &reference);
        assert!(
            !journal_path(&dir, "t-chaos-io", fp).exists(),
            "open fault must not create a journal"
        );

        // Record fault: journal exists but stays empty; rows still correct.
        let opts = SweepOptions::resume().in_dir(&dir).with_chaos(plan_for(IoSite::Record));
        let report = run_sweep("t-chaos-io", fp, &items, 1, &opts, eval_row).unwrap();
        assert_rows_bit_identical(&report.rows, &reference);
        let text = fs::read_to_string(journal_path(&dir, "t-chaos-io", fp)).unwrap();
        assert!(text.is_empty(), "record fault must suppress appends, got: {text}");
        let _ = fs::remove_dir_all(&dir);
    }
}
