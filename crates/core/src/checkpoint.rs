//! Checkpoint journals and the fault-tolerant sweep runner.
//!
//! The figure sweeps (`sec5_1`, `fig5`, `fig6a/b`, `sec5_4`) can run for
//! hours at paper scale (`C = 5000`, `N×S = 1e13`, 10⁶ trials per point).
//! This module makes them restartable and panic-tolerant:
//!
//! * Each completed design point is appended to a CRC-paged binary journal
//!   (the `serr-store` container) under `target/serr-checkpoints/`
//!   (overridable via the `SERR_CHECKPOINT_DIR` environment variable),
//!   keyed by a fingerprint of the sweep kind, configuration, and point
//!   list. A re-run of the same sweep resumes from the journal, recomputing
//!   only the missing points; a *fresh* run discards the journal first.
//! * Work items run through [`crate::par::try_par_map`], so one panicking
//!   point surfaces as a [`SerrError::PointFailed`] in the report instead
//!   of aborting the sweep.
//!
//! # Journal format
//!
//! The journal is a `serr-store` page stream (`.store` extension, stream
//! kind [`serr_store::kind::CHECKPOINT_JOURNAL`]): a versioned header
//! followed by CRC-guarded pages, one page per append. Each record is a
//! varint point index followed by the row's binary JSON encoding (see
//! [`crate::binjson`]) — floats travel as raw `f64` bits, so a resumed
//! sweep reproduces **bit-identical** rows without a decimal parse on the
//! resume path. Appends are fsynced per point: a killed process loses at
//! most the point it was computing, never a recorded one.
//!
//! Damage is detect-or-degrade, never silent: a torn final page (crash
//! mid-append) is truncated away on open; an in-page flip fails that
//! page's CRC and resume falls back to the longest valid prefix (the
//! damaged page and its successors recompute); a damaged header or a
//! foreign format version is a typed error ([`SerrError::StoreCorrupt`] /
//! [`SerrError::StoreVersion`]) that [`run_sweep`] answers by resetting
//! the journal — all points recompute, with a `checkpoint.journal_reset`
//! warning — rather than trusting bytes it cannot verify.
//!
//! # Legacy JSONL migration
//!
//! Journals written by earlier releases are one JSON line per point with an
//! FNV-1a checksum. When [`Journal::open`] finds no `.store` file but a
//! legacy `.jsonl` sibling, it migrates once: every line that passes its
//! checksum is re-encoded into the binary store, the store is re-read and
//! verified against the parsed rows, and only then is the legacy file
//! removed. Malformed or corrupt legacy lines are dropped exactly as the
//! legacy reader dropped them (those points recompute).
//!
//! The legacy format lives on as an opt-in debugging aid: with
//! [`SweepOptions::with_debug_journal`] the journal also maintains a
//! human-readable `.jsonl` sidecar in the legacy format, one line per
//! recorded point.
//!
//! # Locking
//!
//! Two processes appending to one journal would interleave pages and each
//! would resume from a snapshot the other invalidates. [`Journal::open`]
//! therefore takes an advisory per-journal lock — a `<journal>.lock` file
//! created with `O_EXCL` and holding the owner's PID — and fails with
//! [`SerrError::JournalLocked`] while another live process holds it. A lock
//! left behind by a dead process (checked via `/proc`) is reclaimed
//! automatically; the lock is removed when the [`Journal`] drops.
//!
//! # Fault injection
//!
//! [`SweepOptions::chaos`] accepts a deterministic [`FaultPlan`] (see
//! `serr-inject`) that simulates journal I/O failures — an unopenable
//! journal or failing per-point appends — so the degrade paths above are
//! exercised under test exactly as a real filesystem error would.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use serr_inject::{FaultPlan, IoSite};
use serr_obs::{Event, Obs};
use serr_store::pages::PageJournal;
use serr_store::{kind as store_kind, varint, Deserializer as _, Serializer as _};
use serr_types::SerrError;

use crate::binjson::{JsonDeserializer, JsonSerializer};
use crate::jsonio::Json;
use crate::par;
use crate::retry::{retry_with_backoff, BackoffPolicy};

/// Application-level schema version of the checkpoint record encoding
/// (varint point index + binary JSON row), stored in the container header.
pub const CHECKPOINT_APP: u32 = 1;

/// How a sweep interacts with its checkpoint journal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointMode {
    /// No journal: compute everything, record nothing.
    #[default]
    Off,
    /// Resume from an existing journal (if any) and record new points.
    Resume,
    /// Discard any existing journal, then record points as they complete.
    Fresh,
}

/// Options controlling a fault-tolerant sweep run.
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Checkpoint behavior; [`CheckpointMode::Off`] by default.
    pub mode: CheckpointMode,
    /// Journal directory override. `None` uses `SERR_CHECKPOINT_DIR` or
    /// `target/serr-checkpoints`.
    pub dir: Option<PathBuf>,
    /// Deterministic fault-injection plan. `None` (the default) injects
    /// nothing; `Some(plan)` simulates the journal I/O failure the plan's
    /// seed selects (see `serr-inject`), degrading exactly like the real
    /// error would.
    pub chaos: Option<FaultPlan>,
    /// Also maintain a human-readable JSONL sidecar in the legacy journal
    /// format (debugging aid; the binary store stays authoritative).
    pub debug_journal: bool,
    /// Observability handle for checkpoint warnings and resume/compute
    /// counters. `None` falls back to [`serr_obs::global`], whose default
    /// renders warnings to stderr — the behaviour the old ad-hoc
    /// `eprintln!` diagnostics had.
    pub obs: Option<Obs>,
}

impl SweepOptions {
    /// No checkpointing (the default).
    #[must_use]
    pub fn off() -> Self {
        SweepOptions { mode: CheckpointMode::Off, ..SweepOptions::default() }
    }

    /// Resume from the journal if one exists.
    #[must_use]
    pub fn resume() -> Self {
        SweepOptions { mode: CheckpointMode::Resume, ..SweepOptions::default() }
    }

    /// Discard any stale journal and start over.
    #[must_use]
    pub fn fresh() -> Self {
        SweepOptions { mode: CheckpointMode::Fresh, ..SweepOptions::default() }
    }

    /// Pins the journal directory (tests; tools with their own layout).
    #[must_use]
    pub fn in_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.dir = Some(dir.into());
        self
    }

    /// Arms a deterministic fault-injection plan (chaos campaigns only).
    #[must_use]
    pub fn with_chaos(mut self, plan: FaultPlan) -> Self {
        self.chaos = Some(plan);
        self
    }

    /// Also write the legacy-format JSONL sidecar next to the binary
    /// journal (the `--debug-journal` CLI flag).
    #[must_use]
    pub fn with_debug_journal(mut self) -> Self {
        self.debug_journal = true;
        self
    }

    /// Routes checkpoint warnings and counters through `obs` instead of
    /// the process-wide default.
    #[must_use]
    pub fn with_obs(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// The effective observability handle: the attached one, else the
    /// process-wide default (warnings to stderr).
    #[must_use]
    pub fn effective_obs(&self) -> &Obs {
        self.obs.as_ref().unwrap_or_else(|| serr_obs::global())
    }
}

/// One failed design point of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// Input-order index of the failed point.
    pub index: usize,
    /// What went wrong: [`SerrError::PointFailed`] for a panic, or the
    /// point's own typed error.
    pub error: SerrError,
}

/// The outcome of a fault-tolerant sweep.
#[derive(Debug, Clone)]
pub struct SweepReport<R> {
    /// Completed rows in input order (failed points are absent).
    pub rows: Vec<R>,
    /// Failed points, ascending by index.
    pub failures: Vec<PointFailure>,
    /// Points restored from the journal without recomputation.
    pub resumed: usize,
    /// Points computed (successfully) in this run.
    pub computed: usize,
}

impl<R> SweepReport<R> {
    /// Collapses the report into the classic all-or-nothing shape: the rows
    /// if every point succeeded, otherwise the first failure in input order.
    ///
    /// # Errors
    ///
    /// Returns the lowest-index [`PointFailure`]'s error.
    pub fn into_result(self) -> Result<Vec<R>, SerrError> {
        match self.failures.into_iter().next() {
            None => Ok(self.rows),
            Some(f) => Err(f.error),
        }
    }
}

/// A row type that can round-trip through the checkpoint journal.
///
/// Implementations must be lossless for every field that feeds a report:
/// `from_journal(&to_journal(row))` must reconstruct `row` bit-for-bit
/// (floats included — the binary journal carries raw `f64` bits, and the
/// legacy JSONL sidecar uses shortest-round-trip formatting).
pub trait JournalRow: Sized {
    /// Encodes the row as a JSON value (one journal record's row payload).
    fn to_journal(&self) -> Json;
    /// Decodes a row; `None` (schema mismatch, missing field) means the
    /// journal entry is discarded and the point recomputed.
    fn from_journal(v: &Json) -> Option<Self>;
}

/// The journal directory: `SERR_CHECKPOINT_DIR` if set, else
/// `target/serr-checkpoints` relative to the working directory.
#[must_use]
pub fn default_journal_dir() -> PathBuf {
    match std::env::var_os("SERR_CHECKPOINT_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => PathBuf::from("target").join("serr-checkpoints"),
    }
}

/// FNV-1a fingerprint over a list of string parts, with a separator fold so
/// part boundaries matter (`["ab","c"] != ["a","bc"]`). Keys sweeps to
/// their configuration: same kind + config + point list → same journal.
#[must_use]
pub fn fingerprint(parts: &[&str]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET;
    for part in parts {
        for &b in part.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(PRIME);
        }
        h = (h ^ 0xff).wrapping_mul(PRIME);
    }
    h
}

/// The binary journal file path for `(kind, fingerprint)` under `dir`.
#[must_use]
pub fn journal_path(dir: &Path, kind: &str, fingerprint: u64) -> PathBuf {
    dir.join(format!("{kind}-{fingerprint:016x}.store"))
}

/// The legacy JSONL journal path for `(kind, fingerprint)` under `dir` —
/// the migration source, and the debug sidecar's location.
#[must_use]
pub fn legacy_journal_path(dir: &Path, kind: &str, fingerprint: u64) -> PathBuf {
    dir.join(format!("{kind}-{fingerprint:016x}.jsonl"))
}

/// The advisory lock file guarding a journal: the journal path with a
/// `.lock` suffix appended.
#[must_use]
pub fn journal_lock_path(journal: &Path) -> PathBuf {
    let mut os = journal.as_os_str().to_owned();
    os.push(".lock");
    PathBuf::from(os)
}

/// The legacy per-line integrity checksum: an FNV-1a fingerprint over the
/// point index (decimal) and the row's canonical JSON. Still computed for
/// migration verification and the debug sidecar.
fn line_checksum(index: usize, row_json: &str) -> u64 {
    fingerprint(&[&index.to_string(), row_json])
}

/// One legacy-format journal line (also the debug sidecar line format).
fn legacy_line(index: usize, row_json: &str) -> String {
    let ck = line_checksum(index, row_json);
    format!("{{\"i\":{index},\"ck\":\"{ck:016x}\",\"row\":{row_json}}}")
}

/// Parses legacy JSONL journal text, dropping malformed lines — including
/// a final line torn by a crash mid-append — and lines whose checksum does
/// not match their content. Exactly the legacy reader's semantics.
fn parse_legacy_lines(text: &str) -> BTreeMap<usize, Json> {
    let mut completed = BTreeMap::new();
    for line in text.lines() {
        let Some(entry) = Json::parse(line) else { continue };
        let Some(i) = entry.get("i").and_then(Json::as_usize) else { continue };
        let Some(row) = entry.get("row") else { continue };
        let Some(ck) = entry.get("ck").and_then(Json::as_str) else { continue };
        // Re-serialization is canonical (shortest-round-trip floats), so a
        // checksum over the parsed row matches the written line unless the
        // bytes changed underneath it.
        if ck != format!("{:016x}", line_checksum(i, &row.to_json())) {
            continue;
        }
        completed.insert(i, row.clone());
    }
    completed
}

/// One binary journal record: varint point index + binary JSON row.
fn encode_record(index: usize, row: &Json) -> Vec<u8> {
    let mut buf = Vec::new();
    varint::write_u64(&mut buf, index as u64);
    JsonSerializer.serialize(row, &mut buf).expect("binary json encoding is infallible");
    buf
}

/// Decodes one journal record; `None` (bad varint, corrupt row encoding,
/// trailing bytes) means the record is dropped and its point recomputes.
fn decode_record(mut bytes: &[u8]) -> Option<(usize, Json)> {
    let index = varint::read_u64(&mut bytes).ok()?;
    let index = usize::try_from(index).ok()?;
    let row = JsonDeserializer.deserialize(&mut bytes).ok()?;
    bytes.is_empty().then_some((index, row))
}

/// Whether the process named in `lock_path` is provably dead, so the lock
/// is stale and may be reclaimed. An unreadable or unparsable lock file
/// (torn write) also counts as stale. Without a `/proc` filesystem,
/// liveness cannot be checked, so a well-formed lock is assumed live.
fn lock_holder_is_dead(lock_path: &Path) -> bool {
    let Some(pid) = fs::read_to_string(lock_path).ok().and_then(|s| s.trim().parse::<u32>().ok())
    else {
        return true;
    };
    let proc_root = Path::new("/proc");
    proc_root.is_dir() && !proc_root.join(pid.to_string()).is_dir()
}

/// Takes the advisory lock for a journal, reclaiming a stale holder once.
fn acquire_journal_lock(lock_path: &Path) -> Result<(), SerrError> {
    for attempt in 0..2u8 {
        match OpenOptions::new().write(true).create_new(true).open(lock_path) {
            Ok(mut f) => {
                // Best-effort PID stamp: a missing stamp reads as a torn
                // (stale) lock, which is the safe direction.
                let _ = write!(f, "{}", std::process::id());
                let _ = f.sync_data();
                return Ok(());
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if attempt == 0 && lock_holder_is_dead(lock_path) {
                    let _ = fs::remove_file(lock_path);
                    continue;
                }
                return Err(SerrError::JournalLocked { path: lock_path.display().to_string() });
            }
            Err(e) => return Err(SerrError::io("create journal lock", e.to_string())),
        }
    }
    Err(SerrError::JournalLocked { path: lock_path.display().to_string() })
}

/// An append-only, fsync'd binary checkpoint journal for one sweep, held
/// under an advisory lock that is released when the journal drops.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    legacy_path: PathBuf,
    lock_path: PathBuf,
    store: Mutex<PageJournal>,
    debug: Option<Mutex<File>>,
    completed: BTreeMap<usize, Json>,
}

impl Journal {
    /// Opens (or creates) the journal for `(kind, fingerprint)` under
    /// `dir`, loading previously completed points. With `fresh`, any
    /// existing journal (and legacy sidecar) is deleted first.
    ///
    /// A torn final page (crash mid-append) is truncated away; a page
    /// damaged in place stops the scan there, so the valid prefix resumes
    /// and the rest recomputes. A legacy `.jsonl` journal with no binary
    /// sibling is migrated once (checksum-verified line by line, then the
    /// written store is re-read and verified) before the legacy file is
    /// removed.
    ///
    /// # Errors
    ///
    /// [`SerrError::JournalLocked`] when another live process holds the
    /// journal's advisory lock (fatal: two writers would corrupt each
    /// other's resume state); [`SerrError::StoreCorrupt`] /
    /// [`SerrError::StoreVersion`] when the store header is damaged or
    /// claims a foreign format version (deterministic — retrying cannot
    /// help; callers reset the journal instead); [`SerrError::Io`] for
    /// filesystem errors — callers degrade the latter to checkpoint-less
    /// operation rather than failing the sweep.
    pub fn open(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
    ) -> Result<Journal, SerrError> {
        Self::open_inner(dir, kind, fingerprint, fresh)
    }

    /// [`Journal::open`] wrapped in [`retry_with_backoff`]: a journal
    /// locked by a process that is just shutting down (the common transient
    /// — e.g. a draining service handing over to its replacement) is
    /// retried on the bounded, jitter-deterministic schedule, as is a
    /// transient filesystem error. A lock held by a *live* writer still
    /// defeats every attempt and returns the same typed error as before.
    ///
    /// Deterministic corruption ([`SerrError::StoreCorrupt`] /
    /// [`SerrError::StoreVersion`]) is **not** retried: the bytes on disk
    /// do not change between attempts, so retrying only burns the backoff
    /// schedule before the caller learns it must reset the journal. The
    /// error surfaces immediately, unchanged from the first attempt.
    ///
    /// # Errors
    ///
    /// [`SerrError::JournalLocked`] once retries are exhausted, corruption
    /// errors immediately, or any other [`Journal::open`] error unchanged
    /// from the first try.
    pub fn open_with_retry(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
        policy: &BackoffPolicy,
    ) -> Result<Journal, SerrError> {
        Self::open_with_retry_sleep(dir, kind, fingerprint, fresh, policy, std::thread::sleep)
    }

    /// [`Journal::open_with_retry`] with an injectable sleep, so tests can
    /// assert the retry schedule (corruption must not sleep at all).
    pub(crate) fn open_with_retry_sleep(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
        policy: &BackoffPolicy,
        sleep: impl FnMut(std::time::Duration),
    ) -> Result<Journal, SerrError> {
        retry_with_backoff(
            policy,
            |_| Self::open_inner(dir, kind, fingerprint, fresh),
            Self::open_retryable,
            sleep,
        )
    }

    /// Which open errors are worth retrying: lock contention and transient
    /// I/O. Deterministic corruption is excluded — the same bytes fail the
    /// same way on every attempt.
    fn open_retryable(e: &SerrError) -> bool {
        !e.is_deterministic_corruption()
            && matches!(e, SerrError::JournalLocked { .. } | SerrError::Io { .. })
    }

    fn open_inner(
        dir: &Path,
        kind: &str,
        fingerprint: u64,
        fresh: bool,
    ) -> Result<Journal, SerrError> {
        fs::create_dir_all(dir)
            .map_err(|e| SerrError::io("create checkpoint directory", e.to_string()))?;
        let path = journal_path(dir, kind, fingerprint);
        let legacy_path = legacy_journal_path(dir, kind, fingerprint);
        let lock_path = journal_lock_path(&path);
        acquire_journal_lock(&lock_path)?;
        match Self::open_locked(&path, &legacy_path, fresh) {
            Ok((store, completed)) => Ok(Journal {
                path,
                legacy_path,
                lock_path,
                store: Mutex::new(store),
                debug: None,
                completed,
            }),
            Err(e) => {
                let _ = fs::remove_file(&lock_path);
                Err(e)
            }
        }
    }

    /// The fallible tail of [`Journal::open`], split out so the caller can
    /// release the just-taken lock on any error.
    fn open_locked(
        path: &Path,
        legacy_path: &Path,
        fresh: bool,
    ) -> Result<(PageJournal, BTreeMap<usize, Json>), SerrError> {
        if fresh {
            for p in [path, legacy_path] {
                match fs::remove_file(p) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(SerrError::io("discard stale journal", e.to_string())),
                }
            }
        }

        // One-time migration: a legacy JSONL journal with no binary sibling
        // is absorbed into a fresh store, verified, and then removed.
        let migrate = !fresh && !path.exists() && legacy_path.exists();
        let (mut store, recovery) =
            PageJournal::open(path, store_kind::CHECKPOINT_JOURNAL, CHECKPOINT_APP)?;

        let mut completed = BTreeMap::new();
        if migrate {
            let text = fs::read_to_string(legacy_path)
                .map_err(|e| SerrError::io("read legacy journal", e.to_string()))?;
            completed = parse_legacy_lines(&text);
            let records: Vec<Vec<u8>> =
                completed.iter().map(|(&i, row)| encode_record(i, row)).collect();
            let refs: Vec<&[u8]> = records.iter().map(Vec::as_slice).collect();
            store.append(&refs)?;
            Self::verify_migration(path, &completed)?;
            // Read once, migrated, verified — the legacy file is done.
            // (Best-effort: a leftover file is ignored on future opens,
            // because the store now exists.)
            let _ = fs::remove_file(legacy_path);
        } else {
            for rec in &recovery.records {
                if let Some((i, row)) = decode_record(rec) {
                    completed.insert(i, row);
                }
            }
        }
        Ok((store, completed))
    }

    /// Re-reads a just-migrated store and checks it decodes to exactly the
    /// rows parsed from the legacy journal.
    fn verify_migration(path: &Path, expected: &BTreeMap<usize, Json>) -> Result<(), SerrError> {
        let (_, records, truncated) = serr_store::pages::read_store(path)?;
        let mut decoded = BTreeMap::new();
        for rec in &records {
            if let Some((i, row)) = decode_record(rec) {
                decoded.insert(i, row);
            }
        }
        if truncated || &decoded != expected {
            return Err(SerrError::store_corrupt(
                path.display().to_string(),
                "migrated store does not round-trip the legacy rows",
            ));
        }
        Ok(())
    }

    /// Switches on the legacy-format JSONL sidecar (debugging aid). If the
    /// sidecar does not exist yet, already-completed points are dumped
    /// first, so the file is a complete legacy-format mirror of the store.
    ///
    /// # Errors
    ///
    /// [`SerrError::Io`] when the sidecar cannot be created; callers treat
    /// that as a degraded (binary-only) journal, not a failure.
    pub fn enable_debug_jsonl(&mut self) -> Result<(), SerrError> {
        let existed = self.legacy_path.exists();
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.legacy_path)
            .map_err(|e| SerrError::io("open debug journal sidecar", e.to_string()))?;
        if !existed {
            for (&i, row) in &self.completed {
                let line = legacy_line(i, &row.to_json());
                file.write_all(line.as_bytes())
                    .and_then(|()| file.write_all(b"\n"))
                    .map_err(|e| SerrError::io("seed debug journal sidecar", e.to_string()))?;
            }
        }
        self.debug = Some(Mutex::new(file));
        Ok(())
    }

    /// Points already recorded, by input index.
    #[must_use]
    pub fn completed(&self) -> &BTreeMap<usize, Json> {
        &self.completed
    }

    /// The binary journal file path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The legacy/sidecar JSONL path next to the binary journal.
    #[must_use]
    pub fn legacy_path(&self) -> &Path {
        &self.legacy_path
    }

    /// Appends one completed point as its own fsynced page, so a subsequent
    /// crash cannot lose it (and can tear at most this page, which recovery
    /// truncates away).
    ///
    /// # Errors
    ///
    /// Propagates write/sync errors; the sweep runner logs and continues
    /// (losing checkpointing for that point, not the point itself).
    pub fn record(&self, index: usize, row: &Json) -> Result<(), SerrError> {
        let record = encode_record(index, row);
        {
            // A poisoned lock only means another worker panicked *between*
            // journal writes; the file itself is page-consistent, so keep
            // going.
            let mut store = self.store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            store.append(&[record.as_slice()])?;
        }
        if let Some(debug) = &self.debug {
            // Best-effort mirror: sidecar damage never costs checkpointing.
            let line = legacy_line(index, &row.to_json());
            let mut file = debug.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = file.write_all(line.as_bytes()).and_then(|()| file.write_all(b"\n"));
        }
        Ok(())
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.lock_path);
    }
}

/// Runs a fault-tolerant, checkpointed sweep over `items`.
///
/// Completed points are restored from the journal (when `opts.mode` says
/// so) without calling `eval`; the rest run in parallel on up to `threads`
/// workers via [`par::try_par_map`], each success being journaled before
/// the report is assembled. Panics and errors in `eval` poison only their
/// own point.
///
/// If the journal cannot be opened (read-only filesystem, permission
/// error, or an injected open fault), the sweep still runs — it just
/// doesn't checkpoint; a `checkpoint.journal_unavailable` warning event is
/// emitted through `opts.obs` (or the process-wide default sink, which
/// renders warnings to stderr). A journal whose store header is damaged or
/// claims a foreign format version is **reset**: a
/// `checkpoint.journal_reset` warning is emitted, the store is recreated
/// fresh, and every point recomputes — degraded, never silently wrong.
/// Resume/compute/failure counts land in the same handle's metrics
/// registry.
///
/// # Errors
///
/// [`SerrError::JournalLocked`] when another live process holds the
/// journal's advisory lock. Every other journal problem degrades instead
/// of failing.
pub fn run_sweep<T, R, F>(
    kind: &str,
    fingerprint: u64,
    items: &[T],
    threads: usize,
    opts: &SweepOptions,
    eval: F,
) -> Result<SweepReport<R>, SerrError>
where
    T: Sync,
    R: JournalRow + Send,
    F: Fn(usize, &T) -> Result<R, SerrError> + Sync,
{
    run_sweep_prepared(
        kind,
        fingerprint,
        items,
        threads,
        opts,
        |_| (),
        |i, item, (): &()| eval(i, item),
    )
}

/// [`run_sweep`] with a group-level preparation step that runs **once**
/// over the still-pending point indices before any `eval` call.
///
/// This is how sweep runners amortize shared work across a group of points
/// — compiling one trace, running one shared-stream Monte Carlo kernel —
/// without giving up checkpoint semantics: `prepare` only sees indices the
/// journal did *not* restore, so a fully resumed sweep never pays for it,
/// and `eval` receives the prepared value by reference alongside each
/// point. A panic inside `prepare` fails **every** pending point with the
/// panic payload (a corrupted shared input must degrade all of its
/// dependents, never a silent subset) while resumed rows survive
/// untouched.
///
/// # Errors
///
/// Same contract as [`run_sweep`]: only [`SerrError::JournalLocked`] is
/// fatal.
pub fn run_sweep_prepared<T, R, P, Prep, F>(
    kind: &str,
    fingerprint: u64,
    items: &[T],
    threads: usize,
    opts: &SweepOptions,
    prepare: Prep,
    eval: F,
) -> Result<SweepReport<R>, SerrError>
where
    T: Sync,
    R: JournalRow + Send,
    P: Sync,
    Prep: FnOnce(&[usize]) -> P,
    F: Fn(usize, &T, &P) -> Result<R, SerrError> + Sync,
{
    let injected_io = opts.chaos.and_then(|p| p.io_fault_site());
    let obs = opts.effective_obs();
    // Typed replacements for the old `eprintln!` warnings: same severity
    // (the default global sink renders warnings to stderr), but structured,
    // keyed by point index, and capturable by tests and `--metrics` files.
    let warn_open = |reason: String| {
        obs.emit(
            Event::warn("checkpoint.journal_unavailable", 0)
                .with("sweep", kind)
                .with("reason", reason)
                .with("action", "sweep runs without checkpointing"),
        );
    };
    let journal = match opts.mode {
        CheckpointMode::Off => None,
        CheckpointMode::Resume | CheckpointMode::Fresh => {
            let dir = opts.dir.clone().unwrap_or_else(default_journal_dir);
            let fresh = opts.mode == CheckpointMode::Fresh;
            if injected_io == Some(IoSite::Open) {
                warn_open("injected i/o fault at open".to_owned());
                None
            } else {
                // A lock holder that is mid-shutdown clears within the
                // bounded retry schedule; a genuinely live writer defeats
                // every attempt and the typed error stays fatal.
                let policy = BackoffPolicy::journal(fingerprint);
                let open =
                    |fresh| Journal::open_with_retry(&dir, kind, fingerprint, fresh, &policy);
                match open(fresh) {
                    Ok(j) => Some(j),
                    Err(e @ SerrError::JournalLocked { .. }) => return Err(e),
                    Err(e) if e.is_deterministic_corruption() => {
                        // Unusable bytes: reset rather than trust them.
                        // All points recompute — degraded, never silent.
                        obs.emit(
                            Event::warn("checkpoint.journal_reset", 0)
                                .with("sweep", kind)
                                .with("reason", e.to_string())
                                .with("action", "journal reset; every point recomputes"),
                        );
                        match open(true) {
                            Ok(j) => Some(j),
                            Err(e @ SerrError::JournalLocked { .. }) => return Err(e),
                            Err(e) => {
                                warn_open(e.to_string());
                                None
                            }
                        }
                    }
                    Err(e) => {
                        warn_open(e.to_string());
                        None
                    }
                }
            }
        }
    };
    let journal = journal.map(|mut j| {
        if opts.debug_journal {
            if let Err(e) = j.enable_debug_jsonl() {
                obs.emit(
                    Event::warn("checkpoint.debug_sidecar_failed", 0)
                        .with("sweep", kind)
                        .with("reason", e.to_string())
                        .with("action", "journal stays binary-only"),
                );
            }
        }
        j
    });

    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    slots.resize_with(items.len(), || None);
    let mut resumed = 0usize;
    if let Some(j) = &journal {
        for (&i, row) in j.completed() {
            if i < items.len() {
                if let Some(decoded) = R::from_journal(row) {
                    slots[i] = Some(decoded);
                    resumed += 1;
                }
            }
        }
    }

    let pending: Vec<usize> = (0..items.len()).filter(|&i| slots[i].is_none()).collect();

    // Group-level preparation sees only the indices the journal did not
    // restore. A panic here poisons every pending point at once — shared
    // state that is wrong for one dependent is wrong for all of them —
    // while resumed rows stay intact.
    let prepared =
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prepare(&pending))) {
            Ok(p) => p,
            Err(payload) => {
                let payload = par::panic_payload_string(payload.as_ref());
                let failures: Vec<PointFailure> = pending
                    .iter()
                    .map(|&i| PointFailure {
                        index: i,
                        error: SerrError::PointFailed { index: i, payload: payload.clone() },
                    })
                    .collect();
                let metrics = obs.metrics();
                metrics.add("checkpoint.resumed", resumed as u64);
                metrics.add("checkpoint.computed", 0);
                metrics.add("checkpoint.failed", failures.len() as u64);
                return Ok(SweepReport {
                    rows: slots.into_iter().flatten().collect(),
                    failures,
                    resumed,
                    computed: 0,
                });
            }
        };

    // Record-failure events carry the point index as their sequence key:
    // workers emit concurrently, so sink order is nondeterministic, but the
    // key set for a given failure pattern is thread-count invariant.
    let warn_record = |i: usize, reason: String| {
        obs.emit(
            Event::warn("checkpoint.record_failed", i as u64)
                .with("sweep", kind)
                .with("point", i)
                .with("reason", reason),
        );
    };
    let results = par::try_par_map(&pending, threads, |_, &i| {
        let row = eval(i, &items[i], &prepared)?;
        if let Some(j) = &journal {
            if injected_io == Some(IoSite::Record) {
                warn_record(i, "injected i/o fault at record".to_owned());
            } else if let Err(e) = j.record(i, &row.to_journal()) {
                warn_record(i, e.to_string());
            }
        }
        Ok(row)
    });

    let mut failures = Vec::new();
    let mut computed = 0usize;
    for (&orig, res) in pending.iter().zip(results) {
        match res {
            Ok(row) => {
                slots[orig] = Some(row);
                computed += 1;
            }
            // try_par_map indexes into `pending`; report the original
            // position in the sweep's point list instead.
            Err(SerrError::PointFailed { payload, .. }) => failures.push(PointFailure {
                index: orig,
                error: SerrError::PointFailed { index: orig, payload },
            }),
            Err(error) => failures.push(PointFailure { index: orig, error }),
        }
    }
    failures.sort_by_key(|f| f.index);

    let metrics = obs.metrics();
    metrics.add("checkpoint.resumed", resumed as u64);
    metrics.add("checkpoint.computed", computed as u64);
    metrics.add("checkpoint.failed", failures.len() as u64);

    Ok(SweepReport { rows: slots.into_iter().flatten().collect(), failures, resumed, computed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[derive(Debug, Clone, PartialEq)]
    struct TestRow {
        idx: u64,
        value: f64,
        label: String,
    }

    impl JournalRow for TestRow {
        fn to_journal(&self) -> Json {
            Json::Obj(vec![
                ("idx".to_owned(), Json::Num(self.idx as f64)),
                ("value".to_owned(), Json::Num(self.value)),
                ("label".to_owned(), Json::Str(self.label.clone())),
            ])
        }
        fn from_journal(v: &Json) -> Option<Self> {
            Some(TestRow {
                idx: v.get("idx")?.as_u64()?,
                value: v.get("value")?.as_f64()?,
                label: v.get("label")?.as_str()?.to_owned(),
            })
        }
    }

    /// A deliberately awkward float per index, to catch any formatting
    /// loss in the journal round trip.
    fn eval_row(i: usize, x: &u64) -> Result<TestRow, SerrError> {
        let value = (*x as f64).sqrt() * 0.1 + 0.2 + 1.0 / (*x as f64 + 3.0);
        Ok(TestRow { idx: *x, value, label: format!("point-{i}") })
    }

    fn fresh_test_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("serr-checkpoint-test-{}-{tag}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn assert_rows_bit_identical(a: &[TestRow], b: &[TestRow]) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.idx, y.idx);
            assert_eq!(x.label, y.label);
            assert_eq!(
                x.value.to_bits(),
                y.value.to_bits(),
                "row {} not bit-identical: {} vs {}",
                x.idx,
                x.value,
                y.value
            );
        }
    }

    /// Writes a legacy-format JSONL journal by hand (the files older
    /// releases produced), for the migration tests.
    fn write_legacy_journal(dir: &Path, kind: &str, fp: u64, rows: &[(usize, Json)]) {
        fs::create_dir_all(dir).unwrap();
        let path = legacy_journal_path(dir, kind, fp);
        let mut file = OpenOptions::new().create(true).append(true).open(&path).unwrap();
        for (i, row) in rows {
            writeln!(file, "{}", legacy_line(*i, &row.to_json())).unwrap();
        }
    }

    #[test]
    fn off_mode_computes_everything_and_journals_nothing() {
        let items: Vec<u64> = (0..10).collect();
        let calls = AtomicUsize::new(0);
        let report = run_sweep("t-off", 1, &items, 4, &SweepOptions::off(), |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 10);
        assert_eq!(report.rows.len(), 10);
        assert_eq!(report.resumed, 0);
        assert_eq!(report.computed, 10);
        assert!(report.failures.is_empty());
        // Rows come back in input order.
        for (i, row) in report.rows.iter().enumerate() {
            assert_eq!(row.idx, i as u64);
        }
    }

    #[test]
    fn interrupted_sweep_resumes_without_recomputing_completed_points() {
        let dir = fresh_test_dir("resume");
        let items: Vec<u64> = (0..12).collect();
        let opts = SweepOptions::resume().in_dir(&dir);
        let fp = fingerprint(&["resume-test", "v1"]);

        // Uninterrupted reference run (no journal involved).
        let reference =
            run_sweep("t-resume", fp, &items, 4, &SweepOptions::off(), eval_row).unwrap().rows;

        // "Killed" run: points >= 7 fail, so the journal records 0..=6 only
        // — the on-disk state a mid-run SIGKILL leaves behind.
        let partial = run_sweep("t-resume", fp, &items, 4, &opts, |i, x| {
            if *x >= 7 {
                return Err(SerrError::invalid_config("simulated crash"));
            }
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(partial.rows.len(), 7);
        assert_eq!(partial.failures.len(), 5);

        // Re-invocation: only the 5 missing points are recomputed...
        let calls = AtomicUsize::new(0);
        let second = run_sweep("t-resume", fp, &items, 4, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 5, "resumed points were recomputed");
        assert_eq!(second.resumed, 7);
        assert_eq!(second.computed, 5);
        assert!(second.failures.is_empty());
        assert_rows_bit_identical(&second.rows, &reference);

        // ...and a third run recomputes zero points, bit-identically.
        let calls = AtomicUsize::new(0);
        let third = run_sweep("t-resume", fp, &items, 4, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(third.resumed, 12);
        assert_rows_bit_identical(&third.rows, &reference);

        // The advisory lock is released between runs and after the last.
        let lock = journal_lock_path(&journal_path(&dir, "t-resume", fp));
        assert!(!lock.exists(), "lock file left behind: {}", lock.display());

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepared_sweep_sees_only_pending_indices_after_resume() {
        let dir = fresh_test_dir("prepared");
        let items: Vec<u64> = (0..10).collect();
        let opts = SweepOptions::resume().in_dir(&dir);
        let fp = fingerprint(&["prepared-test", "v1"]);

        // First run journals only the even points.
        run_sweep("t-prepared", fp, &items, 4, &opts, |i, x| {
            if x % 2 == 1 {
                return Err(SerrError::invalid_config("odd points fail"));
            }
            eval_row(i, x)
        })
        .unwrap();

        // Resumed run: prepare receives exactly the odd (pending) indices
        // and its product is visible to every eval call.
        let report = run_sweep_prepared(
            "t-prepared",
            fp,
            &items,
            4,
            &opts,
            |pending: &[usize]| {
                assert_eq!(pending, &[1, 3, 5, 7, 9]);
                pending.iter().map(|&i| i as u64 * 100).collect::<Vec<u64>>()
            },
            |i, x, shared: &Vec<u64>| {
                let slot = shared.iter().position(|&v| v == i as u64 * 100);
                assert!(slot.is_some(), "eval saw a point prepare never did: {i}");
                eval_row(i, x)
            },
        )
        .unwrap();
        assert_eq!(report.resumed, 5);
        assert_eq!(report.computed, 5);
        assert!(report.failures.is_empty());
        assert_eq!(report.rows.len(), 10);

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prepare_panic_fails_every_pending_point_but_keeps_resumed_rows() {
        let dir = fresh_test_dir("prepared-panic");
        let items: Vec<u64> = (0..8).collect();
        let opts = SweepOptions::resume().in_dir(&dir);
        let fp = fingerprint(&["prepared-panic-test"]);

        // Journal the first half.
        run_sweep("t-prep-panic", fp, &items, 2, &opts, |i, x| {
            if *x >= 4 {
                return Err(SerrError::invalid_config("later"));
            }
            eval_row(i, x)
        })
        .unwrap();

        // A panicking prepare degrades every still-pending point with the
        // payload; the journaled rows come back untouched and eval never
        // runs.
        let calls = AtomicUsize::new(0);
        let report = run_sweep_prepared(
            "t-prep-panic",
            fp,
            &items,
            2,
            &opts,
            |_: &[usize]| -> () { panic!("shared trace corrupted") },
            |i, x, (): &()| {
                calls.fetch_add(1, Ordering::Relaxed);
                eval_row(i, x)
            },
        )
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0, "eval ran after prepare panicked");
        assert_eq!(report.resumed, 4);
        assert_eq!(report.computed, 0);
        assert_eq!(report.rows.len(), 4);
        assert_eq!(report.failures.len(), 4);
        for (f, expect) in report.failures.iter().zip([4usize, 5, 6, 7]) {
            assert_eq!(f.index, expect);
            match &f.error {
                SerrError::PointFailed { index, payload } => {
                    assert_eq!(*index, expect);
                    assert!(payload.contains("shared trace corrupted"), "payload: {payload}");
                }
                other => panic!("expected PointFailed, got {other:?}"),
            }
        }

        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fresh_mode_discards_the_journal() {
        let dir = fresh_test_dir("fresh");
        let items: Vec<u64> = (0..6).collect();
        let fp = fingerprint(&["fresh-test"]);
        let resume = SweepOptions::resume().in_dir(&dir);
        run_sweep("t-fresh", fp, &items, 2, &resume, eval_row).unwrap();

        let calls = AtomicUsize::new(0);
        let fresh = SweepOptions::fresh().in_dir(&dir);
        let report = run_sweep("t-fresh", fp, &items, 2, &fresh, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 6, "--fresh must recompute everything");
        assert_eq!(report.resumed, 0);
        assert_eq!(report.computed, 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_jsonl_journal_migrates_once_with_bad_lines_recomputed() {
        let dir = fresh_test_dir("migrate");
        let items: Vec<u64> = (0..4).collect();
        let fp = fingerprint(&["migrate-test"]);

        // Two good legacy lines, one malformed, one torn mid-append.
        let good: Vec<(usize, Json)> =
            (0..2).map(|i| (i, eval_row(i, &(i as u64)).unwrap().to_journal())).collect();
        write_legacy_journal(&dir, "t-mig", fp, &good);
        let legacy = legacy_journal_path(&dir, "t-mig", fp);
        let mut file = OpenOptions::new().append(true).open(&legacy).unwrap();
        writeln!(file, "{}", r#"{"i":2,"row":{"idx":2,"value":"not a number","label":"x"}}"#)
            .unwrap();
        write!(file, "{}", r#"{"i":3,"ck":"00","row":{"idx":3,"va"#).unwrap(); // torn
        drop(file);

        let calls = AtomicUsize::new(0);
        let opts = SweepOptions::resume().in_dir(&dir);
        let report = run_sweep("t-mig", fp, &items, 1, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.resumed, 2, "good legacy lines resume");
        assert_eq!(calls.load(Ordering::Relaxed), 2, "bad legacy lines recompute");
        assert_eq!(report.rows.len(), 4);
        assert!(journal_path(&dir, "t-mig", fp).exists(), "migration writes the binary store");
        assert!(!legacy.exists(), "the legacy journal is read once, then removed");

        // The migrated + freshly-recorded store resumes everything.
        let calls = AtomicUsize::new(0);
        let second = run_sweep("t-mig", fp, &items, 1, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(second.resumed, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn poisoned_point_is_reported_with_its_input_index() {
        let items: Vec<u64> = (0..8).collect();
        let report = run_sweep("t-poison", 1, &items, 3, &SweepOptions::off(), |i, x| {
            assert!(*x != 5, "point {x} is poisoned");
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.rows.len(), 7);
        let expected: Vec<u64> = (0..8).filter(|&x| x != 5).collect();
        assert_eq!(report.rows.iter().map(|r| r.idx).collect::<Vec<_>>(), expected);
        assert_eq!(report.failures.len(), 1);
        let failure = &report.failures[0];
        assert_eq!(failure.index, 5);
        match &failure.error {
            SerrError::PointFailed { index: 5, payload } => {
                assert!(payload.contains("point 5 is poisoned"), "payload: {payload}");
            }
            other => panic!("expected PointFailed {{ index: 5, .. }}, got {other:?}"),
        }
        // into_result surfaces the failure as a typed error.
        assert!(matches!(report.into_result(), Err(SerrError::PointFailed { index: 5, .. })));
    }

    #[test]
    fn fingerprints_respect_part_boundaries() {
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert_ne!(fingerprint(&["fig5"]), fingerprint(&["fig6a"]));
        assert_eq!(fingerprint(&["x", "y"]), fingerprint(&["x", "y"]));
    }

    #[test]
    fn journal_row_roundtrip_is_lossless() {
        let row = TestRow { idx: 42, value: 0.1 + 0.2, label: "λ \"quoted\"\n".to_owned() };
        let back = TestRow::from_journal(&row.to_journal()).unwrap();
        assert_eq!(back.label, row.label);
        assert_eq!(back.value.to_bits(), row.value.to_bits());
    }

    #[test]
    fn binary_record_roundtrip_is_lossless() {
        let row = eval_row(3, &9).unwrap().to_journal();
        let rec = encode_record(3, &row);
        let (i, back) = decode_record(&rec).expect("record decodes");
        assert_eq!(i, 3);
        assert_eq!(back, row);
        // Truncated and padded records are dropped, not trusted.
        assert!(decode_record(&rec[..rec.len() - 1]).is_none());
        let mut padded = rec.clone();
        padded.push(0);
        assert!(decode_record(&padded).is_none());
    }

    #[test]
    fn second_writer_on_a_live_journal_gets_the_typed_lock_error() {
        let dir = fresh_test_dir("lock");
        let items: Vec<u64> = (0..3).collect();
        let fp = fingerprint(&["lock-test"]);
        let held = Journal::open(&dir, "t-lock", fp, false).unwrap();

        // A sweep against the same journal must refuse, naming the lock.
        let opts = SweepOptions::resume().in_dir(&dir);
        match run_sweep("t-lock", fp, &items, 2, &opts, eval_row) {
            Err(SerrError::JournalLocked { path }) => {
                assert!(path.contains("t-lock"), "lock path should name the journal: {path}");
                assert!(path.ends_with(".lock"), "lock path: {path}");
            }
            other => panic!("expected JournalLocked, got {other:?}"),
        }
        // So must a direct second open.
        assert!(matches!(
            Journal::open(&dir, "t-lock", fp, false),
            Err(SerrError::JournalLocked { .. })
        ));

        // Dropping the holder releases the lock; the sweep then proceeds.
        drop(held);
        let report = run_sweep("t-lock", fp, &items, 2, &opts, eval_row).unwrap();
        assert_eq!(report.rows.len(), 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_with_retry_outlasts_a_holder_that_is_shutting_down() {
        let dir = fresh_test_dir("retry-open");
        let fp = fingerprint(&["retry-open-test"]);
        let held = Journal::open(&dir, "t-retry", fp, false).unwrap();

        // Release the lock partway through the retry schedule; the
        // contender's later attempt then succeeds where the first failed.
        let policy = BackoffPolicy::journal(fp);
        let release = std::thread::spawn(move || {
            std::thread::sleep(policy.delay(0) / 2);
            drop(held);
        });
        let j = Journal::open_with_retry(&dir, "t-retry", fp, false, &policy)
            .expect("retry must outlast a shutting-down holder");
        release.join().expect("release thread");
        drop(j);

        // A holder that never releases still defeats every attempt with
        // the same typed error the fail-fast path produced.
        let held = Journal::open(&dir, "t-retry", fp, false).unwrap();
        assert!(matches!(
            Journal::open_with_retry(&dir, "t-retry", fp, false, &policy),
            Err(SerrError::JournalLocked { .. })
        ));
        drop(held);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_with_retry_fails_corruption_immediately_without_sleeping() {
        let dir = fresh_test_dir("retry-corrupt");
        let fp = fingerprint(&["retry-corrupt-test"]);
        // A journal whose store header is damaged in place.
        let journal = Journal::open(&dir, "t-rc", fp, false).unwrap();
        journal.record(0, &eval_row(0, &0).unwrap().to_journal()).unwrap();
        drop(journal);
        let path = journal_path(&dir, "t-rc", fp);
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0x40; // magic byte
        fs::write(&path, &bytes).unwrap();

        // Deterministic corruption must not burn the backoff schedule:
        // zero sleeps, typed error from the first attempt.
        let policy = BackoffPolicy::journal(fp);
        let sleeps = AtomicUsize::new(0);
        let result = Journal::open_with_retry_sleep(&dir, "t-rc", fp, false, &policy, |_| {
            sleeps.fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            matches!(result, Err(SerrError::StoreCorrupt { .. })),
            "expected StoreCorrupt, got {result:?}"
        );
        assert_eq!(sleeps.load(Ordering::Relaxed), 0, "corruption retries cannot help");

        // Same for a structurally valid header claiming a future format.
        let mut bytes = fs::read(&path).unwrap();
        bytes[3] ^= 0x40; // restore magic
        serr_store::pages::forge_format_version(&mut bytes, serr_store::pages::FORMAT_VERSION + 9);
        fs::write(&path, &bytes).unwrap();
        let sleeps = AtomicUsize::new(0);
        let result = Journal::open_with_retry_sleep(&dir, "t-rc", fp, false, &policy, |_| {
            sleeps.fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            matches!(result, Err(SerrError::StoreVersion { .. })),
            "expected StoreVersion, got {result:?}"
        );
        assert_eq!(sleeps.load(Ordering::Relaxed), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn stale_lock_from_a_dead_process_is_reclaimed() {
        let dir = fresh_test_dir("stale");
        fs::create_dir_all(&dir).unwrap();
        let fp = fingerprint(&["stale-test"]);
        let lock = journal_lock_path(&journal_path(&dir, "t-stale", fp));
        // PID far above any real pid_max, so /proc/<pid> cannot exist.
        fs::write(&lock, "4000000000").unwrap();
        let j = Journal::open(&dir, "t-stale", fp, false).expect("stale lock must be reclaimed");
        drop(j);
        // A torn (unparsable) lock file is also stale.
        fs::write(&lock, "not a pid").unwrap();
        Journal::open(&dir, "t-stale", fp, false).expect("torn lock must be reclaimed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_journal_pages_fail_their_crc_and_recompute() {
        let dir = fresh_test_dir("crc");
        let items: Vec<u64> = (0..3).collect();
        let fp = fingerprint(&["crc-test"]);
        let journal = Journal::open(&dir, "t-crc", fp, false).unwrap();
        for i in 0..3usize {
            journal.record(i, &eval_row(i, &(i as u64)).unwrap().to_journal()).unwrap();
        }
        drop(journal);

        // Flip one byte inside row 1's page payload (its label string lands
        // verbatim in the binary encoding).
        let path = journal_path(&dir, "t-crc", fp);
        let mut bytes = fs::read(&path).unwrap();
        let needle = b"point-1";
        let at = bytes
            .windows(needle.len())
            .position(|w| w == needle)
            .expect("journal should hold row 1");
        bytes[at + 6] ^= 0x08; // "point-1" -> not "point-1"
        fs::write(&path, &bytes).unwrap();

        // The damaged page fails its CRC; the scan stops there, so row 0
        // resumes and rows 1..3 (the damaged page and its successors)
        // recompute. Prefix recovery trades later intact pages for never
        // trusting an unverifiable offset.
        let calls = AtomicUsize::new(0);
        let opts = SweepOptions::resume().in_dir(&dir);
        let report = run_sweep("t-crc", fp, &items, 1, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.resumed, 1, "the prefix before the damaged page resumes");
        assert_eq!(calls.load(Ordering::Relaxed), 2, "damaged page and successors recompute");
        assert_eq!(report.rows.len(), 3);
        assert_eq!(report.rows[1].label, "point-1", "recomputed row is correct");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_store_header_resets_the_journal_with_a_typed_warning() {
        let dir = fresh_test_dir("reset");
        let items: Vec<u64> = (0..4).collect();
        let fp = fingerprint(&["reset-test"]);
        let journal = Journal::open(&dir, "t-reset", fp, false).unwrap();
        for i in 0..4usize {
            journal.record(i, &eval_row(i, &(i as u64)).unwrap().to_journal()).unwrap();
        }
        drop(journal);
        let path = journal_path(&dir, "t-reset", fp);
        let mut bytes = fs::read(&path).unwrap();
        bytes[10] ^= 0xFF; // format-version field -> header CRC mismatch
        fs::write(&path, &bytes).unwrap();

        let (obs, sink) = Obs::memory();
        let calls = AtomicUsize::new(0);
        let opts = SweepOptions::resume().in_dir(&dir).with_obs(obs);
        let report = run_sweep("t-reset", fp, &items, 2, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(report.resumed, 0, "nothing from unverifiable bytes");
        assert_eq!(calls.load(Ordering::Relaxed), 4, "every point recomputes");
        let resets = sink.events_of("checkpoint.journal_reset");
        assert_eq!(resets.len(), 1);
        assert_eq!(resets[0].level, serr_obs::Level::Warn);

        // The reset journal is usable again: the next run resumes all 4.
        let opts = SweepOptions::resume().in_dir(&dir);
        let second = run_sweep("t-reset", fp, &items, 2, &opts, eval_row).unwrap();
        assert_eq!(second.resumed, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn debug_sidecar_mirrors_the_binary_journal_in_legacy_format() {
        let dir = fresh_test_dir("sidecar");
        let items: Vec<u64> = (0..5).collect();
        let fp = fingerprint(&["sidecar-test"]);
        let opts = SweepOptions::resume().in_dir(&dir).with_debug_journal();
        run_sweep("t-sc", fp, &items, 2, &opts, eval_row).unwrap();

        let sidecar = legacy_journal_path(&dir, "t-sc", fp);
        let text = fs::read_to_string(&sidecar).expect("sidecar exists");
        let parsed = parse_legacy_lines(&text);
        assert_eq!(parsed.len(), 5, "sidecar lines parse under legacy rules: {text}");

        // The sidecar decodes to exactly the rows the binary store holds —
        // and the binary store (not the sidecar) drives the resume.
        let journal = Journal::open(&dir, "t-sc", fp, false).unwrap();
        assert_eq!(journal.completed(), &parsed);
        drop(journal);

        // Resuming with the sidecar on seeds no duplicates and recomputes
        // nothing.
        let calls = AtomicUsize::new(0);
        let second = run_sweep("t-sc", fp, &items, 2, &opts, |i, x| {
            calls.fetch_add(1, Ordering::Relaxed);
            eval_row(i, x)
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 0);
        assert_eq!(second.resumed, 5);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_warnings_are_typed_events_not_stderr_noise() {
        use serr_inject::{FaultKind, FaultPlan};
        let dir = fresh_test_dir("obs-events");
        let items: Vec<u64> = (0..4).collect();
        let fp = fingerprint(&["obs-events-test"]);
        let plan_for = |site: IoSite| {
            (0..1_000u64)
                .map(|s| FaultPlan::new(s, FaultKind::CheckpointIo))
                .find(|p| p.io_fault_site() == Some(site))
                .expect("some seed selects the site")
        };

        // Open fault: one journal_unavailable warning, no record events.
        let (obs, sink) = Obs::memory();
        let opts = SweepOptions::resume()
            .in_dir(&dir)
            .with_chaos(plan_for(IoSite::Open))
            .with_obs(obs.clone());
        run_sweep("t-obs-ev", fp, &items, 2, &opts, eval_row).unwrap();
        let warns = sink.events_of("checkpoint.journal_unavailable");
        assert_eq!(warns.len(), 1);
        assert_eq!(warns[0].level, serr_obs::Level::Warn);
        assert!(sink.events_of("checkpoint.record_failed").is_empty());
        assert_eq!(obs.metrics().snapshot().counters["checkpoint.computed"], 4);

        // Record fault: one record_failed warning per computed point, keyed
        // by point index — the same key set at any worker count.
        let (obs, sink) = Obs::memory();
        let opts = SweepOptions::resume()
            .in_dir(&dir)
            .with_chaos(plan_for(IoSite::Record))
            .with_obs(obs.clone());
        run_sweep("t-obs-ev", fp, &items, 2, &opts, eval_row).unwrap();
        let mut keys: Vec<u64> =
            sink.events_of("checkpoint.record_failed").iter().map(|e| e.seq).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1, 2, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_io_faults_degrade_without_losing_rows() {
        use serr_inject::{FaultKind, FaultPlan};
        let dir = fresh_test_dir("chaos-io");
        let items: Vec<u64> = (0..5).collect();
        let fp = fingerprint(&["chaos-io-test"]);

        // Find plans hitting each injection site.
        let plan_for = |site: IoSite| {
            (0..1_000u64)
                .map(|s| FaultPlan::new(s, FaultKind::CheckpointIo))
                .find(|p| p.io_fault_site() == Some(site))
                .expect("some seed selects the site")
        };
        let reference =
            run_sweep("t-chaos-io", fp, &items, 1, &SweepOptions::off(), eval_row).unwrap().rows;

        // Open fault: no journal at all, rows still correct.
        let opts = SweepOptions::resume().in_dir(&dir).with_chaos(plan_for(IoSite::Open));
        let report = run_sweep("t-chaos-io", fp, &items, 1, &opts, eval_row).unwrap();
        assert_rows_bit_identical(&report.rows, &reference);
        assert!(
            !journal_path(&dir, "t-chaos-io", fp).exists(),
            "open fault must not create a journal"
        );

        // Record fault: journal exists but holds no pages; rows still
        // correct.
        let opts = SweepOptions::resume().in_dir(&dir).with_chaos(plan_for(IoSite::Record));
        let report = run_sweep("t-chaos-io", fp, &items, 1, &opts, eval_row).unwrap();
        assert_rows_bit_identical(&report.rows, &reference);
        let len = fs::metadata(journal_path(&dir, "t-chaos-io", fp)).unwrap().len();
        assert_eq!(
            len,
            serr_store::pages::HEADER_LEN as u64,
            "record fault must suppress appends (header only)"
        );
        let _ = fs::remove_dir_all(&dir);
    }
}
