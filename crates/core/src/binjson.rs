//! Binary encoding of [`Json`] rows for the checkpoint store.
//!
//! The JSONL journal round-trips floats through decimal text; that is
//! lossless (shortest-round-trip formatting) but costs a parse per value on
//! every resume. The binary journal instead carries each number as its raw
//! little-endian `f64` bits — bit-identical by construction, no formatting
//! on the write path, no parsing on the resume path.
//!
//! One byte of type tag per value:
//!
//! | tag | value                                            |
//! |-----|--------------------------------------------------|
//! | 0   | `null`                                           |
//! | 1   | `false`                                          |
//! | 2   | `true`                                           |
//! | 3   | number — 8 bytes, `f64` little-endian            |
//! | 4   | string — varint byte length + UTF-8              |
//! | 5   | array — varint count + elements                  |
//! | 6   | object — varint count + (key string, value) pairs|
//!
//! The decoder is bounds-checked end to end and enforces [`MAX_DEPTH`], so
//! corrupt input yields a typed [`SerrError::StoreCorrupt`] — never a panic
//! and never a stack overflow from adversarial nesting.

use serr_store::{varint, Deserializer, Serializer};
use serr_types::SerrError;

use crate::jsonio::Json;

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_NUM: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_ARR: u8 = 5;
const TAG_OBJ: u8 = 6;

/// Maximum container nesting the decoder accepts. Journal rows are nearly
/// flat (an object of scalars, occasionally an array of numbers); real data
/// never comes close, so anything deeper is corrupt by definition.
pub const MAX_DEPTH: usize = 96;

/// Encodes a [`Json`] value in the tagged binary layout above.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonSerializer;

/// Decoder paired with [`JsonSerializer`].
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonDeserializer;

impl Serializer<Json> for JsonSerializer {
    fn serialize(&self, value: &Json, buf: &mut Vec<u8>) -> Result<(), SerrError> {
        match value {
            Json::Null => buf.push(TAG_NULL),
            Json::Bool(false) => buf.push(TAG_FALSE),
            Json::Bool(true) => buf.push(TAG_TRUE),
            Json::Num(n) => {
                buf.push(TAG_NUM);
                buf.extend_from_slice(&n.to_le_bytes());
            }
            Json::Str(s) => {
                buf.push(TAG_STR);
                varint::write_u64(buf, s.len() as u64);
                buf.extend_from_slice(s.as_bytes());
            }
            Json::Arr(items) => {
                buf.push(TAG_ARR);
                varint::write_u64(buf, items.len() as u64);
                for item in items {
                    self.serialize(item, buf)?;
                }
            }
            Json::Obj(fields) => {
                buf.push(TAG_OBJ);
                varint::write_u64(buf, fields.len() as u64);
                for (key, item) in fields {
                    varint::write_u64(buf, key.len() as u64);
                    buf.extend_from_slice(key.as_bytes());
                    self.serialize(item, buf)?;
                }
            }
        }
        Ok(())
    }
}

fn take<'a>(input: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], SerrError> {
    if input.len() < n {
        return Err(SerrError::store_corrupt(
            what,
            format!("need {n} bytes, {} remain", input.len()),
        ));
    }
    let (head, tail) = input.split_at(n);
    *input = tail;
    Ok(head)
}

fn read_string(input: &mut &[u8], what: &str) -> Result<String, SerrError> {
    let len = varint::read_u64(input)?;
    let len = usize::try_from(len)
        .map_err(|_| SerrError::store_corrupt(what, "length exceeds address space"))?;
    let bytes = take(input, len, what)?;
    String::from_utf8(bytes.to_vec()).map_err(|e| SerrError::store_corrupt(what, e.to_string()))
}

/// Reads a container element count, rejecting counts that could not fit in
/// the remaining input (every element costs at least one byte) so corrupt
/// counts cannot drive unbounded allocation.
fn read_count(input: &mut &[u8], what: &str) -> Result<usize, SerrError> {
    let count = varint::read_u64(input)?;
    let count = usize::try_from(count)
        .map_err(|_| SerrError::store_corrupt(what, "count exceeds address space"))?;
    if count > input.len() {
        return Err(SerrError::store_corrupt(
            what,
            format!("count {count} exceeds {} remaining bytes", input.len()),
        ));
    }
    Ok(count)
}

fn decode_value(input: &mut &[u8], depth: usize) -> Result<Json, SerrError> {
    if depth > MAX_DEPTH {
        return Err(SerrError::store_corrupt("json", format!("nesting deeper than {MAX_DEPTH}")));
    }
    let tag = take(input, 1, "json tag")?[0];
    Ok(match tag {
        TAG_NULL => Json::Null,
        TAG_FALSE => Json::Bool(false),
        TAG_TRUE => Json::Bool(true),
        TAG_NUM => {
            let bytes = take(input, 8, "json number")?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(bytes);
            Json::Num(f64::from_le_bytes(raw))
        }
        TAG_STR => Json::Str(read_string(input, "json string")?),
        TAG_ARR => {
            let count = read_count(input, "json array")?;
            let mut items = Vec::with_capacity(count);
            for _ in 0..count {
                items.push(decode_value(input, depth + 1)?);
            }
            Json::Arr(items)
        }
        TAG_OBJ => {
            let count = read_count(input, "json object")?;
            let mut fields = Vec::with_capacity(count);
            for _ in 0..count {
                let key = read_string(input, "json key")?;
                fields.push((key, decode_value(input, depth + 1)?));
            }
            Json::Obj(fields)
        }
        other => {
            return Err(SerrError::store_corrupt("json", format!("unknown value tag {other}")))
        }
    })
}

impl Deserializer<Json> for JsonDeserializer {
    fn deserialize(&self, input: &mut &[u8]) -> Result<Json, SerrError> {
        decode_value(input, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Deterministic pseudo-random [`Json`] builder: expands a seed into a
    /// value tree with bounded depth/width. The proptest shim has no
    /// recursive-strategy combinator, so this plays that role.
    fn build_json(seed: u64, depth: usize) -> Json {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let pick = next() % if depth == 0 { 5 } else { 7 };
        match pick {
            0 => Json::Null,
            1 => Json::Bool(next() & 1 == 0),
            // Raw bit patterns: exercises NaN payloads and infinities the
            // text format cannot carry.
            2 => Json::Num(f64::from_bits(next())),
            3 => Json::Num((next() % 1_000_000) as f64 / 997.0),
            4 => {
                let len = next() % 12;
                Json::Str((0..len).map(|_| char::from(32 + (next() % 95) as u8)).collect())
            }
            5 => {
                let len = next() % 4;
                Json::Arr((0..len).map(|_| build_json(next(), depth - 1)).collect())
            }
            _ => {
                let len = next() % 4;
                Json::Obj(
                    (0..len).map(|i| (format!("k{i}"), build_json(next(), depth - 1))).collect(),
                )
            }
        }
    }

    /// Structural equality with bit-exact floats (NaN == NaN by bits).
    fn bit_eq(a: &Json, b: &Json) -> bool {
        match (a, b) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(x), Json::Bool(y)) => x == y,
            (Json::Num(x), Json::Num(y)) => x.to_bits() == y.to_bits(),
            (Json::Str(x), Json::Str(y)) => x == y,
            (Json::Arr(x), Json::Arr(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|(p, q)| bit_eq(p, q))
            }
            (Json::Obj(x), Json::Obj(y)) => {
                x.len() == y.len() && x.iter().zip(y).all(|((k, p), (l, q))| k == l && bit_eq(p, q))
            }
            _ => false,
        }
    }

    #[test]
    fn scalars_round_trip() {
        for v in [
            Json::Null,
            Json::Bool(true),
            Json::Bool(false),
            Json::Num(0.1 + 0.2),
            Json::Num(f64::NAN),
            Json::Num(f64::NEG_INFINITY),
            Json::Num(-0.0),
            Json::Str(String::new()),
            Json::Str("λ \"quoted\"\n".to_owned()),
            Json::Arr(vec![]),
            Json::Obj(vec![("x".to_owned(), Json::Num(1.5))]),
        ] {
            let mut buf = Vec::new();
            JsonSerializer.serialize(&v, &mut buf).expect("serialize");
            let mut input = buf.as_slice();
            let back = JsonDeserializer.deserialize(&mut input).expect("deserialize");
            assert!(input.is_empty(), "trailing bytes");
            assert!(bit_eq(&v, &back), "{v:?} != {back:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // arr(arr(arr(... null))) deeper than MAX_DEPTH.
        let mut buf = Vec::new();
        for _ in 0..(MAX_DEPTH + 8) {
            buf.push(5); // TAG_ARR
            buf.push(1); // varint count 1
        }
        buf.push(0); // TAG_NULL
        let mut input = buf.as_slice();
        let err = JsonDeserializer.deserialize(&mut input).expect_err("too deep");
        assert!(err.to_string().contains("nesting"), "{err}");
    }

    proptest! {
        #[test]
        fn generated_values_round_trip_bit_exact(seed in any::<u64>()) {
            let v = build_json(seed, 3);
            let mut buf = Vec::new();
            JsonSerializer.serialize(&v, &mut buf).expect("serialize");
            let mut input = buf.as_slice();
            let back = JsonDeserializer.deserialize(&mut input).expect("deserialize");
            prop_assert!(input.is_empty());
            prop_assert!(bit_eq(&v, &back), "{:?} != {:?}", v, back);
        }

        #[test]
        fn decoder_never_panics_on_noise(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut input = bytes.as_slice();
            let _ = JsonDeserializer.deserialize(&mut input);
        }

        #[test]
        fn truncated_encodings_error_cleanly(seed in any::<u64>(), cut in any::<u16>()) {
            let v = build_json(seed, 3);
            let mut buf = Vec::new();
            JsonSerializer.serialize(&v, &mut buf).expect("serialize");
            let cut = cut as usize % (buf.len() + 1);
            let mut input = &buf[..cut];
            // A strict prefix must fail (every encoding is self-delimiting
            // and the decoder follows the same path until it runs short);
            // the full buffer must succeed and consume everything.
            let result = JsonDeserializer.deserialize(&mut input);
            if cut == buf.len() {
                prop_assert!(result.is_ok() && input.is_empty());
            } else {
                prop_assert!(result.is_err());
            }
        }
    }
}
