//! Deterministic bounded retry with exponential backoff and SplitMix64
//! jitter.
//!
//! Transient contention — most concretely another process briefly holding a
//! checkpoint journal's advisory lock while it shuts down — should not fail
//! an otherwise healthy run, but unbounded retries would turn a genuinely
//! held lock into a hang. [`retry_with_backoff`] bounds both directions:
//! a fixed attempt budget, exponentially growing delays capped at a
//! maximum, and jitter drawn from the same SplitMix64 generator the fault
//! injectors use, so a chaos replay with the same [`BackoffPolicy`] sees
//! the *same* delay schedule. The clock is injectable (the `sleep` closure)
//! so tests replay schedules instantly and services substitute their own
//! timers.

use std::time::Duration;

use serr_inject::rng::{mix, unit};
use serr_types::SerrError;

/// Retry schedule: bounded attempts, exponential backoff, deterministic
/// jitter.
///
/// The delay before retry `k` (zero-based) is the exponential target
/// `base_delay · 2^k`, capped at `max_delay`, scaled by a jitter factor in
/// `[0.5, 1.0)` derived from `mix(&[jitter_seed, k])` — fully determined
/// by the policy, so reproducible across runs and processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffPolicy {
    /// Total attempts (initial try included). Zero is treated as one: the
    /// operation always runs at least once.
    pub max_attempts: u32,
    /// Exponential base delay before the first retry.
    pub base_delay: Duration,
    /// Upper bound on any single delay (applied before jitter).
    pub max_delay: Duration,
    /// Seed for the SplitMix64 jitter stream; replaying with the same seed
    /// replays the same schedule.
    pub jitter_seed: u64,
}

impl BackoffPolicy {
    /// A short schedule for lock contention on local files: 3 attempts,
    /// 5 ms base, 20 ms cap — worst case under 35 ms of waiting, which a
    /// test suite can afford and a genuinely held lock still defeats.
    #[must_use]
    pub fn journal(jitter_seed: u64) -> Self {
        BackoffPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(20),
            jitter_seed,
        }
    }

    /// The deterministic delay before zero-based retry `attempt`.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let target = self
            .base_delay
            .saturating_mul(2u32.saturating_pow(attempt.min(30)))
            .min(self.max_delay);
        let jitter = 0.5 + 0.5 * unit(mix(&[self.jitter_seed, u64::from(attempt)]));
        target.mul_f64(jitter)
    }
}

/// Runs `op` up to `policy.max_attempts` times, sleeping `policy.delay(k)`
/// via the injectable `sleep` closure between attempts, as long as
/// `retryable` classifies the error as transient.
///
/// `op` receives the zero-based attempt index. The first non-retryable
/// error — and the final error once attempts are exhausted — is returned
/// unchanged, so callers that matched on a typed error (for example
/// [`SerrError::JournalLocked`]) before retries existed still see it.
///
/// # Errors
///
/// The last error returned by `op`, once attempts are exhausted or the
/// error is not retryable.
pub fn retry_with_backoff<T>(
    policy: &BackoffPolicy,
    mut op: impl FnMut(u32) -> Result<T, SerrError>,
    mut retryable: impl FnMut(&SerrError) -> bool,
    mut sleep: impl FnMut(Duration),
) -> Result<T, SerrError> {
    let attempts = policy.max_attempts.max(1);
    let mut k = 0;
    loop {
        match op(k) {
            Ok(v) => return Ok(v),
            Err(e) if k + 1 < attempts && retryable(&e) => {
                sleep(policy.delay(k));
                k += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recording_sleep(log: &mut Vec<Duration>) -> impl FnMut(Duration) + '_ {
        |d| log.push(d)
    }

    #[test]
    fn delays_are_deterministic_bounded_and_jittered() {
        let p = BackoffPolicy::journal(0xBACC_0FF);
        let again = BackoffPolicy::journal(0xBACC_0FF);
        for k in 0..8 {
            assert_eq!(p.delay(k), again.delay(k), "same policy, same schedule");
            let target = p.base_delay.saturating_mul(2u32.pow(k.min(30))).min(p.max_delay);
            assert!(p.delay(k) >= target.mul_f64(0.5), "jitter floor is half the target");
            assert!(p.delay(k) < target, "jitter never exceeds the capped target");
        }
        let other = BackoffPolicy { jitter_seed: 1, ..p };
        assert!(
            (0..8).any(|k| other.delay(k) != p.delay(k)),
            "different seeds must produce different schedules"
        );
    }

    #[test]
    fn succeeds_after_transient_failures_with_the_policy_schedule() {
        let p = BackoffPolicy::journal(7);
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let got = retry_with_backoff(
            &p,
            |k| {
                assert_eq!(k, calls, "op sees the attempt index");
                calls += 1;
                if calls < 3 {
                    Err(SerrError::JournalLocked { path: "j.lock".into() })
                } else {
                    Ok(42)
                }
            },
            |e| matches!(e, SerrError::JournalLocked { .. }),
            recording_sleep(&mut slept),
        );
        assert_eq!(got, Ok(42));
        assert_eq!(calls, 3);
        assert_eq!(slept, vec![p.delay(0), p.delay(1)], "one sleep per failed attempt");
    }

    #[test]
    fn exhausted_attempts_return_the_typed_error_unchanged() {
        let p = BackoffPolicy::journal(7);
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let got: Result<(), SerrError> = retry_with_backoff(
            &p,
            |_| {
                calls += 1;
                Err(SerrError::JournalLocked { path: "held.lock".into() })
            },
            |e| matches!(e, SerrError::JournalLocked { .. }),
            recording_sleep(&mut slept),
        );
        match got {
            Err(SerrError::JournalLocked { path }) => assert_eq!(path, "held.lock"),
            other => panic!("expected JournalLocked, got {other:?}"),
        }
        assert_eq!(calls, p.max_attempts);
        assert_eq!(slept.len(), p.max_attempts as usize - 1);
    }

    #[test]
    fn non_retryable_errors_fail_fast_without_sleeping() {
        let p = BackoffPolicy::journal(7);
        let mut slept = Vec::new();
        let mut calls = 0u32;
        let got: Result<(), SerrError> = retry_with_backoff(
            &p,
            |_| {
                calls += 1;
                Err(SerrError::invalid_config("permanent"))
            },
            |e| matches!(e, SerrError::JournalLocked { .. }),
            recording_sleep(&mut slept),
        );
        assert!(got.is_err());
        assert_eq!(calls, 1);
        assert!(slept.is_empty());
    }

    #[test]
    fn zero_attempt_policies_still_run_the_operation_once() {
        let p = BackoffPolicy { max_attempts: 0, ..BackoffPolicy::journal(0) };
        let mut calls = 0u32;
        let got = retry_with_backoff(
            &p,
            |_| {
                calls += 1;
                Ok(7)
            },
            |_| true,
            |_| {},
        );
        assert_eq!(got, Ok(7));
        assert_eq!(calls, 1);
    }
}
