//! The validation harness: AVF+SOFR against the assumption-free estimators.
//!
//! For every configuration the harness produces four MTTFs:
//!
//! * **AVF(+SOFR)** — the method under examination;
//! * **Monte Carlo** — the paper's ground truth (Section 4.3);
//! * **renewal** — this workspace's exact closed form for the same masking
//!   model, used to separate genuine methodology error from MC sampling
//!   noise;
//! * **SoftArch** — the alternative first-principles estimator of
//!   Section 5.4.

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use serr_mc::system::SystemModel;
use serr_mc::{MonteCarlo, MonteCarloConfig, MttfEstimate};
use serr_obs::Obs;
use serr_softarch::SoftArch;
use serr_trace::VulnerabilityTrace;
use serr_types::{relative_error, Frequency, Mttf, RawErrorRate, SerrError};

use crate::{avf, par, sofr};

/// Validation of the AVF step on a single component (the paper's
/// Sections 5.1–5.2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentValidation {
    /// The component's AVF.
    pub avf: f64,
    /// MTTF by the AVF step (Equation 1).
    pub mttf_avf: Mttf,
    /// MTTF by Monte Carlo (ground truth).
    pub mttf_mc: MttfEstimate,
    /// MTTF by exact renewal analysis.
    pub mttf_renewal: Mttf,
    /// MTTF by SoftArch.
    pub mttf_softarch: Mttf,
    /// `|AVF − MC| / MC` — the quantity in Figures 3 and 5.
    pub avf_error_vs_mc: f64,
    /// `|AVF − renewal| / renewal` — the same signal without MC noise.
    pub avf_error_vs_renewal: f64,
    /// `|SoftArch − MC| / MC` — the Section 5.4 check.
    pub softarch_error_vs_mc: f64,
}

/// Validation of the SOFR step on a system of components (Section 5.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SystemValidation {
    /// Number of component instances in the system.
    pub components: u64,
    /// System MTTF by the SOFR step (component MTTFs from the exact
    /// renewal method, so the reported error is *only* the SOFR step's —
    /// mirroring the paper's use of Monte-Carlo component MTTFs).
    pub mttf_sofr: Mttf,
    /// System MTTF by Monte Carlo (ground truth).
    pub mttf_mc: MttfEstimate,
    /// System MTTF by exact renewal analysis.
    pub mttf_renewal: Mttf,
    /// System MTTF by SoftArch.
    pub mttf_softarch: Mttf,
    /// `|SOFR − MC| / MC` — the quantity in Figure 6.
    pub sofr_error_vs_mc: f64,
    /// `|SOFR − renewal| / renewal`.
    pub sofr_error_vs_renewal: f64,
    /// `|SoftArch − MC| / MC`.
    pub softarch_error_vs_mc: f64,
}

/// Runs all four estimators over components and systems.
#[derive(Debug, Clone)]
pub struct Validator {
    frequency: Frequency,
    mc: MonteCarlo,
    obs: Option<Obs>,
}

impl Validator {
    /// Creates a validator for machines clocked at `frequency`, running
    /// Monte Carlo with `config`.
    #[must_use]
    pub fn new(frequency: Frequency, config: MonteCarloConfig) -> Self {
        Validator { frequency, mc: MonteCarlo::new(config), obs: None }
    }

    /// Attaches an observer: the analytic stages record their wall time
    /// (`stage.renewal_quadrature_ms`, `stage.softarch_ms`) and the Monte
    /// Carlo engine reports its own stage timings and per-chunk convergence
    /// telemetry through the same sink.
    #[must_use]
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.mc = self.mc.clone().with_observer(obs.clone());
        self.obs = Some(obs);
        self
    }

    /// The Monte Carlo engine used.
    #[must_use]
    pub fn monte_carlo(&self) -> &MonteCarlo {
        &self.mc
    }

    /// Runs `f` under the observer's stage timer when one is attached.
    fn timed<R>(&self, stage: &'static str, f: impl FnOnce() -> R) -> R {
        match &self.obs {
            Some(obs) => obs.time_stage(stage, f),
            None => f(),
        }
    }

    /// Validates the AVF step on one component.
    ///
    /// # Errors
    ///
    /// Propagates estimator errors (zero rate, AVF-0 trace, MC
    /// non-convergence).
    pub fn component(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
    ) -> Result<ComponentValidation, SerrError> {
        let mttf_mc = self.mc.component_mttf(trace, rate, self.frequency)?;
        self.component_with_mc(trace, rate, mttf_mc)
    }

    /// [`Validator::component`] with the Monte Carlo ground truth already
    /// in hand — the entry point for grouped sweeps, where one
    /// shared-stream kernel run (`MonteCarlo::component_mttf_multi`)
    /// produces every point's `mttf_mc` and only the cheap analytic
    /// estimators remain per point. Passing the estimate an independent
    /// run would produce yields a row bit-identical to
    /// [`Validator::component`].
    ///
    /// # Errors
    ///
    /// Propagates analytic-estimator errors (zero rate, AVF-0 trace).
    pub fn component_with_mc(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        mttf_mc: MttfEstimate,
    ) -> Result<ComponentValidation, SerrError> {
        let mttf_avf = avf::avf_step_mttf(trace, rate)?;
        let mttf_renewal = self.timed("renewal_quadrature", || {
            serr_analytic::renewal::renewal_mttf(trace, rate, self.frequency)
        })?;
        let mttf_softarch =
            self.timed("softarch", || SoftArch::new(self.frequency).component_mttf(trace, rate))?;
        Ok(ComponentValidation {
            avf: trace.avf(),
            mttf_avf,
            mttf_mc,
            mttf_renewal,
            mttf_softarch,
            avf_error_vs_mc: relative_error(mttf_avf.as_secs(), mttf_mc.mttf.as_secs()),
            avf_error_vs_renewal: relative_error(mttf_avf.as_secs(), mttf_renewal.as_secs()),
            softarch_error_vs_mc: relative_error(mttf_softarch.as_secs(), mttf_mc.mttf.as_secs()),
        })
    }

    /// Validates the AVF step on many components in one batched call —
    /// the component-sweep analogue of the engine's batched trial chunks.
    ///
    /// Components fan out across cores ([`par::try_par_map`], width from
    /// [`par::fanout_threads`]); whenever more than one runs at once, each
    /// component's inner Monte Carlo is pinned to a single thread so the
    /// sweep uses one core per component instead of oversubscribing
    /// `components × cores`. The engine's chunk-based RNG makes every
    /// estimate bit-identical at any thread count, so each row equals the
    /// serial [`Validator::component`] result exactly, in input order.
    ///
    /// # Errors
    ///
    /// Returns the first failing component's error. Every component is
    /// attempted first — one pathological part (or a panic in its
    /// estimator, surfaced as [`SerrError::PointFailed`]) cannot abort its
    /// siblings mid-flight.
    pub fn components(
        &self,
        parts: &[(RawErrorRate, Arc<dyn VulnerabilityTrace>)],
    ) -> Result<Vec<ComponentValidation>, SerrError> {
        let threads = par::fanout_threads(parts.len());
        let inner = if threads > 1 {
            let mut pinned = self.clone();
            pinned.mc = MonteCarlo::new(MonteCarloConfig { threads: 1, ..*self.mc.config() });
            if let Some(obs) = &self.obs {
                pinned.mc = pinned.mc.with_observer(obs.clone());
            }
            pinned
        } else {
            self.clone()
        };
        par::try_par_map(parts, threads, |_, (rate, trace)| inner.component(&**trace, *rate))
            .into_iter()
            .collect()
    }

    /// Validates the SOFR step on a system of `c` identical, phase-aligned
    /// components (the paper's cluster configuration: "all processors run
    /// the same workload").
    ///
    /// # Errors
    ///
    /// Propagates estimator errors.
    pub fn system_identical(
        &self,
        trace: Arc<dyn VulnerabilityTrace>,
        component_rate: RawErrorRate,
        c: u64,
    ) -> Result<SystemValidation, SerrError> {
        if c == 0 {
            return Err(SerrError::invalid_config("system must have at least one component"));
        }
        // Ground truth: identical phase-aligned components superpose into a
        // single process with C x the rate over the same trace.
        let system_rate = component_rate.scale(c as f64);
        let mttf_mc = self.mc.component_mttf(&trace, system_rate, self.frequency)?;
        self.system_identical_with_mc(&*trace, component_rate, c, mttf_mc)
    }

    /// [`Validator::system_identical`] with the Monte Carlo ground truth
    /// already in hand.
    ///
    /// Because c identical phase-aligned components superpose into one
    /// process at `c·λ` over the same trace, the c-axis of a Fig 6 grid is
    /// a *rate* axis — a grouped sweep runs one shared-stream kernel over
    /// the scaled rates and feeds each cell's estimate here, leaving only
    /// the analytic estimators per cell. With the estimate an independent
    /// run would produce, the row is bit-identical to
    /// [`Validator::system_identical`].
    ///
    /// # Errors
    ///
    /// Propagates analytic-estimator errors; rejects `c == 0`.
    pub fn system_identical_with_mc(
        &self,
        trace: &dyn VulnerabilityTrace,
        component_rate: RawErrorRate,
        c: u64,
        mttf_mc: MttfEstimate,
    ) -> Result<SystemValidation, SerrError> {
        if c == 0 {
            return Err(SerrError::invalid_config("system must have at least one component"));
        }
        // SOFR: component MTTF from the exact first-principles method,
        // divided by C (Equations 2-3 for identical components).
        let component_mttf = self.timed("renewal_quadrature", || {
            serr_analytic::renewal::renewal_mttf(&trace, component_rate, self.frequency)
        })?;
        let mttf_sofr = sofr::sofr_mttf_identical(component_mttf, c)?;

        let system_rate = component_rate.scale(c as f64);
        let mttf_renewal = self.timed("renewal_quadrature", || {
            serr_analytic::renewal::renewal_mttf(&trace, system_rate, self.frequency)
        })?;
        let mttf_softarch = self.timed("softarch", || {
            SoftArch::new(self.frequency).component_mttf(&trace, system_rate)
        })?;

        Ok(SystemValidation {
            components: c,
            mttf_sofr,
            mttf_mc,
            mttf_renewal,
            mttf_softarch,
            sofr_error_vs_mc: relative_error(mttf_sofr.as_secs(), mttf_mc.mttf.as_secs()),
            sofr_error_vs_renewal: relative_error(mttf_sofr.as_secs(), mttf_renewal.as_secs()),
            softarch_error_vs_mc: relative_error(mttf_softarch.as_secs(), mttf_mc.mttf.as_secs()),
        })
    }

    /// Validates the SOFR step on a heterogeneous system (e.g. the four
    /// components of one processor in Section 5.1).
    ///
    /// # Errors
    ///
    /// Propagates estimator errors; parts with AVF-0 traces contribute no
    /// failure rate to SOFR and are skipped there (they cannot fail).
    pub fn system_parts(
        &self,
        parts: &[(RawErrorRate, Arc<dyn VulnerabilityTrace>)],
    ) -> Result<SystemValidation, SerrError> {
        if parts.is_empty() {
            return Err(SerrError::invalid_config("system must have at least one part"));
        }
        // SOFR over per-component renewal MTTFs (skipping never-failing
        // parts). Each part's renewal integral is independent — fan them
        // out across cores, keeping part order in the reduction.
        let frequency = self.frequency;
        let per_part: Result<Vec<_>, SerrError> = self
            .timed("renewal_quadrature", || {
                par::par_map(parts, par::fanout_threads(parts.len()), |_, (rate, trace)| {
                    if trace.is_never_vulnerable() {
                        return Ok(None);
                    }
                    let mttf = serr_analytic::renewal::renewal_mttf(trace, *rate, frequency)?;
                    Ok(Some(mttf.to_failure_rate()))
                })
            })
            .into_iter()
            .collect();
        let rates: Vec<_> = per_part?.into_iter().flatten().collect();
        let mttf_sofr = sofr::sofr_failure_rate(rates)?.to_mttf();

        // Ground truth on the superposed system.
        let mut builder = SystemModel::builder(self.frequency);
        for (i, (rate, trace)) in parts.iter().enumerate() {
            builder.add(format!("part{i}"), *rate, trace.clone())?;
        }
        let system = builder.build()?;
        let mttf_mc = self.mc.system_mttf(&system)?;
        let combined = system.combined_trace();
        let total = system.total_rate();
        let mttf_renewal = self.timed("renewal_quadrature", || {
            serr_analytic::renewal::renewal_mttf(&combined, total, self.frequency)
        })?;
        let mttf_softarch = self
            .timed("softarch", || SoftArch::new(self.frequency).component_mttf(&combined, total))?;

        Ok(SystemValidation {
            components: parts.len() as u64,
            mttf_sofr,
            mttf_mc,
            mttf_renewal,
            mttf_softarch,
            sofr_error_vs_mc: relative_error(mttf_sofr.as_secs(), mttf_mc.mttf.as_secs()),
            sofr_error_vs_renewal: relative_error(mttf_sofr.as_secs(), mttf_renewal.as_secs()),
            softarch_error_vs_mc: relative_error(mttf_softarch.as_secs(), mttf_mc.mttf.as_secs()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn validator() -> Validator {
        Validator::new(Frequency::base(), MonteCarloConfig { trials: 30_000, ..Default::default() })
    }

    #[test]
    fn avf_valid_regime_shows_no_error() {
        // Small λL: everything agrees (paper Section 5.1's finding).
        let trace = IntervalTrace::busy_idle(3_000, 7_000).unwrap();
        let v = validator().component(&trace, RawErrorRate::per_year(10.0)).unwrap();
        assert!(v.avf_error_vs_renewal < 1e-9, "{}", v.avf_error_vs_renewal);
        assert!(v.avf_error_vs_mc < 0.02, "{}", v.avf_error_vs_mc);
        assert!(v.softarch_error_vs_mc < 0.02, "{}", v.softarch_error_vs_mc);
        assert!((v.avf - 0.3).abs() < 1e-12);
    }

    #[test]
    fn avf_invalid_regime_shows_error_but_softarch_does_not() {
        // λL ~ 4: the Figure 3/5 discrepancy regime.
        let freq = Frequency::base();
        let trace = IntervalTrace::busy_idle(1_000_000, 1_000_000).unwrap();
        let l_seconds = 2_000_000.0 / freq.hz();
        let rate = RawErrorRate::per_second(4.0 / l_seconds);
        let v = validator().component(&trace, rate).unwrap();
        assert!(v.avf_error_vs_renewal > 0.2, "avf err {}", v.avf_error_vs_renewal);
        assert!(v.avf_error_vs_mc > 0.15, "avf err vs mc {}", v.avf_error_vs_mc);
        // SoftArch stays faithful (paper Section 5.4).
        assert!(v.softarch_error_vs_mc < 0.02, "softarch {}", v.softarch_error_vs_mc);
        // And the MC engine itself agrees with the exact answer.
        let mc_vs_renewal = relative_error(v.mttf_mc.mttf.as_secs(), v.mttf_renewal.as_secs());
        assert!(mc_vs_renewal < 0.02, "mc noise {mc_vs_renewal}");
    }

    #[test]
    fn sofr_error_grows_with_components() {
        // Fixed component rate in the borderline regime; growing C pushes
        // the system into the invalid regime (Figure 6's shape).
        let freq = Frequency::base();
        let trace: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::busy_idle(500_000, 500_000).unwrap());
        let l_seconds = 1_000_000.0 / freq.hz();
        let rate = RawErrorRate::per_second(0.05 / l_seconds); // λL = 0.05
        let v = validator();
        let small = v.system_identical(trace.clone(), rate, 2).unwrap();
        let large = v.system_identical(trace, rate, 100).unwrap();
        assert!(small.sofr_error_vs_renewal < 0.03, "C=2 {}", small.sofr_error_vs_renewal);
        assert!(large.sofr_error_vs_renewal > 0.3, "C=100 {}", large.sofr_error_vs_renewal);
        assert!(large.softarch_error_vs_mc < 0.02);
    }

    #[test]
    fn heterogeneous_system_validation() {
        let a: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(400, 600).unwrap());
        let b: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::from_levels(&[0.5; 1000]).unwrap());
        let v = validator()
            .system_parts(&[(RawErrorRate::per_year(3.0), a), (RawErrorRate::per_year(7.0), b)])
            .unwrap();
        // Tiny λL: SOFR is fine here.
        assert!(v.sofr_error_vs_renewal < 1e-6, "{}", v.sofr_error_vs_renewal);
        assert!(v.sofr_error_vs_mc < 0.02);
        assert_eq!(v.components, 2);
    }

    #[test]
    fn batched_component_sweep_matches_serial_rows_in_order() {
        let v = validator();
        let parts: Vec<(RawErrorRate, Arc<dyn VulnerabilityTrace>)> = vec![
            (RawErrorRate::per_year(10.0), Arc::new(IntervalTrace::busy_idle(300, 700).unwrap())),
            (
                RawErrorRate::per_year(3.0),
                Arc::new(IntervalTrace::from_levels(&[0.5; 64]).unwrap()),
            ),
            (RawErrorRate::per_year(7.0), Arc::new(IntervalTrace::busy_idle(40, 60).unwrap())),
        ];
        let batched = v.components(&parts).unwrap();
        assert_eq!(batched.len(), parts.len());
        // Inner-thread pinning cannot change any row: the engine's chunked
        // RNG makes estimates bit-identical at every thread count.
        for ((rate, trace), row) in parts.iter().zip(&batched) {
            assert_eq!(*row, v.component(&**trace, *rate).unwrap());
        }
        // A pathological part surfaces its own error without discarding
        // finished siblings mid-flight (try_par_map isolates the panic).
        let bad: Vec<(RawErrorRate, Arc<dyn VulnerabilityTrace>)> = vec![
            (RawErrorRate::per_year(1.0), Arc::new(IntervalTrace::busy_idle(5, 5).unwrap())),
            (RawErrorRate::per_year(1.0), Arc::new(IntervalTrace::from_levels(&[0.0; 8]).unwrap())),
        ];
        assert!(v.components(&bad).is_err());
    }

    #[test]
    fn observer_records_per_stage_wall_time() {
        let (obs, sink) = Obs::memory();
        let trace = IntervalTrace::busy_idle(3_000, 7_000).unwrap();
        let v = validator().with_observer(obs.clone());
        v.component(&trace, RawErrorRate::per_year(10.0)).unwrap();
        let snap = obs.metrics().snapshot();
        for stage in [
            "stage.renewal_quadrature_ms",
            "stage.softarch_ms",
            "stage.trace_compile_ms",
            "stage.mc_run_ms",
        ] {
            let h = snap.histograms.get(stage).unwrap_or_else(|| panic!("missing {stage}"));
            assert_eq!(h.count(), 1, "{stage} should be timed exactly once");
        }
        // The shared sink carries the engine's convergence telemetry too.
        assert!(!sink.events_of("mc.chunk").is_empty());
    }

    #[test]
    fn rejects_degenerate_systems() {
        let v = validator();
        let t: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(1, 1).unwrap());
        assert!(v.system_identical(t, RawErrorRate::per_year(1.0), 0).is_err());
        assert!(v.system_parts(&[]).is_err());
    }
}
