//! The AVF step (paper Section 2.2, Equation 1).

use serr_trace::VulnerabilityTrace;
use serr_types::{FailureRate, Mttf, RawErrorRate, SerrError};

/// The AVF step's failure-rate estimate for a component:
/// `FailureRate_c = λ_c · AVF_c`.
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] for a zero raw rate.
pub fn avf_step_failure_rate(
    trace: &dyn VulnerabilityTrace,
    rate: RawErrorRate,
) -> Result<FailureRate, SerrError> {
    if rate.is_zero() {
        return Err(SerrError::invalid_config("raw error rate is zero"));
    }
    Ok(FailureRate::from_avf(rate, trace.avf()))
}

/// The AVF step's MTTF estimate (paper Equation 1):
/// `MTTF_c = 1 / (λ_c · AVF_c)`.
///
/// This is the quantity whose validity the paper examines: it assumes every
/// point of the program is equally likely to receive the next raw error,
/// which Theorem 1 shows holds only as `L·λ → 0`.
///
/// # Errors
///
/// Returns [`SerrError::InvalidConfig`] for a zero rate and
/// [`SerrError::InvalidTrace`] for an AVF-0 trace (infinite MTTF).
///
/// ```
/// use serr_core::avf::avf_step_mttf;
/// use serr_trace::IntervalTrace;
/// use serr_types::RawErrorRate;
///
/// let trace = IntervalTrace::busy_idle(1, 3).unwrap(); // AVF 0.25
/// let mttf = avf_step_mttf(&trace, RawErrorRate::per_year(2.0)).unwrap();
/// assert!((mttf.as_years() - 2.0).abs() < 1e-12);
/// ```
pub fn avf_step_mttf(
    trace: &dyn VulnerabilityTrace,
    rate: RawErrorRate,
) -> Result<Mttf, SerrError> {
    let fr = avf_step_failure_rate(trace, rate)?;
    if fr.is_zero() {
        return Err(SerrError::invalid_trace("AVF is 0; the AVF-step MTTF is infinite"));
    }
    Ok(fr.to_mttf())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    #[test]
    fn equation_one() {
        let trace = IntervalTrace::busy_idle(30, 70).unwrap();
        let rate = RawErrorRate::per_year(5.0);
        let mttf = avf_step_mttf(&trace, rate).unwrap();
        assert!((mttf.as_years() - 1.0 / (5.0 * 0.3)).abs() < 1e-12);
        let fr = avf_step_failure_rate(&trace, rate).unwrap();
        assert!((fr.events_per_year() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn fractional_vulnerability_averages() {
        let trace = IntervalTrace::from_levels(&[1.0, 0.5, 0.0, 0.5]).unwrap();
        let mttf = avf_step_mttf(&trace, RawErrorRate::per_year(2.0)).unwrap();
        assert!((mttf.as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_rejected() {
        let dead = IntervalTrace::constant(10, 0.0).unwrap();
        let live = IntervalTrace::constant(10, 1.0).unwrap();
        assert!(avf_step_mttf(&dead, RawErrorRate::per_year(1.0)).is_err());
        assert!(avf_step_mttf(&live, RawErrorRate::ZERO).is_err());
    }

    #[test]
    fn avf_step_is_workload_order_blind() {
        // The AVF step cannot distinguish these two programs — that
        // blindness is exactly what the paper interrogates.
        let busy_first = IntervalTrace::busy_idle(50, 50).unwrap();
        let busy_last = IntervalTrace::from_segments(vec![
            serr_trace::Segment::new(50, 0.0).unwrap(),
            serr_trace::Segment::new(50, 1.0).unwrap(),
        ])
        .unwrap();
        let rate = RawErrorRate::per_year(3.0);
        assert_eq!(
            avf_step_mttf(&busy_first, rate).unwrap(),
            avf_step_mttf(&busy_last, rate).unwrap()
        );
    }
}
