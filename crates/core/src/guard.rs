//! Runtime guardrails: detect-or-degrade MTTF estimation.
//!
//! The raw estimators ([`serr_mc`], [`serr_analytic`], [`serr_softarch`])
//! each trust their inputs and their own arithmetic. [`Guard`] wraps them
//! in a fallback chain that cross-checks every answer and tags the result
//! with a [`Provenance`], so a corrupted trace, a poisoned estimator, or a
//! failing Monte Carlo run is *detected* (the tag worsens) or *degraded
//! around* (an independent estimator supplies the answer) — never returned
//! as a silently wrong `Clean` number.
//!
//! The chain, in order:
//!
//! 1. **Analytic renewal** ([`serr_analytic::renewal::renewal_mttf`]) —
//!    the exact closed form. A typed error here is terminal: the
//!    configuration itself is unusable (zero rate, AVF-0 trace).
//! 2. **SoftArch** — an independent analytic reference. Disagreement with
//!    renewal beyond tolerance quarantines it from the consistency vote.
//! 3. **Trace integrity** — the compiled trace is checked with
//!    [`CompiledTrace::verify`]; a corrupted compile is rebuilt from the
//!    source trace (floor [`Provenance::Retried`]).
//! 4. **Monte Carlo** — up to `1 + max_retries` attempts, each retry with
//!    a fresh derived seed. An estimate must pass NaN/monotonicity sanity
//!    checks and agree with renewal within a CI-derived bound to be
//!    accepted; when the default inversion sampler produced it, a small
//!    event-loop run must also agree ([`GuardPolicy::oracle_trials`]) —
//!    the event loop resolves masking from segment values alone and never
//!    reads the prefix tables the inversion sampler inverts, so the two
//!    samplers vote on each other's compiled state.
//! 5. **Fallback** — if every Monte Carlo attempt fails, the renewal
//!    answer is returned tagged [`Provenance::Degraded`] (or
//!    [`Provenance::Suspect`] when the analytic references disagree with
//!    each other too, leaving nothing to vouch for the number).

use serr_analytic::renewal::renewal_mttf;
use serr_inject::rng::mix;
use serr_inject::{FaultPlan, TraceFault};
use serr_mc::{MonteCarlo, MonteCarloConfig, MttfEstimate, SamplerKind};
use serr_obs::{Event, Obs};
use serr_softarch::SoftArch;
use serr_trace::{CompiledTrace, VulnerabilityTrace};
use serr_types::{Frequency, Mttf, Provenance, RawErrorRate, SerrError};

/// Acceptance thresholds for the guard's consistency checks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardPolicy {
    /// Monte Carlo retries after a failed or rejected first attempt.
    pub max_retries: u32,
    /// Baseline relative tolerance for cross-engine agreement.
    pub rel_tol: f64,
    /// Widens the Monte Carlo acceptance band to `ci_mult` times the
    /// estimate's 95% confidence half-width (whichever of the two bounds
    /// is looser wins), so a high-variance run is not rejected for honest
    /// sampling noise.
    pub ci_mult: f64,
    /// Trials for the event-loop oracle run that cross-checks an accepted
    /// inversion estimate (see [`SamplerKind`]): the two samplers draw from
    /// the same distribution but read different compiled tables, so a
    /// disagreement means one of them was fed corrupted state. Kept small —
    /// the oracle pays the event loop's ~1/AVF events per trial, exactly
    /// the cost the inversion sampler exists to avoid — and `0` disables
    /// the vote entirely.
    pub oracle_trials: u64,
}

impl Default for GuardPolicy {
    fn default() -> Self {
        GuardPolicy { max_retries: 1, rel_tol: 0.02, ci_mult: 4.0, oracle_trials: 4_096 }
    }
}

/// A guarded MTTF: the number plus how much to trust it.
#[derive(Debug, Clone)]
pub struct GuardedMttf {
    /// The best available MTTF.
    pub mttf: Mttf,
    /// How the estimate was obtained (see [`Provenance`]).
    pub provenance: Provenance,
    /// The accepted Monte Carlo estimate, when one was accepted.
    pub mc: Option<MttfEstimate>,
    /// The analytic renewal reference.
    pub renewal: Mttf,
    /// The SoftArch reference, when it could be computed.
    pub softarch: Option<Mttf>,
    /// Human-readable audit trail of every anomaly the guard saw.
    pub notes: Vec<String>,
}

/// The guarded estimator: Monte Carlo with analytic cross-checks,
/// retry-with-backoff, and a degrade path.
#[derive(Debug, Clone)]
pub struct Guard {
    policy: GuardPolicy,
    frequency: Frequency,
    mc: MonteCarloConfig,
    obs: Option<Obs>,
}

impl Guard {
    /// Creates a guard with the default [`GuardPolicy`].
    #[must_use]
    pub fn new(frequency: Frequency, mc: MonteCarloConfig) -> Self {
        Guard { policy: GuardPolicy::default(), frequency, mc, obs: None }
    }

    /// Attaches an observer: every audit-trail note is mirrored as a typed
    /// `guard.fallback` event, the final tag as a `guard.verdict`, and the
    /// inner Monte Carlo attempts report stage timings and convergence
    /// telemetry through the same sink.
    #[must_use]
    pub fn with_observer(mut self, obs: Obs) -> Self {
        self.obs = Some(obs);
        self
    }

    /// Overrides the acceptance policy.
    #[must_use]
    pub fn with_policy(mut self, policy: GuardPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The acceptance policy in force.
    #[must_use]
    pub fn policy(&self) -> &GuardPolicy {
        &self.policy
    }

    /// Estimates the component MTTF with the full detect-or-degrade chain.
    ///
    /// `chaos` arms deterministic fault injection (`None` in production):
    /// trace corruption is applied to the compiled trace before the
    /// integrity check, estimator poisoning to the SoftArch reference, and
    /// the plan rides into the Monte Carlo engine for worker-level faults.
    ///
    /// # Errors
    ///
    /// Only configuration-level failures that no estimator can work
    /// around: a zero rate or an AVF-0 trace (from the renewal reference).
    pub fn component_mttf(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        chaos: Option<FaultPlan>,
    ) -> Result<GuardedMttf, SerrError> {
        let mut notes = Vec::new();
        let mut floor = Provenance::Clean;

        // 1. The exact renewal reference — terminal on error.
        let renewal = renewal_mttf(trace, rate, self.frequency)?;

        // 2. The SoftArch reference, with injected estimator poisoning.
        let (softarch, refs_agree) =
            self.softarch_reference(trace, rate, renewal, chaos, &mut notes, &mut floor);

        // 3. Compile the trace, inject any planned corruption, and verify.
        let compiled = self.compiled_for_run(trace, chaos, &mut notes, &mut floor);

        // 4. Monte Carlo attempts with derived retry seeds.
        let mut accepted: Option<MttfEstimate> = None;
        for attempt in 0..=self.policy.max_retries {
            let mut cfg = self.mc;
            if attempt > 0 {
                cfg.seed = mix(&[self.mc.seed, u64::from(attempt)]);
                floor = floor.worse(Provenance::Retried);
            }
            cfg.chaos = chaos;
            let mut engine = MonteCarlo::new(cfg);
            if let Some(obs) = &self.obs {
                engine = engine.with_observer(obs.clone());
            }
            let run = match &compiled {
                Some(c) => engine.component_mttf(c, rate, self.frequency),
                None => engine.component_mttf(trace, rate, self.frequency),
            };
            let est = match run {
                Ok(est) => est,
                Err(e) => {
                    notes.push(format!("monte carlo attempt {attempt} failed: {e}"));
                    continue;
                }
            };
            if let Err(why) = estimate_sanity(&est) {
                notes.push(format!("monte carlo attempt {attempt} insane: {why}"));
                continue;
            }
            let tol = self.policy.rel_tol.max(self.policy.ci_mult * est.relative_ci95());
            let gap = relative_gap(est.mttf.as_secs(), renewal.as_secs());
            if gap > tol {
                notes.push(format!(
                    "monte carlo attempt {attempt} inconsistent with renewal: \
                     relative gap {gap:.3e} exceeds tolerance {tol:.3e}"
                ));
                continue;
            }
            // 4b. Sampler consistency vote: the event loop never reads the
            // prefix tables the inversion samplers invert, so an
            // independent event-loop run on the *same* compiled trace
            // cross-checks the inversion machinery — scalar or batched —
            // itself (defense in depth beyond the renewal check, which is
            // computed from the uncompiled source trace).
            if est.sampler != SamplerKind::EventLoop && self.policy.oracle_trials > 0 {
                match self.event_loop_oracle(trace, compiled.as_ref(), rate, attempt) {
                    Ok(oracle) => {
                        if let Some(obs) = &self.obs {
                            obs.metrics().add("guard.oracle_runs", 1);
                        }
                        if let Some(why) = oracle_disagreement(&est, &oracle, &self.policy) {
                            notes.push(format!("monte carlo attempt {attempt}: {why}"));
                            continue;
                        }
                    }
                    Err(e) => {
                        notes.push(format!(
                            "monte carlo attempt {attempt}: event-loop oracle failed: {e}"
                        ));
                        continue;
                    }
                }
            }
            if est.truncated {
                notes.push(format!(
                    "monte carlo attempt {attempt} truncated by deadline \
                     ({} of {} trials)",
                    est.ttf_seconds.count, self.mc.trials
                ));
                floor = floor.worse(Provenance::Degraded);
            }
            accepted = Some(est);
            break;
        }

        // 5. Accept, or degrade to the analytic answer.
        let guarded = match accepted {
            Some(est) => GuardedMttf {
                mttf: est.mttf,
                provenance: floor,
                mc: Some(est),
                renewal,
                softarch,
                notes,
            },
            None => {
                let provenance = if refs_agree {
                    notes.push(
                        "all monte carlo attempts failed; degraded to the analytic \
                         renewal estimate"
                            .to_owned(),
                    );
                    floor.worse(Provenance::Degraded)
                } else {
                    notes.push(
                        "all monte carlo attempts failed and the analytic references \
                         disagree; result is suspect"
                            .to_owned(),
                    );
                    Provenance::Suspect
                };
                GuardedMttf { mttf: renewal, provenance, mc: None, renewal, softarch, notes }
            }
        };
        self.emit_verdict(&guarded);
        Ok(guarded)
    }

    /// Estimates guarded component MTTFs for *every* rate in `rates` from
    /// one shared detect-or-degrade pass — the guard-layer face of the
    /// shared-stream sweep kernel ([`MonteCarlo::component_mttf_multi`]).
    ///
    /// Shared work runs once for the whole group: the trace is compiled
    /// (and any injected corruption applied and integrity-screened) a
    /// single time, so a corruption caught there raises the provenance
    /// floor of **every** dependent point, and one Monte Carlo kernel run
    /// covers all rates on common random numbers. Per point, the estimate
    /// still has to pass the sanity screen and the renewal cross-check —
    /// an estimate that fails either degrades *that* point to its analytic
    /// renewal answer (never a silent clean tag), and a fault in a shared
    /// chunk degrades every point at once. Unlike
    /// [`Guard::component_mttf`], this path does not retry with fresh
    /// seeds and skips the event-loop oracle vote: the per-point renewal
    /// cross-check is the acceptance bar, which keeps the shared pass
    /// worth sharing.
    ///
    /// # Errors
    ///
    /// Only configuration-level failures that poison the whole group
    /// before any estimator can run: a zero rate anywhere in `rates` or an
    /// AVF-0 trace (from the renewal reference).
    pub fn component_mttf_multi(
        &self,
        trace: &dyn VulnerabilityTrace,
        rates: &[RawErrorRate],
        chaos: Option<FaultPlan>,
    ) -> Result<Vec<GuardedMttf>, SerrError> {
        if rates.is_empty() {
            return Ok(Vec::new());
        }
        // Exact references per point — terminal on error, like the single
        // path: an unusable configuration has nothing to degrade to.
        let renewals: Vec<Mttf> = rates
            .iter()
            .map(|&r| renewal_mttf(trace, r, self.frequency))
            .collect::<Result<_, _>>()?;

        // Shared compile + injected corruption + integrity screen: one
        // compile guards the whole group, and a detected corruption floors
        // every dependent point.
        let mut shared_notes = Vec::new();
        let mut shared_floor = Provenance::Clean;
        let compiled = self.compiled_for_run(trace, chaos, &mut shared_notes, &mut shared_floor);

        // One shared-stream kernel run across every rate.
        let mut cfg = self.mc;
        cfg.chaos = chaos;
        let mut engine = MonteCarlo::new(cfg);
        if let Some(obs) = &self.obs {
            engine = engine.with_observer(obs.clone());
        }
        let runs = match &compiled {
            Some(c) => engine.component_mttf_multi(c, rates, self.frequency),
            None => engine.component_mttf_multi(trace, rates, self.frequency),
        };
        let per_point: Vec<Result<MttfEstimate, SerrError>> = match runs {
            Ok(v) => v,
            // A fault in a shared chunk (engine fault, exhausted deadline,
            // poisoned shared trace) is a fault in every point built on it.
            Err(e) => rates.iter().map(|_| Err(e.clone())).collect(),
        };

        let mut out = Vec::with_capacity(rates.len());
        for ((&rate, &renewal), run) in rates.iter().zip(&renewals).zip(per_point) {
            let mut notes = shared_notes.clone();
            let mut floor = shared_floor;
            let (softarch, refs_agree) =
                self.softarch_reference(trace, rate, renewal, chaos, &mut notes, &mut floor);
            let accepted = match run {
                Ok(est) => {
                    if let Err(why) = estimate_sanity(&est) {
                        notes.push(format!("shared-stream monte carlo insane: {why}"));
                        None
                    } else {
                        let tol =
                            self.policy.rel_tol.max(self.policy.ci_mult * est.relative_ci95());
                        let gap = relative_gap(est.mttf.as_secs(), renewal.as_secs());
                        if gap > tol {
                            notes.push(format!(
                                "shared-stream monte carlo inconsistent with renewal: \
                                 relative gap {gap:.3e} exceeds tolerance {tol:.3e}"
                            ));
                            None
                        } else {
                            if est.truncated {
                                notes.push(format!(
                                    "shared-stream monte carlo truncated by deadline \
                                     ({} of {} trials)",
                                    est.ttf_seconds.count, self.mc.trials
                                ));
                                floor = floor.worse(Provenance::Degraded);
                            }
                            Some(est)
                        }
                    }
                }
                Err(e) => {
                    notes.push(format!("shared-stream monte carlo failed: {e}"));
                    None
                }
            };
            let guarded = match accepted {
                Some(est) => GuardedMttf {
                    mttf: est.mttf,
                    provenance: floor,
                    mc: Some(est),
                    renewal,
                    softarch,
                    notes,
                },
                None => {
                    let provenance = if refs_agree {
                        notes.push(
                            "shared-stream monte carlo rejected; degraded to the analytic \
                             renewal estimate"
                                .to_owned(),
                        );
                        floor.worse(Provenance::Degraded)
                    } else {
                        notes.push(
                            "shared-stream monte carlo rejected and the analytic references \
                             disagree; result is suspect"
                                .to_owned(),
                        );
                        Provenance::Suspect
                    };
                    GuardedMttf { mttf: renewal, provenance, mc: None, renewal, softarch, notes }
                }
            };
            self.emit_verdict(&guarded);
            out.push(guarded);
        }
        Ok(out)
    }

    /// The SoftArch reference for one point, with injected estimator
    /// poisoning applied and the quarantine vote taken: returns the
    /// reference (when computable) and whether it agrees with renewal
    /// within tolerance. A disagreeing reference is noted and floors the
    /// provenance at [`Provenance::Degraded`] — a reference estimator is
    /// provably wrong, so the run is never reported pristine.
    fn softarch_reference(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
        renewal: Mttf,
        chaos: Option<FaultPlan>,
        notes: &mut Vec<String>,
        floor: &mut Provenance,
    ) -> (Option<Mttf>, bool) {
        let softarch = match SoftArch::new(self.frequency).component_mttf(trace, rate) {
            Ok(m) => {
                let poison = chaos.and_then(|p| p.rate_poison_factor());
                Some(match poison {
                    Some(f) => Mttf::from_secs(m.as_secs() * f),
                    None => m,
                })
            }
            Err(e) => {
                notes.push(format!("softarch reference unavailable: {e}"));
                None
            }
        };
        let refs_agree = softarch
            .is_some_and(|s| relative_gap(s.as_secs(), renewal.as_secs()) <= self.policy.rel_tol);
        if let Some(s) = softarch {
            if !refs_agree {
                notes.push(format!(
                    "softarch reference quarantined: {:.3e} s vs renewal {:.3e} s \
                     disagree beyond {:.1}%",
                    s.as_secs(),
                    renewal.as_secs(),
                    self.policy.rel_tol * 100.0
                ));
                // The result still rests on two independent methods (Monte
                // Carlo + renewal), but a reference estimator is provably
                // wrong: never report this run as pristine.
                *floor = floor.worse(Provenance::Degraded);
            }
        }
        (softarch, refs_agree)
    }

    /// Mirrors the audit trail into the event stream: one `guard.fallback`
    /// warning per note, sequenced by note index so the stream is
    /// byte-identical for identical runs, then a closing `guard.verdict`
    /// carrying the provenance tag.
    fn emit_verdict(&self, g: &GuardedMttf) {
        let Some(obs) = &self.obs else { return };
        for (i, note) in g.notes.iter().enumerate() {
            obs.emit(Event::warn("guard.fallback", i as u64).with("note", note.clone()));
        }
        obs.emit(
            Event::new("guard.verdict", g.notes.len() as u64)
                .with("provenance", g.provenance.to_string())
                .with("mttf_s", g.mttf.as_secs())
                .with("mc_accepted", g.mc.is_some()),
        );
        obs.metrics().add("guard.runs", 1);
        obs.metrics().add("guard.fallback_notes", g.notes.len() as u64);
    }

    /// Runs the small event-loop cross-check (see
    /// [`GuardPolicy::oracle_trials`]) on the same trace the candidate
    /// estimate sampled — *including* any injected corruption baked into
    /// the compiled form, which is the point: the event loop votes on the
    /// compiled state through an independent code path and an independent
    /// derived seed.
    fn event_loop_oracle(
        &self,
        trace: &dyn VulnerabilityTrace,
        compiled: Option<&CompiledTrace>,
        rate: RawErrorRate,
        attempt: u32,
    ) -> Result<MttfEstimate, SerrError> {
        let cfg = MonteCarloConfig {
            sampler: SamplerKind::EventLoop,
            trials: self.policy.oracle_trials.min(self.mc.trials),
            seed: mix(&[self.mc.seed, 0x0DAC_1E00, u64::from(attempt)]),
            chaos: None,
            ..self.mc
        };
        let engine = MonteCarlo::new(cfg);
        match compiled {
            Some(c) => engine.component_mttf(c, rate, self.frequency),
            None => engine.component_mttf(trace, rate, self.frequency),
        }
    }

    /// Compiles the trace for the Monte Carlo run, applying and then
    /// screening any injected corruption. A compile that fails
    /// [`CompiledTrace::verify`] is rebuilt from the source trace and the
    /// run floor raised to [`Provenance::Retried`].
    fn compiled_for_run(
        &self,
        trace: &dyn VulnerabilityTrace,
        chaos: Option<FaultPlan>,
        notes: &mut Vec<String>,
        floor: &mut Provenance,
    ) -> Option<CompiledTrace> {
        let mut compiled = CompiledTrace::compile(trace)?;
        if let Some(fault) = chaos.and_then(|p| p.trace_fault()) {
            match fault {
                TraceFault::ValueBitFlip { bit } => compiled.chaos_flip_dominant_value_bit(bit),
                TraceFault::PrefixPerturb { selector, delta_frac } => {
                    compiled.chaos_perturb_prefix(selector, delta_frac);
                }
                TraceFault::ConsistentScale { factor } => {
                    compiled.chaos_scale_dominant_value(factor);
                }
            }
        }
        match compiled.verify() {
            Ok(()) => Some(compiled),
            Err(e) => {
                notes.push(format!(
                    "compiled trace failed integrity verification ({e}); recompiled \
                     from the source trace"
                ));
                *floor = floor.worse(Provenance::Retried);
                CompiledTrace::compile(trace)
            }
        }
    }
}

/// `|a − b| / |b|`, with non-finite inputs treated as infinitely far apart.
fn relative_gap(a: f64, b: f64) -> f64 {
    if !a.is_finite() || !b.is_finite() || b == 0.0 {
        return f64::INFINITY;
    }
    (a - b).abs() / b.abs()
}

/// The sampler consistency vote: an accepted inversion estimate (scalar or
/// batched) must agree with an independent event-loop run within the
/// combined CI-derived tolerance. Returns the rejection note on
/// disagreement.
fn oracle_disagreement(
    est: &MttfEstimate,
    oracle: &MttfEstimate,
    policy: &GuardPolicy,
) -> Option<String> {
    let gap = relative_gap(est.mttf.as_secs(), oracle.mttf.as_secs());
    let tol = policy.rel_tol.max(policy.ci_mult * (est.relative_ci95() + oracle.relative_ci95()));
    (gap > tol).then(|| {
        format!(
            "{} sampler disagrees with the event-loop oracle \
             ({:.3e} s vs {:.3e} s): relative gap {gap:.3e} exceeds tolerance {tol:.3e}",
            est.sampler.label(),
            est.mttf.as_secs(),
            oracle.mttf.as_secs()
        )
    })
}

/// NaN / monotonicity poisoning detector for a Monte Carlo estimate.
fn estimate_sanity(est: &MttfEstimate) -> Result<(), String> {
    let s = &est.ttf_seconds;
    for (name, v) in [
        ("mttf", est.mttf.as_secs()),
        ("mean", s.mean),
        ("std_dev", s.std_dev),
        ("ci95", s.ci95),
        ("min", s.min),
        ("max", s.max),
    ] {
        if !v.is_finite() {
            return Err(format!("{name} is not finite: {v}"));
        }
    }
    if est.mttf.as_secs() <= 0.0 {
        return Err(format!("mttf is not positive: {}", est.mttf.as_secs()));
    }
    if s.ci95 < 0.0 || s.std_dev < 0.0 {
        return Err("negative dispersion statistic".to_owned());
    }
    if !(s.min <= s.mean && s.mean <= s.max) {
        return Err(format!("order violated: min {} mean {} max {}", s.min, s.mean, s.max));
    }
    if s.count == 0 {
        return Err("estimate built from zero trials".to_owned());
    }
    Ok(())
}

/// Tags an unguarded Monte Carlo estimate for display: [`Provenance::Clean`]
/// for a full sane run, [`Provenance::Degraded`] for a deadline-truncated
/// one, [`Provenance::Suspect`] if the numbers fail the sanity screen.
#[must_use]
pub fn classify_estimate(est: &MttfEstimate) -> Provenance {
    if estimate_sanity(est).is_err() {
        Provenance::Suspect
    } else if est.truncated {
        Provenance::Degraded
    } else {
        Provenance::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_inject::FaultKind;
    use serr_trace::IntervalTrace;

    fn campaign_trace() -> IntervalTrace {
        let mut levels = vec![1.0; 16];
        levels.extend(std::iter::repeat_n(0.5, 16));
        levels.extend(std::iter::repeat_n(0.0, 32));
        IntervalTrace::from_levels(&levels).expect("valid levels")
    }

    fn guard() -> Guard {
        let cfg = MonteCarloConfig { trials: 3_000, threads: 1, ..Default::default() };
        Guard::new(Frequency::base(), cfg)
    }

    #[test]
    fn fault_free_run_is_clean_and_matches_renewal() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        let g = guard().component_mttf(&trace, rate, None).unwrap();
        assert_eq!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        assert!(g.mc.is_some());
        let est = g.mc.as_ref().unwrap();
        let gap = relative_gap(g.mttf.as_secs(), g.renewal.as_secs());
        assert!(gap <= 0.02f64.max(4.0 * est.relative_ci95()), "gap {gap}");
    }

    #[test]
    fn trace_corruption_is_detected_and_healed() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        // A bit-flip plan: verify() must catch it and the guard recompile.
        let plan = FaultPlan::new(11, FaultKind::TraceValueFlip);
        assert!(matches!(plan.trace_fault(), Some(TraceFault::ValueBitFlip { .. })));
        let g = guard().component_mttf(&trace, rate, Some(plan)).unwrap();
        assert_ne!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        assert!(g.notes.iter().any(|n| n.contains("integrity")), "notes: {:?}", g.notes);
        // The healed answer still agrees with the analytic reference.
        assert!(relative_gap(g.mttf.as_secs(), g.renewal.as_secs()) < 0.1);
    }

    #[test]
    fn consistent_corruption_is_caught_by_the_cross_engine_check() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        let plan = FaultPlan::new(3, FaultKind::TraceConsistentCorrupt);
        assert!(matches!(plan.trace_fault(), Some(TraceFault::ConsistentScale { .. })));
        let g = guard().component_mttf(&trace, rate, Some(plan)).unwrap();
        // The corrupted trace self-verifies, so only the renewal
        // cross-check can flag it; the guard must not report Clean...
        assert_ne!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        // ...and the degraded answer is the (uncorrupted) analytic one.
        assert_eq!(g.mttf.as_secs().to_bits(), g.renewal.as_secs().to_bits());
    }

    #[test]
    fn poisoned_reference_estimator_is_quarantined() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        let plan = FaultPlan::new(5, FaultKind::RatePoison);
        let factor = plan.rate_poison_factor().unwrap();
        assert!(factor >= 1.5, "poison factor {factor} too small to detect");
        let g = guard().component_mttf(&trace, rate, Some(plan)).unwrap();
        assert_ne!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        assert!(g.notes.iter().any(|n| n.contains("quarantined")), "notes: {:?}", g.notes);
        // The answer itself comes from the two agreeing engines.
        assert!(relative_gap(g.mttf.as_secs(), g.renewal.as_secs()) < 0.1);
    }

    #[test]
    fn guard_fallbacks_surface_as_typed_events() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        let (obs, sink) = serr_obs::Obs::memory();
        let plan = FaultPlan::new(11, FaultKind::TraceValueFlip);
        let g = guard().with_observer(obs).component_mttf(&trace, rate, Some(plan)).unwrap();
        assert!(!g.notes.is_empty(), "corruption plan should leave an audit trail");
        // One warn event per audit note, sequenced by note index.
        let fallbacks = sink.events_of("guard.fallback");
        assert_eq!(fallbacks.len(), g.notes.len());
        for (i, e) in fallbacks.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.level, serr_obs::Level::Warn);
        }
        // Exactly one closing verdict, sequenced after the notes.
        let verdicts = sink.events_of("guard.verdict");
        assert_eq!(verdicts.len(), 1);
        assert_eq!(verdicts[0].seq, g.notes.len() as u64);
        // The inner Monte Carlo engine shares the sink.
        assert!(!sink.events_of("mc.chunk").is_empty());
    }

    #[test]
    fn inversion_runs_are_vetted_by_the_event_loop_oracle() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        // The default-configured guard samples by batched inversion; a
        // clean run must carry exactly one oracle vote and stay Clean.
        let (obs, _sink) = serr_obs::Obs::memory();
        let g = guard().with_observer(obs.clone()).component_mttf(&trace, rate, None).unwrap();
        assert_eq!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        assert_eq!(g.mc.as_ref().unwrap().sampler, serr_mc::SamplerKind::BatchedInversion);
        assert_eq!(obs.metrics().snapshot().counters["guard.oracle_runs"], 1);

        // The scalar inversion sampler is vetted the same way.
        let cfg = MonteCarloConfig {
            trials: 3_000,
            threads: 1,
            sampler: serr_mc::SamplerKind::Inversion,
            ..Default::default()
        };
        let (obs, _sink) = serr_obs::Obs::memory();
        let g = Guard::new(Frequency::base(), cfg)
            .with_observer(obs.clone())
            .component_mttf(&trace, rate, None)
            .unwrap();
        assert_eq!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        assert_eq!(obs.metrics().snapshot().counters["guard.oracle_runs"], 1);

        // An event-loop-configured guard has nothing to cross-check.
        let cfg = MonteCarloConfig {
            trials: 3_000,
            threads: 1,
            sampler: serr_mc::SamplerKind::EventLoop,
            ..Default::default()
        };
        let (obs, _sink) = serr_obs::Obs::memory();
        let g = Guard::new(Frequency::base(), cfg)
            .with_observer(obs.clone())
            .component_mttf(&trace, rate, None)
            .unwrap();
        assert_eq!(g.provenance, Provenance::Clean, "notes: {:?}", g.notes);
        assert!(!obs.metrics().snapshot().counters.contains_key("guard.oracle_runs"));
    }

    #[test]
    fn oracle_vote_rejects_gross_disagreement_and_tolerates_noise() {
        fn est(mean_s: f64, ci95: f64, sampler: serr_mc::SamplerKind) -> MttfEstimate {
            MttfEstimate {
                mttf: Mttf::from_secs(mean_s),
                ttf_seconds: serr_numeric::stats::Summary {
                    count: 10_000,
                    mean: mean_s,
                    std_dev: ci95 * 51.0,
                    ci95,
                    min: 0.0,
                    max: mean_s * 10.0,
                },
                mean_events_per_trial: 1.0,
                truncated: false,
                sampler,
            }
        }
        let policy = GuardPolicy::default();
        let inv = est(1.0e6, 5.0e3, serr_mc::SamplerKind::Inversion);
        // Within combined CI noise: no vote against.
        let close = est(1.01e6, 8.0e3, serr_mc::SamplerKind::EventLoop);
        assert_eq!(oracle_disagreement(&inv, &close, &policy), None);
        // A corrupted prefix table shifts the inversion answer far outside
        // any honest noise band: the vote must reject.
        let far = est(2.0e6, 8.0e3, serr_mc::SamplerKind::EventLoop);
        let why = oracle_disagreement(&inv, &far, &policy).expect("gross gap must be rejected");
        assert!(why.contains("event-loop oracle"), "note: {why}");
    }

    #[test]
    fn multi_clean_run_matches_single_guard_per_point() {
        let trace = campaign_trace();
        let rates: Vec<RawErrorRate> =
            [5.0, 50.0, 400.0].iter().map(|&y| RawErrorRate::per_year(y)).collect();
        let g = guard();
        let multi = g.component_mttf_multi(&trace, &rates, None).unwrap();
        assert_eq!(multi.len(), rates.len());
        for (&rate, m) in rates.iter().zip(&multi) {
            assert_eq!(m.provenance, Provenance::Clean, "notes: {:?}", m.notes);
            // The shared kernel's accepted estimate is the bit-identical
            // attempt-0 estimate the single guard accepts.
            let single = g.component_mttf(&trace, rate, None).unwrap();
            assert_eq!(
                m.mc.as_ref().unwrap().mttf.as_secs().to_bits(),
                single.mc.as_ref().unwrap().mttf.as_secs().to_bits()
            );
        }
    }

    #[test]
    fn multi_shared_corruption_floors_every_point() {
        let trace = campaign_trace();
        let rates: Vec<RawErrorRate> =
            [10.0, 50.0, 200.0].iter().map(|&y| RawErrorRate::per_year(y)).collect();
        // The same prefix/value corruption plans the single-point campaigns
        // pin: one corrupted shared trace must worsen every dependent
        // point's tag — a silently clean subset is the failure mode.
        for kind in [FaultKind::TraceValueFlip, FaultKind::TracePrefixPerturb] {
            let plan = FaultPlan::new(11, kind);
            let multi = guard().component_mttf_multi(&trace, &rates, Some(plan)).unwrap();
            assert_eq!(multi.len(), rates.len());
            for m in &multi {
                assert_ne!(m.provenance, Provenance::Clean, "notes: {:?}", m.notes);
                assert!(
                    m.notes.iter().any(|n| n.contains("integrity")),
                    "shared corruption missing from notes: {:?}",
                    m.notes
                );
                // Whatever survived still agrees with the analytic answer.
                assert!(relative_gap(m.mttf.as_secs(), m.renewal.as_secs()) < 0.1);
            }
        }
    }

    #[test]
    fn classify_estimate_maps_states_to_tags() {
        let trace = campaign_trace();
        let rate = RawErrorRate::per_year(50.0);
        let cfg = MonteCarloConfig { trials: 3_000, threads: 1, ..Default::default() };
        let est = MonteCarlo::new(cfg).component_mttf(&trace, rate, Frequency::base()).unwrap();
        assert_eq!(classify_estimate(&est), Provenance::Clean);
        let mut truncated = est.clone();
        truncated.truncated = true;
        assert_eq!(classify_estimate(&truncated), Provenance::Degraded);
        let mut poisoned = est;
        poisoned.ttf_seconds.mean = f64::NAN;
        assert_eq!(classify_estimate(&poisoned), Provenance::Suspect);
    }
}
