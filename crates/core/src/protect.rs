//! Textual protection specifications (`--protect`), shared by the CLI and
//! the estimation service.
//!
//! A protection spec is a comma-separated list of `kind:param` stages —
//! `ecc:64,scrub:1e6,delay:5e3` — applied left-to-right as a
//! [`TransformPipeline`] to the workload trace *before* compilation (see
//! the transform module docs in `serr-trace` for the mechanism semantics).
//! Like [`crate::workspec::WorkloadSpec`], there is exactly one grammar and
//! one application path for every front end, so protected runs stay
//! bit-identical between the batch CLI and the service.

use std::sync::Arc;

use serr_trace::{Transform, TransformPipeline, VulnerabilityTrace};
use serr_types::SerrError;

/// A parsed `--protect` specification: an ordered list of protection
/// stages. The empty spec (`""` or `none`) is the identity and costs
/// nothing to apply.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProtectionSpec {
    stages: Vec<Transform>,
}

impl ProtectionSpec {
    /// The no-protection spec.
    #[must_use]
    pub fn none() -> Self {
        ProtectionSpec::default()
    }

    /// Parses the `--protect` argument value: comma-separated
    /// `ecc:<word_bits>`, `scrub:<interval_cycles>`, and
    /// `delay:<window_cycles>` stages, applied in the order written.
    /// Cycle counts accept scientific notation (`scrub:1e6`); `none` (or
    /// the empty string) is the identity.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] naming the offending stage for
    /// unknown kinds, malformed parameters, or degenerate values
    /// (`ecc` words below 2 bits, zero scrub intervals).
    pub fn parse(s: &str) -> Result<Self, SerrError> {
        let trimmed = s.trim();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(ProtectionSpec::none());
        }
        let mut stages = Vec::new();
        for stage in trimmed.split(',') {
            let (kind, param) = stage.split_once(':').ok_or_else(|| {
                SerrError::invalid_config(format!(
                    "protect stage `{stage}` is not of the form kind:param"
                ))
            })?;
            let t = match kind {
                "ecc" => {
                    let word_bits = parse_count(stage, param)?;
                    let word_bits = u32::try_from(word_bits).map_err(|_| {
                        SerrError::invalid_config(format!(
                            "protect stage `{stage}`: word width {word_bits} too large"
                        ))
                    })?;
                    Transform::EccSecDed { word_bits }
                }
                "scrub" => Transform::Scrub { interval_cycles: parse_count(stage, param)? },
                "delay" => Transform::DelayReport { window_cycles: parse_count(stage, param)? },
                _ => {
                    return Err(SerrError::invalid_config(format!(
                        "unknown protect stage kind `{kind}` (expected ecc, scrub, or delay)"
                    )));
                }
            };
            t.validate()
                .map_err(|e| SerrError::invalid_config(format!("protect stage `{stage}`: {e}")))?;
            stages.push(t);
        }
        Ok(ProtectionSpec { stages })
    }

    /// True when applying this spec is a guaranteed no-op.
    #[must_use]
    pub fn is_none(&self) -> bool {
        self.pipeline().is_identity()
    }

    /// The canonical spelling: parses back to an equal value, and two
    /// equal specs render identically (`none` for the empty spec). Used as
    /// a fingerprint component alongside the workload's canonical form.
    #[must_use]
    pub fn canonical(&self) -> String {
        if self.stages.is_empty() {
            return "none".to_owned();
        }
        self.pipeline().to_string()
    }

    /// The transform pipeline this spec describes.
    #[must_use]
    pub fn pipeline(&self) -> TransformPipeline {
        TransformPipeline::new(self.stages.clone())
    }

    /// Applies the spec to a workload trace. The empty spec returns the
    /// input `Arc` unchanged.
    ///
    /// # Errors
    ///
    /// Propagates [`SerrError::InvalidTrace`] from the pipeline: traces
    /// too large to materialize (e.g. the `combined` workload's tiled
    /// concatenation), delay windows reaching the period, or scrub
    /// staircases past the segment cap.
    pub fn apply(
        &self,
        trace: Arc<dyn VulnerabilityTrace>,
    ) -> Result<Arc<dyn VulnerabilityTrace>, SerrError> {
        self.pipeline().apply(trace)
    }
}

/// Parses a stage parameter as a non-negative integer cycle/bit count,
/// accepting scientific notation the way the CLI's other count flags do.
fn parse_count(stage: &str, param: &str) -> Result<u64, SerrError> {
    let v: f64 = param.parse().map_err(|_| {
        SerrError::invalid_config(format!("protect stage `{stage}`: `{param}` is not a number"))
    })?;
    if !(v.is_finite() && v >= 0.0 && v <= 2f64.powi(53) && v.fract() == 0.0) {
        return Err(SerrError::invalid_config(format!(
            "protect stage `{stage}`: `{param}` must be a non-negative integer below 2^53"
        )));
    }
    Ok(v as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    #[test]
    fn specs_parse_and_canonicalize() {
        assert!(ProtectionSpec::parse("").unwrap().is_none());
        assert!(ProtectionSpec::parse("none").unwrap().is_none());
        assert_eq!(ProtectionSpec::parse("none").unwrap().canonical(), "none");

        let spec = ProtectionSpec::parse("ecc:64,scrub:1e6,delay:5e3").unwrap();
        assert_eq!(spec.canonical(), "ecc:64,scrub:1000000,delay:5000");
        assert_eq!(ProtectionSpec::parse(&spec.canonical()).unwrap(), spec);
        assert_eq!(
            spec.pipeline().stages(),
            &[
                Transform::EccSecDed { word_bits: 64 },
                Transform::Scrub { interval_cycles: 1_000_000 },
                Transform::DelayReport { window_cycles: 5_000 },
            ]
        );
    }

    #[test]
    fn malformed_specs_are_named_in_the_error() {
        for bad in
            ["ecc", "ecc:x", "ecc:1", "ecc:-8", "ecc:2.5", "scrub:0", "parity:1", "scrub:1e300"]
        {
            let err = ProtectionSpec::parse(bad).unwrap_err();
            assert!(matches!(err, SerrError::InvalidConfig { .. }), "{bad}: {err}");
        }
    }

    #[test]
    fn empty_spec_returns_the_input_arc() {
        let t: Arc<dyn VulnerabilityTrace> = Arc::new(IntervalTrace::busy_idle(10, 10).unwrap());
        let out = ProtectionSpec::none().apply(t.clone()).unwrap();
        assert!(Arc::ptr_eq(&t, &out));
    }

    #[test]
    fn applied_spec_reduces_avf() {
        let t: Arc<dyn VulnerabilityTrace> =
            Arc::new(IntervalTrace::constant(1 << 16, 0.5).unwrap());
        let out = ProtectionSpec::parse("scrub:4096").unwrap().apply(t.clone()).unwrap();
        assert!((out.avf() - 0.25).abs() < 1e-12, "avf {}", out.avf());
    }
}
