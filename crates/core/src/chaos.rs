//! Deterministic chaos campaigns over the estimator stack.
//!
//! A *campaign* arms one [`FaultPlan`] — a seed plus a [`FaultKind`] — and
//! runs the stack end to end under it: guarded MTTF estimation for the
//! estimator-level faults (trace corruption, worker panics, injected
//! deadline exhaustion, reference poisoning) and checkpoint/cache probes
//! for the on-disk faults (journal corruption, lock contention, simulated
//! I/O errors, trace-cache corruption). Every campaign yields a
//! [`CampaignOutcome`] whose [`Provenance`] tag says how the stack coped,
//! and a **miss** flag for the one unacceptable result: output tagged
//! [`Provenance::Clean`] that deviates from the fault-free golden answer.
//!
//! Every injection decision is a pure function of the plan's seed, so the
//! same [`ChaosConfig`] reproduces the identical campaign sequence and
//! outcome tags at any thread count.

use std::fs;
use std::path::PathBuf;
use std::sync::Once;

use serr_inject::rng::{mix, unit};
use serr_inject::{FaultKind, FaultPlan, StoreFault};
use serr_mc::SamplerKind;
use serr_obs::{Event, Obs};
use serr_trace::{IntervalTrace, Transform, TransformPipeline};
use serr_types::{Frequency, Provenance, RawErrorRate, SerrError};

use crate::checkpoint::{self, Journal, JournalRow, SweepOptions};
use crate::guard::{Guard, GuardPolicy};
use crate::jsonio::Json;
use crate::pipeline;

/// Configuration of one chaos run (a sequence of campaigns).
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Number of campaigns to run.
    pub campaigns: usize,
    /// Master seed; campaign `i` derives its plan seed as `mix(seed, i)`.
    pub seed: u64,
    /// Monte Carlo trials per guarded estimate.
    pub trials: u64,
    /// Monte Carlo worker threads (`0` = all cores). Outcome tags are
    /// invariant to this by construction.
    pub threads: usize,
    /// Which time-to-failure sampler the guarded campaigns run. The default
    /// mirrors production ([`SamplerKind::BatchedInversion`]); campaigns
    /// target the inversion kinds deliberately, because both *read* the
    /// compiled prefix table that [`FaultKind::TracePrefixPerturb`]
    /// corrupts.
    pub sampler: SamplerKind,
    /// Fault kinds to cycle through (campaign `i` uses `kinds[i % len]`).
    pub kinds: Vec<FaultKind>,
    /// Scratch directory for the on-disk fault probes. `None` uses a
    /// process-unique directory under the system temp dir.
    pub scratch_dir: Option<PathBuf>,
    /// Observer receiving one `chaos.verdict` event per campaign (sequenced
    /// by campaign index) plus campaign/miss counters. `None` routes to the
    /// process-global observer.
    pub obs: Option<Obs>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            campaigns: 200,
            seed: 0xC4A0_5CA0_0000_0001,
            trials: 3_000,
            threads: 0,
            sampler: SamplerKind::default(),
            kinds: FaultKind::CORE.to_vec(),
            scratch_dir: None,
            obs: None,
        }
    }
}

/// One campaign's result.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// Campaign index within the run.
    pub campaign: usize,
    /// The injected fault kind.
    pub kind: FaultKind,
    /// The plan seed (replays the campaign exactly).
    pub seed: u64,
    /// How the stack coped (the detect-or-degrade tag).
    pub outcome: Provenance,
    /// The guarded MTTF, for estimator-level campaigns.
    pub mttf_seconds: Option<f64>,
    /// Relative deviation from the fault-free golden MTTF.
    pub deviation: Option<f64>,
    /// `true` iff the output was tagged [`Provenance::Clean`] yet deviates
    /// from the golden answer (or an on-disk probe silently returned wrong
    /// data) — the invariant violation the harness exists to catch.
    pub miss: bool,
    /// The sampler that produced the accepted Monte Carlo estimate —
    /// `None` for on-disk probes and for campaigns where the guard
    /// degraded without accepting any estimate. Recorded so a logged
    /// verdict says which sampling code path was under attack.
    pub sampler: Option<SamplerKind>,
    /// One-line human-readable account.
    pub detail: String,
}

impl CampaignOutcome {
    /// The outcome as one JSONL record.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("campaign".to_owned(), Json::Num(self.campaign as f64)),
            ("kind".to_owned(), Json::Str(self.kind.label().to_owned())),
            ("seed".to_owned(), Json::Str(format!("{:#018x}", self.seed))),
            ("outcome".to_owned(), Json::Str(self.outcome.label().to_owned())),
            ("miss".to_owned(), Json::Bool(self.miss)),
            ("detail".to_owned(), Json::Str(self.detail.clone())),
        ];
        if let Some(m) = self.mttf_seconds {
            fields.push(("mttf_seconds".to_owned(), Json::Num(m)));
        }
        if let Some(d) = self.deviation {
            fields.push(("deviation".to_owned(), Json::Num(d)));
        }
        if let Some(k) = self.sampler {
            fields.push(("sampler".to_owned(), Json::Str(k.label().to_owned())));
        }
        Json::Obj(fields)
    }
}

/// The aggregate result of a chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// The fault-free golden MTTF in seconds.
    pub golden_mttf_seconds: f64,
    /// The golden estimate's relative 95% confidence half-width.
    pub golden_rel_ci95: f64,
    /// Per-campaign outcomes, in campaign order.
    pub outcomes: Vec<CampaignOutcome>,
}

impl ChaosReport {
    /// Campaigns whose outcome carries the given tag.
    #[must_use]
    pub fn count(&self, tag: Provenance) -> usize {
        self.outcomes.iter().filter(|o| o.outcome == tag).count()
    }

    /// Campaigns that violated the detect-or-degrade invariant.
    #[must_use]
    pub fn misses(&self) -> usize {
        self.outcomes.iter().filter(|o| o.miss).count()
    }

    /// `true` iff no campaign produced a silently wrong result.
    #[must_use]
    pub fn is_sound(&self) -> bool {
        self.misses() == 0
    }
}

/// The fixed campaign workload: a 64-cycle loop of 16 fully-vulnerable,
/// 16 half-vulnerable, and 32 idle cycles. The first segment carries two
/// thirds of the vulnerability mass, so consistent-corruption faults move
/// the MTTF far beyond any acceptance tolerance.
///
/// # Panics
///
/// Never — the levels are valid by construction.
#[must_use]
pub fn campaign_trace() -> IntervalTrace {
    let mut levels = vec![1.0; 16];
    levels.extend(std::iter::repeat_n(0.5, 16));
    levels.extend(std::iter::repeat_n(0.0, 32));
    IntervalTrace::from_levels(&levels).expect("campaign levels are valid")
}

/// The protection-transformed campaign workload the
/// [`FaultKind::TraceTransform`] campaigns attack: [`campaign_trace`] run
/// through a fixed scrub + SEC-DED pipeline. The scrub staircase fans the
/// 3-segment loop out into dozens of fractional-valued segments, so the
/// verifier and cross-engine votes are exercised on exactly the trace
/// shapes the `--protect` path produces.
///
/// # Panics
///
/// Never — the fixed pipeline is valid for the fixed campaign trace.
#[must_use]
pub fn transformed_campaign_trace() -> IntervalTrace {
    let pipeline = TransformPipeline::new(vec![
        Transform::Scrub { interval_cycles: 16 },
        Transform::EccSecDed { word_bits: 8 },
    ]);
    pipeline.apply_interval(&campaign_trace()).expect("fixed campaign pipeline is valid")
}

/// Suppresses the default panic-hook backtrace for *injected* chaos panics
/// (their payload starts with `chaos: injected`), chaining every other
/// panic to the previously installed hook. Installed at most once per
/// process; campaigns would otherwise spam stderr with expected panics.
pub fn install_chaos_panic_filter() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .is_some_and(|s| s.contains("chaos: injected"));
            if !injected {
                prev(info);
            }
        }));
    });
}

/// A tiny deterministic row for the on-disk fault probes.
#[derive(Debug, Clone, PartialEq)]
struct ProbeRow {
    idx: u64,
    value: f64,
}

impl JournalRow for ProbeRow {
    fn to_journal(&self) -> Json {
        Json::Obj(vec![
            ("idx".to_owned(), Json::Num(self.idx as f64)),
            ("value".to_owned(), Json::Num(self.value)),
        ])
    }
    fn from_journal(v: &Json) -> Option<Self> {
        Some(ProbeRow { idx: v.get("idx")?.as_u64()?, value: v.get("value")?.as_f64()? })
    }
}

/// Pure probe evaluator: the row depends only on `(seed, i)`.
fn probe_eval(seed: u64, i: usize) -> ProbeRow {
    ProbeRow { idx: i as u64, value: unit(mix(&[seed, i as u64])).mul_add(0.9, 0.05) }
}

const PROBE_POINTS: usize = 6;

/// Runs the configured chaos campaigns and reports every outcome.
///
/// # Errors
///
/// Environmental failures only: an unusable scratch directory, or a golden
/// (fault-free) baseline that is itself not [`Provenance::Clean`] — both
/// mean the harness, not the stack under test, is broken. Injected faults
/// never surface as errors; they land in the outcome tags.
pub fn run_chaos(cfg: &ChaosConfig) -> Result<ChaosReport, SerrError> {
    if cfg.campaigns == 0 || cfg.kinds.is_empty() {
        return Err(SerrError::invalid_config(
            "chaos run needs at least one campaign and one fault kind",
        ));
    }
    install_chaos_panic_filter();

    let trace = campaign_trace();
    let rate = RawErrorRate::per_year(50.0);
    let mc = serr_mc::MonteCarloConfig {
        trials: cfg.trials,
        threads: cfg.threads,
        sampler: cfg.sampler,
        ..Default::default()
    };
    let guard = Guard::new(Frequency::base(), mc);

    // The fault-free golden baseline the Clean tag is judged against.
    let golden = guard.component_mttf(&trace, rate, None)?;
    if golden.provenance != Provenance::Clean {
        return Err(SerrError::engine_fault(
            "chaos golden baseline",
            format!("fault-free run tagged {}: {:?}", golden.provenance, golden.notes),
        ));
    }
    let golden_mttf = golden.mttf.as_secs();
    let golden_ci = golden.mc.map_or(0.0, |e| e.relative_ci95());
    let policy = *guard.policy();
    // A Clean-tagged result farther from golden than twice the combined
    // acceptance band cannot be explained by sampling noise: it is a miss.
    let miss_tol = 2.0 * policy.ci_mult.mul_add(golden_ci, policy.rel_tol);

    // The trace-corruption kinds alternate between the single-point guard
    // and the shared-stream sweep-kernel path
    // (`Guard::component_mttf_multi`), so every corruption is also fired
    // at the path where one compiled trace feeds many design points — the
    // invariant under attack there is that the corruption degrades *every*
    // dependent point, never a silently clean subset.
    let sweep_rates = [rate.scale(0.5), rate, rate.scale(2.0)];
    let golden_sweep = sweep_golden(&guard, &trace, &sweep_rates, &policy, "chaos sweep golden")?;

    // The transform campaigns attack a different workload (the transformed
    // trace), so their Clean tag is judged against its own golden baseline.
    // Computed only when the run actually includes the kind.
    let transformed = if cfg.kinds.contains(&FaultKind::TraceTransform) {
        let trace = transformed_campaign_trace();
        let golden = guard.component_mttf(&trace, rate, None)?;
        if golden.provenance != Provenance::Clean {
            return Err(SerrError::engine_fault(
                "chaos transformed golden baseline",
                format!("fault-free run tagged {}: {:?}", golden.provenance, golden.notes),
            ));
        }
        let ci = golden.mc.map_or(0.0, |e| e.relative_ci95());
        let tol = 2.0 * policy.ci_mult.mul_add(ci, policy.rel_tol);
        let sweep =
            sweep_golden(&guard, &trace, &sweep_rates, &policy, "chaos transformed sweep golden")?;
        Some((trace, golden.mttf.as_secs(), tol, sweep))
    } else {
        None
    };

    let scratch = cfg
        .scratch_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join(format!("serr-chaos-{}", std::process::id())));

    let mut outcomes = Vec::with_capacity(cfg.campaigns);
    for campaign in 0..cfg.campaigns {
        let seed = mix(&[cfg.seed, campaign as u64]);
        let kind = cfg.kinds[campaign % cfg.kinds.len()];
        let plan = FaultPlan::new(seed, kind);
        // Odd trace-corruption campaigns take the sweep-kernel path: the
        // parity is a pure function of the campaign index, so the schedule
        // replays identically at any thread count.
        let sweep_path = campaign % 2 == 1;
        let outcome = match kind {
            FaultKind::TraceValueFlip
            | FaultKind::TracePrefixPerturb
            | FaultKind::TraceConsistentCorrupt
                if sweep_path =>
            {
                guarded_sweep_campaign(&guard, &trace, &sweep_rates, plan, campaign, &golden_sweep)?
            }
            FaultKind::TraceValueFlip
            | FaultKind::TracePrefixPerturb
            | FaultKind::TraceConsistentCorrupt
            | FaultKind::ChunkPanic
            | FaultKind::DeadlineExhaust
            | FaultKind::RatePoison => {
                guarded_campaign(&guard, &trace, rate, plan, campaign, golden_mttf, miss_tol)?
            }
            FaultKind::TraceTransform => {
                let (t, t_golden, t_tol, t_sweep) =
                    transformed.as_ref().expect("computed above when the kind is present");
                if sweep_path {
                    guarded_sweep_campaign(&guard, t, &sweep_rates, plan, campaign, t_sweep)?
                } else {
                    guarded_campaign(&guard, t, rate, plan, campaign, *t_golden, *t_tol)?
                }
            }
            FaultKind::CheckpointIo => checkpoint_io_campaign(&scratch, plan, campaign)?,
            FaultKind::JournalCorrupt => journal_corrupt_campaign(&scratch, plan, campaign)?,
            FaultKind::JournalLock => journal_lock_campaign(&scratch, plan, campaign)?,
            FaultKind::CacheCorrupt => cache_corrupt_campaign(&scratch, plan, campaign)?,
            FaultKind::StoreTornTail
            | FaultKind::StoreBitFlip
            | FaultKind::StoreHeaderCorrupt
            | FaultKind::StoreStaleVersion => store_fault_campaign(&scratch, plan, campaign)?,
            // The serve-layer kinds need a running service to mean
            // anything; the request soak in `serr-serve` injects them.
            kind if kind.is_serve() => {
                return Err(SerrError::invalid_config(format!(
                    "fault kind {kind} targets the serving layer; run the serr-serve chaos \
                     soak instead of an estimator campaign"
                )))
            }
            kind => {
                return Err(SerrError::invalid_config(format!(
                    "fault kind {kind} has no estimator campaign"
                )))
            }
        };
        emit_verdict(cfg.obs.as_ref().unwrap_or_else(|| serr_obs::global()), &outcome);
        outcomes.push(outcome);
    }
    let obs = cfg.obs.as_ref().unwrap_or_else(|| serr_obs::global());
    obs.metrics().add("chaos.campaigns", outcomes.len() as u64);
    obs.metrics().add("chaos.misses", outcomes.iter().filter(|o| o.miss).count() as u64);
    let _ = fs::remove_dir_all(&scratch);

    Ok(ChaosReport { golden_mttf_seconds: golden_mttf, golden_rel_ci95: golden_ci, outcomes })
}

/// One typed `chaos.verdict` event per campaign, sequenced by campaign
/// index — the same deterministic key at any thread count. A miss (the
/// detect-or-degrade invariant violated) is the only warning-level verdict.
fn emit_verdict(obs: &Obs, o: &CampaignOutcome) {
    let seq = o.campaign as u64;
    let mut ev =
        if o.miss { Event::warn("chaos.verdict", seq) } else { Event::new("chaos.verdict", seq) };
    ev = ev
        .with("kind", o.kind.label())
        .with("outcome", o.outcome.label())
        .with("miss", o.miss)
        .with("detail", o.detail.clone());
    if let Some(m) = o.mttf_seconds {
        ev = ev.with("mttf_s", m);
    }
    if let Some(k) = o.sampler {
        ev = ev.with("sampler", k.label());
    }
    obs.emit(ev);
}

/// An estimator-level campaign: the guard runs under the plan and its own
/// provenance tag is the verdict.
fn guarded_campaign(
    guard: &Guard,
    trace: &IntervalTrace,
    rate: RawErrorRate,
    plan: FaultPlan,
    campaign: usize,
    golden_mttf: f64,
    miss_tol: f64,
) -> Result<CampaignOutcome, SerrError> {
    let g = guard.component_mttf(trace, rate, Some(plan))?;
    let mttf = g.mttf.as_secs();
    let deviation = (mttf - golden_mttf).abs() / golden_mttf;
    let miss = g.provenance == Provenance::Clean && deviation > miss_tol;
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed: plan.seed,
        outcome: g.provenance,
        mttf_seconds: Some(mttf),
        deviation: Some(deviation),
        miss,
        sampler: g.mc.map(|e| e.sampler),
        detail: g.notes.last().cloned().unwrap_or_else(|| "no anomalies observed".to_owned()),
    })
}

/// Fault-free baseline for the sweep-kernel campaigns: one guarded
/// shared-stream run over every campaign rate, each point required Clean,
/// returned as `(golden mttf seconds, miss tolerance)` per point.
fn sweep_golden(
    guard: &Guard,
    trace: &IntervalTrace,
    rates: &[RawErrorRate],
    policy: &GuardPolicy,
    what: &str,
) -> Result<Vec<(f64, f64)>, SerrError> {
    let golden = guard.component_mttf_multi(trace, rates, None)?;
    golden
        .iter()
        .map(|g| {
            if g.provenance != Provenance::Clean {
                return Err(SerrError::engine_fault(
                    what,
                    format!("fault-free sweep point tagged {}: {:?}", g.provenance, g.notes),
                ));
            }
            let ci = g.mc.as_ref().map_or(0.0, |e| e.relative_ci95());
            Ok((g.mttf.as_secs(), 2.0 * policy.ci_mult.mul_add(ci, policy.rel_tol)))
        })
        .collect()
}

/// One campaign against the shared-stream sweep kernel: the fault plan is
/// armed while `Guard::component_mttf_multi` evaluates every rate off one
/// shared compiled trace and one shared RNG stream.
///
/// The aggregate tag is the WORST per-point provenance — a corruption of
/// the shared trace must degrade every dependent point, so a campaign is a
/// miss if ANY point comes back Clean-tagged yet deviates from its own
/// golden baseline beyond tolerance.
fn guarded_sweep_campaign(
    guard: &Guard,
    trace: &IntervalTrace,
    rates: &[RawErrorRate],
    plan: FaultPlan,
    campaign: usize,
    golden: &[(f64, f64)],
) -> Result<CampaignOutcome, SerrError> {
    let points = guard.component_mttf_multi(trace, rates, Some(plan))?;
    let mut outcome = Provenance::Clean;
    let mut miss = false;
    let mut max_deviation = 0.0_f64;
    let mut sampler = None;
    let mut clean_points = 0_usize;
    let mut note = None;
    for (g, &(golden_mttf, miss_tol)) in points.iter().zip(golden) {
        let deviation = (g.mttf.as_secs() - golden_mttf).abs() / golden_mttf;
        max_deviation = max_deviation.max(deviation);
        outcome = outcome.worse(g.provenance);
        if g.provenance == Provenance::Clean {
            clean_points += 1;
            if deviation > miss_tol {
                miss = true;
            }
        }
        if let Some(e) = &g.mc {
            sampler = Some(e.sampler);
        }
        if note.is_none() {
            note = g.notes.last().cloned();
        }
    }
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed: plan.seed,
        outcome,
        mttf_seconds: points.first().map(|g| g.mttf.as_secs()),
        deviation: Some(max_deviation),
        miss,
        sampler,
        detail: format!(
            "sweep-kernel path over {} points ({clean_points} clean): {}",
            rates.len(),
            note.unwrap_or_else(|| "no anomalies observed".to_owned())
        ),
    })
}

fn campaign_dir(scratch: &std::path::Path, campaign: usize) -> PathBuf {
    scratch.join(format!("c{campaign}"))
}

/// Simulated journal I/O failure: the sweep must degrade to journal-less
/// operation and still produce exactly the reference rows.
fn checkpoint_io_campaign(
    scratch: &std::path::Path,
    plan: FaultPlan,
    campaign: usize,
) -> Result<CampaignOutcome, SerrError> {
    let dir = campaign_dir(scratch, campaign);
    let seed = plan.seed;
    let reference: Vec<ProbeRow> = (0..PROBE_POINTS).map(|i| probe_eval(seed, i)).collect();
    let items: Vec<u64> = (0..PROBE_POINTS as u64).collect();
    let fp = checkpoint::fingerprint(&["chaos-io", &format!("{seed:#x}")]);
    let opts = SweepOptions::fresh().in_dir(&dir).with_chaos(plan);
    let report =
        checkpoint::run_sweep("chaos-io", fp, &items, 1, &opts, |i, _| Ok(probe_eval(seed, i)))?;
    let intact = report.rows == reference && report.failures.is_empty();
    let site = plan.io_fault_site().expect("CheckpointIo plan selects a site");
    let _ = fs::remove_dir_all(&dir);
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed,
        outcome: if intact { Provenance::Degraded } else { Provenance::Suspect },
        mttf_seconds: None,
        deviation: None,
        miss: !intact,
        sampler: None,
        detail: format!("injected i/o fault at {site:?}; rows intact: {intact}"),
    })
}

/// On-disk journal corruption: the resumed sweep must spot the damage (a
/// failed page CRC, torn tail, or broken header) and recompute whatever
/// the valid prefix no longer covers.
fn journal_corrupt_campaign(
    scratch: &std::path::Path,
    plan: FaultPlan,
    campaign: usize,
) -> Result<CampaignOutcome, SerrError> {
    let dir = campaign_dir(scratch, campaign);
    let seed = plan.seed;
    let reference: Vec<ProbeRow> = (0..PROBE_POINTS).map(|i| probe_eval(seed, i)).collect();
    let items: Vec<u64> = (0..PROBE_POINTS as u64).collect();
    let fp = checkpoint::fingerprint(&["chaos-journal", &format!("{seed:#x}")]);

    let journal = Journal::open(&dir, "chaos-j", fp, true)?;
    for (i, row) in reference.iter().enumerate() {
        journal
            .record(i, &row.to_journal())
            .map_err(|e| SerrError::io("chaos journal record", e.to_string()))?;
    }
    drop(journal);

    let path = checkpoint::journal_path(&dir, "chaos-j", fp);
    let mut bytes =
        fs::read(&path).map_err(|e| SerrError::io("chaos journal read", e.to_string()))?;
    let corruption =
        plan.file_corruption(bytes.len()).expect("JournalCorrupt plan corrupts non-empty file");
    corruption.apply(&mut bytes);
    fs::write(&path, &bytes).map_err(|e| SerrError::io("chaos journal write", e.to_string()))?;

    let opts = SweepOptions::resume().in_dir(&dir);
    let report =
        checkpoint::run_sweep("chaos-j", fp, &items, 1, &opts, |i, _| Ok(probe_eval(seed, i)))?;
    let recovered = report.rows == reference && report.failures.is_empty();
    let detected = report.resumed < PROBE_POINTS;
    let _ = fs::remove_dir_all(&dir);
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed,
        // Damage caught and recomputed → Retried. A truncation that lands
        // exactly on a page boundary (or at the full file length) removes
        // nothing detectable — then nothing needed recomputing and Clean
        // with matching rows is legitimate.
        outcome: if recovered && detected {
            Provenance::Retried
        } else if recovered {
            Provenance::Clean
        } else {
            Provenance::Suspect
        },
        mttf_seconds: None,
        deviation: None,
        miss: !recovered,
        sampler: None,
        detail: format!(
            "corrupted {} byte(s) at offset {}; resumed {}/{PROBE_POINTS}",
            if corruption.truncate { "tail from" } else { "1" },
            corruption.offset,
            report.resumed
        ),
    })
}

/// Applies a [`StoreFault`] to an in-memory store image, returning a
/// one-line description for the campaign detail.
fn apply_store_fault(bytes: &mut Vec<u8>, fault: StoreFault) -> String {
    use serr_store::pages::{forge_format_version, FORMAT_VERSION};
    match fault {
        StoreFault::TornTail { drop_bytes } => {
            let cut = bytes.len().saturating_sub(drop_bytes);
            bytes.truncate(cut);
            format!("tore {drop_bytes} byte(s) off the tail")
        }
        StoreFault::BitFlip { offset, xor_mask } => {
            if let Some(b) = bytes.get_mut(offset) {
                *b ^= xor_mask;
            }
            format!("xor {xor_mask:#04x} into page byte {offset}")
        }
        StoreFault::HeaderCorrupt { offset, xor_mask } => {
            if let Some(b) = bytes.get_mut(offset) {
                *b ^= xor_mask;
            }
            format!("xor {xor_mask:#04x} into header byte {offset}")
        }
        StoreFault::StaleVersion { bump } => {
            let version = FORMAT_VERSION.wrapping_add(bump);
            forge_format_version(bytes, version);
            format!("forged format version {version}")
        }
    }
}

/// Binary-container damage against a checkpoint journal: a torn tail or an
/// in-page flip must degrade resume to the valid prefix (the rest
/// recomputes); a damaged header or a foreign format version must surface
/// as a typed error that resets the journal. In every case the final rows
/// must equal the fault-free reference — a Clean-tagged deviation is the
/// miss this campaign exists to catch.
fn store_fault_campaign(
    scratch: &std::path::Path,
    plan: FaultPlan,
    campaign: usize,
) -> Result<CampaignOutcome, SerrError> {
    let dir = campaign_dir(scratch, campaign);
    let seed = plan.seed;
    let reference: Vec<ProbeRow> = (0..PROBE_POINTS).map(|i| probe_eval(seed, i)).collect();
    let items: Vec<u64> = (0..PROBE_POINTS as u64).collect();
    let fp = checkpoint::fingerprint(&["chaos-store", &format!("{seed:#x}")]);

    let journal = Journal::open(&dir, "chaos-s", fp, true)?;
    for (i, row) in reference.iter().enumerate() {
        journal
            .record(i, &row.to_journal())
            .map_err(|e| SerrError::io("chaos store record", e.to_string()))?;
    }
    drop(journal);

    let path = checkpoint::journal_path(&dir, "chaos-s", fp);
    let mut bytes =
        fs::read(&path).map_err(|e| SerrError::io("chaos store read", e.to_string()))?;
    let fault = plan
        .store_fault(bytes.len(), serr_store::pages::HEADER_LEN)
        .expect("store plans always select a fault");
    let fault_detail = apply_store_fault(&mut bytes, fault);
    fs::write(&path, &bytes).map_err(|e| SerrError::io("chaos store write", e.to_string()))?;

    // A private observer so the campaign can see whether the sweep took the
    // reset path (typed header/version error) or prefix recovery.
    let (obs, sink) = Obs::memory();
    let opts = SweepOptions::resume().in_dir(&dir).with_obs(obs);
    let report =
        checkpoint::run_sweep("chaos-s", fp, &items, 1, &opts, |i, _| Ok(probe_eval(seed, i)))?;
    let recovered = report.rows == reference && report.failures.is_empty();
    let reset = !sink.events_of("checkpoint.journal_reset").is_empty();
    let detected = reset || report.resumed < PROBE_POINTS;
    let _ = fs::remove_dir_all(&dir);
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed,
        // Header/version damage is answered wholesale (journal reset) →
        // Degraded; page-level damage resumes the valid prefix and
        // recomputes the rest → Retried. Damage that altered nothing
        // observable (e.g. a flip in already-ignored trailing bytes) would
        // be Clean — acceptable only because the rows match the reference.
        outcome: if recovered && reset {
            Provenance::Degraded
        } else if recovered && detected {
            Provenance::Retried
        } else if recovered {
            Provenance::Clean
        } else {
            Provenance::Suspect
        },
        mttf_seconds: None,
        deviation: None,
        miss: !recovered,
        sampler: None,
        detail: format!(
            "{fault_detail}; reset: {reset}, resumed {}/{PROBE_POINTS}",
            report.resumed
        ),
    })
}

/// Lock contention: a sweep against a journal held by a live writer must
/// refuse with the typed error, never interleave.
fn journal_lock_campaign(
    scratch: &std::path::Path,
    plan: FaultPlan,
    campaign: usize,
) -> Result<CampaignOutcome, SerrError> {
    let dir = campaign_dir(scratch, campaign);
    let seed = plan.seed;
    let items: Vec<u64> = (0..PROBE_POINTS as u64).collect();
    let fp = checkpoint::fingerprint(&["chaos-lock", &format!("{seed:#x}")]);
    let held = Journal::open(&dir, "chaos-l", fp, true)?;
    let opts = SweepOptions::resume().in_dir(&dir);
    let contender =
        checkpoint::run_sweep("chaos-l", fp, &items, 1, &opts, |i, _| Ok(probe_eval(seed, i)));
    let refused = matches!(contender, Err(SerrError::JournalLocked { .. }));
    drop(held);
    let _ = fs::remove_dir_all(&dir);
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed,
        outcome: if refused { Provenance::Degraded } else { Provenance::Suspect },
        mttf_seconds: None,
        deviation: None,
        miss: !refused,
        sampler: None,
        detail: format!("second writer refused: {refused}"),
    })
}

/// Trace-cache corruption: a damaged cache entry must be rejected by its
/// content checksum (forcing re-simulation), never decoded into wrong
/// traces.
fn cache_corrupt_campaign(
    scratch: &std::path::Path,
    plan: FaultPlan,
    campaign: usize,
) -> Result<CampaignOutcome, SerrError> {
    let dir = campaign_dir(scratch, campaign);
    fs::create_dir_all(&dir).map_err(|e| SerrError::io("chaos cache scratch", e.to_string()))?;
    // Small fixed simulation — memoized in-process, so only the first
    // cache campaign pays for it.
    let run = pipeline::simulate_benchmark("vpr", 6_000, 3)?;
    let path = dir.join("probe.bin");
    pipeline::store(&path, &run.output)
        .map_err(|e| SerrError::io("chaos cache store", e.to_string()))?;
    let mut bytes =
        fs::read(&path).map_err(|e| SerrError::io("chaos cache read", e.to_string()))?;
    let corruption =
        plan.file_corruption(bytes.len()).expect("CacheCorrupt plan corrupts non-empty file");
    corruption.apply(&mut bytes);
    fs::write(&path, &bytes).map_err(|e| SerrError::io("chaos cache write", e.to_string()))?;

    let loaded = pipeline::load(&path);
    let (outcome, miss, detail) = match loaded {
        None => (
            Provenance::Retried,
            false,
            "corrupt cache entry rejected; simulation would re-run".to_owned(),
        ),
        Some(out)
            if out.stats == run.output.stats
                && out.traces.int_unit == run.output.traces.int_unit
                && out.traces.fp_unit == run.output.traces.fp_unit
                && out.traces.decode == run.output.traces.decode
                && out.traces.regfile == run.output.traces.regfile =>
        {
            (Provenance::Clean, false, "corruption did not alter the decoded payload".to_owned())
        }
        Some(_) => (
            Provenance::Suspect,
            true,
            "corrupt cache entry decoded into different data".to_owned(),
        ),
    };
    let _ = fs::remove_dir_all(&dir);
    Ok(CampaignOutcome {
        campaign,
        kind: plan.kind,
        seed: plan.seed,
        outcome,
        mttf_seconds: None,
        deviation: None,
        miss,
        sampler: None,
        detail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(campaigns: usize, seed: u64) -> ChaosConfig {
        ChaosConfig {
            campaigns,
            seed,
            trials: 2_000,
            threads: 1,
            scratch_dir: Some(
                std::env::temp_dir().join(format!("serr-chaos-test-{}-{seed}", std::process::id())),
            ),
            ..Default::default()
        }
    }

    #[test]
    fn small_campaign_run_is_sound_and_covers_all_kinds() {
        let cfg = quick_cfg(FaultKind::CORE.len() * 2, 0xABCD);
        let report = run_chaos(&cfg).unwrap();
        assert_eq!(report.outcomes.len(), cfg.campaigns);
        assert!(
            report.is_sound(),
            "misses: {:?}",
            report.outcomes.iter().filter(|o| o.miss).collect::<Vec<_>>()
        );
        for kind in FaultKind::CORE {
            assert!(report.outcomes.iter().any(|o| o.kind == kind), "kind {kind} never ran");
        }
    }

    #[test]
    fn campaign_outcomes_replay_identically() {
        let cfg = quick_cfg(FaultKind::CORE.len(), 0x5EED);
        let a = run_chaos(&cfg).unwrap();
        let mut cfg_mt = quick_cfg(FaultKind::CORE.len(), 0x5EED);
        cfg_mt.threads = 4;
        let b = run_chaos(&cfg_mt).unwrap();
        let tags =
            |r: &ChaosReport| r.outcomes.iter().map(|o| (o.kind, o.outcome)).collect::<Vec<_>>();
        assert_eq!(tags(&a), tags(&b), "outcome tags must not depend on thread count");
    }

    #[test]
    fn every_campaign_emits_one_verdict_event() {
        let (obs, sink) = Obs::memory();
        let mut cfg = quick_cfg(FaultKind::CORE.len(), 0xE4E7);
        cfg.obs = Some(obs);
        let report = run_chaos(&cfg).unwrap();
        let verdicts = sink.events_of("chaos.verdict");
        assert_eq!(verdicts.len(), report.outcomes.len());
        for (i, (e, o)) in verdicts.iter().zip(&report.outcomes).enumerate() {
            assert_eq!(e.seq, i as u64, "verdicts sequenced by campaign index");
            let is_warn = e.level == serr_obs::Level::Warn;
            assert_eq!(is_warn, o.miss, "only misses warn");
        }
    }

    #[test]
    fn prefix_perturb_under_batched_inversion_is_detected_and_tagged() {
        // The batched sampler reads the same corrupted prefix table as the
        // scalar one; the guard must detect or degrade every campaign, and
        // accepted estimates must carry the batched-inversion sampler tag
        // in both the outcome record and the verdict event.
        let (obs, sink) = Obs::memory();
        let cfg = ChaosConfig {
            campaigns: 8,
            seed: 0xBA7C_4A05,
            trials: 2_000,
            threads: 1,
            sampler: SamplerKind::BatchedInversion,
            kinds: vec![FaultKind::TracePrefixPerturb],
            scratch_dir: Some(
                std::env::temp_dir()
                    .join(format!("serr-chaos-test-batched-{}", std::process::id())),
            ),
            obs: Some(obs),
        };
        let report = run_chaos(&cfg).unwrap();
        assert!(report.is_sound(), "prefix perturbation produced a miss under batched inversion");
        for o in &report.outcomes {
            assert_ne!(
                o.outcome,
                Provenance::Clean,
                "campaign {}: prefix corruption went unnoticed ({})",
                o.campaign,
                o.detail
            );
            // An accepted estimate under this config can only have come
            // from the batched sampler (the campaign trace always
            // compiles); campaigns that degraded past every attempt
            // accepted none and carry no tag.
            if let Some(k) = o.sampler {
                assert_eq!(k, SamplerKind::BatchedInversion);
            }
        }
        // Verdict events mirror the tag.
        let verdicts = sink.events_of("chaos.verdict");
        assert_eq!(verdicts.len(), report.outcomes.len());
        for (e, o) in verdicts.iter().zip(&report.outcomes) {
            let tagged = e
                .fields
                .iter()
                .any(|(k, v)| *k == "sampler" && *v == serr_obs::Value::from("batched-inversion"));
            assert_eq!(
                tagged,
                o.sampler == Some(SamplerKind::BatchedInversion),
                "campaign {}: verdict sampler tag out of sync",
                o.campaign
            );
        }
    }

    #[test]
    fn trace_transform_campaigns_detect_or_degrade() {
        // Corruptions of the scrub+ECC-transformed trace must be caught by
        // the same machinery as raw-trace corruptions: no campaign may
        // return a Clean-tagged estimate that deviates from the transformed
        // golden (the detect-or-degrade invariant on the transform path).
        let mut cfg = quick_cfg(9, 0x7A_4F_0123);
        cfg.kinds = vec![FaultKind::TraceTransform];
        let report = run_chaos(&cfg).unwrap();
        assert!(
            report.is_sound(),
            "transform-path corruption slipped through: {:?}",
            report.outcomes.iter().filter(|o| o.miss).collect::<Vec<_>>()
        );
        // The fault always lands (the transformed trace always compiles),
        // so at least one campaign must have noticed something.
        assert!(
            report.outcomes.iter().any(|o| o.outcome != Provenance::Clean),
            "every transform corruption went unnoticed"
        );
    }

    #[test]
    fn sweep_kernel_campaigns_degrade_every_dependent_point() {
        // Satellite invariant of the shared-stream sweep kernel: one
        // corrupted shared trace feeds every design point of the sweep, so
        // every dependent point must come back non-Clean — a partially
        // clean sweep would be a silent corruption of some points. Odd
        // campaigns take the sweep-kernel path; check both corruption
        // kinds that attack the shared compiled trace.
        for kind in [FaultKind::TracePrefixPerturb, FaultKind::TraceTransform] {
            let mut cfg = quick_cfg(8, 0x5EED_0042);
            cfg.sampler = SamplerKind::BatchedInversion;
            cfg.kinds = vec![kind];
            let report = run_chaos(&cfg).unwrap();
            assert!(
                report.is_sound(),
                "{kind:?}: sweep-kernel corruption produced a miss: {:?}",
                report.outcomes.iter().filter(|o| o.miss).collect::<Vec<_>>()
            );
            let sweep: Vec<_> =
                report.outcomes.iter().filter(|o| o.detail.contains("sweep-kernel path")).collect();
            assert_eq!(sweep.len(), 4, "{kind:?}: odd campaigns must ride the sweep kernel");
            for o in &sweep {
                assert_ne!(
                    o.outcome,
                    Provenance::Clean,
                    "{kind:?} campaign {}: shared-trace corruption left the sweep clean ({})",
                    o.campaign,
                    o.detail
                );
                assert!(
                    o.detail.contains("(0 clean)"),
                    "{kind:?} campaign {}: some dependent points stayed clean ({})",
                    o.campaign,
                    o.detail
                );
            }
            // The schedule is a pure function of campaign index and seed,
            // so a parallel run must replay the identical tags.
            let mut par = cfg.clone();
            par.threads = 4;
            let par_report = run_chaos(&par).unwrap();
            let tags = |r: &ChaosReport| {
                r.outcomes.iter().map(|o| (o.outcome, o.miss)).collect::<Vec<_>>()
            };
            assert_eq!(tags(&report), tags(&par_report), "{kind:?}: tags drift across threads");
        }
    }

    #[test]
    fn transformed_campaign_trace_is_protective_and_fans_out() {
        use serr_trace::VulnerabilityTrace;
        let raw = campaign_trace();
        let t = transformed_campaign_trace();
        assert_eq!(t.period_cycles(), raw.period_cycles());
        assert!(t.avf() < raw.avf(), "protection must reduce AVF");
        assert!(t.segment_count() > raw.segment_count(), "scrub staircase must fan segments out");
    }

    #[test]
    fn outcome_json_carries_the_replay_seed() {
        let o = CampaignOutcome {
            campaign: 3,
            kind: FaultKind::ChunkPanic,
            seed: 0x1234,
            outcome: Provenance::Retried,
            mttf_seconds: Some(1.5e9),
            deviation: Some(0.001),
            miss: false,
            sampler: Some(SamplerKind::BatchedInversion),
            detail: "healed".to_owned(),
        };
        let j = o.to_json();
        assert_eq!(j.get("kind").unwrap().as_str(), Some("chunk-panic"));
        assert_eq!(j.get("outcome").unwrap().as_str(), Some("retried"));
        assert_eq!(j.get("seed").unwrap().as_str(), Some("0x0000000000001234"));
        assert_eq!(j.get("miss").unwrap().as_bool(), Some(false));
        assert_eq!(j.get("sampler").unwrap().as_str(), Some("batched-inversion"));
    }
}
