//! The SPEC simulation pipeline: benchmark name → timing simulation →
//! masking traces → processor-level composite trace.
//!
//! Detailed simulation is the expensive stage of the paper's methodology,
//! so runs are memoized at two levels: per `(benchmark, instructions,
//! seed)` within the process, and — for the masking traces, which are all
//! downstream estimation needs — in an on-disk cache under
//! `target/serr-trace-cache/` shared by every binary of the workspace.
//! Set `SERR_TRACE_CACHE=off` to disable the disk layer (e.g. after
//! changing the simulator) or point it at another directory.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};

use serr_sim::{ProcessorMaskingTraces, SimConfig, SimOutput, SimStats, Simulator};
use serr_trace::{decode_interval_trace, encode_interval_trace, CompositeTrace, VulnerabilityTrace};
use serr_types::SerrError;
use serr_workload::{BenchmarkProfile, TraceGenerator};

use crate::rates::UnitRates;

/// Bump when generator or trace-format changes invalidate cached traces
/// (machine-configuration changes are covered by the config fingerprint).
const CACHE_VERSION: u32 = 3;

/// FNV-1a over the machine configuration's debug rendering: any change to
/// the simulated machine silently invalidates old cache entries.
fn config_fingerprint(cfg: &SimConfig) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in format!("{cfg:?}").bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn cache_dir() -> Option<PathBuf> {
    match std::env::var("SERR_TRACE_CACHE") {
        Ok(v) if v == "off" => None,
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => Some(PathBuf::from("target/serr-trace-cache")),
    }
}

fn cache_path(name: &str, instructions: u64, seed: u64, cfg: &SimConfig) -> Option<PathBuf> {
    let fp = config_fingerprint(cfg);
    cache_dir()
        .map(|d| d.join(format!("v{CACHE_VERSION}-{fp:016x}-{name}-{instructions}-{seed}.bin")))
}

/// On-disk format: a fixed-width stats header followed by the four traces
/// in the `serr-trace` binary codec.
fn encode_stats(s: &SimStats) -> [u8; 72] {
    let mut out = [0u8; 72];
    let fields = [
        s.cycles as f64,
        s.instructions as f64,
        s.l1i_miss_rate,
        s.l1d_miss_rate,
        s.l2_miss_rate,
        s.dtlb_miss_rate,
        s.branch_mispredicts as f64,
        s.dispatch_stall_cycles as f64,
        s.l1d_writebacks as f64,
    ];
    for (i, f) in fields.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
    }
    out
}

fn decode_stats(b: &[u8]) -> Option<SimStats> {
    if b.len() != 72 {
        return None;
    }
    let f = |i: usize| f64::from_le_bytes(b[i * 8..(i + 1) * 8].try_into().ok().unwrap());
    Some(SimStats {
        cycles: f(0) as u64,
        instructions: f(1) as u64,
        l1i_miss_rate: f(2),
        l1d_miss_rate: f(3),
        l2_miss_rate: f(4),
        dtlb_miss_rate: f(5),
        branch_mispredicts: f(6) as u64,
        dispatch_stall_cycles: f(7) as u64,
        l1d_writebacks: f(8) as u64,
    })
}

fn store(path: &PathBuf, out: &SimOutput) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut buf = Vec::new();
    let stats = encode_stats(&out.stats);
    buf.extend_from_slice(&(stats.len() as u64).to_le_bytes());
    buf.extend_from_slice(&stats);
    for t in [
        &out.traces.int_unit,
        &out.traces.fp_unit,
        &out.traces.decode,
        &out.traces.regfile,
    ] {
        let enc = encode_interval_trace(t);
        buf.extend_from_slice(&(enc.len() as u64).to_le_bytes());
        buf.extend_from_slice(&enc);
    }
    // Atomic-ish: write then rename, so a concurrent reader never sees a
    // torn file.
    let tmp = path.with_extension(format!("tmp{}", std::process::id()));
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

fn load(path: &PathBuf) -> Option<SimOutput> {
    let data = std::fs::read(path).ok()?;
    let mut off = 0usize;
    let take_len = |data: &[u8], off: &mut usize| -> Option<usize> {
        let n = u64::from_le_bytes(data.get(*off..*off + 8)?.try_into().ok()?) as usize;
        *off += 8;
        Some(n)
    };
    let n = take_len(&data, &mut off)?;
    let stats = decode_stats(data.get(off..off + n)?)?;
    off += n;
    let mut traces = Vec::with_capacity(4);
    for _ in 0..4 {
        let n = take_len(&data, &mut off)?;
        traces.push(decode_interval_trace(data.get(off..off + n)?).ok()?);
        off += n;
    }
    let regfile = traces.pop()?;
    let decode = traces.pop()?;
    let fp_unit = traces.pop()?;
    let int_unit = traces.pop()?;
    Some(SimOutput {
        stats,
        traces: ProcessorMaskingTraces { int_unit, fp_unit, decode, regfile },
    })
}

/// A memoized benchmark simulation.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// The SPEC program name.
    pub name: String,
    /// Simulation statistics and the four unit masking traces.
    pub output: SimOutput,
}

type Cache = Mutex<HashMap<(String, u64, u64), Arc<BenchmarkRun>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Simulates `instructions` instructions of the named benchmark on the
/// paper's base machine (memoized).
///
/// # Errors
///
/// Returns [`SerrError::UnknownWorkload`] for an unknown benchmark name and
/// propagates simulator errors.
///
/// # Panics
///
/// Panics if the global cache mutex is poisoned (a prior panic in this
/// function).
pub fn simulate_benchmark(
    name: &str,
    instructions: u64,
    seed: u64,
) -> Result<Arc<BenchmarkRun>, SerrError> {
    let key = (name.to_owned(), instructions, seed);
    if let Some(hit) = cache().lock().expect("cache lock").get(&key) {
        return Ok(hit.clone());
    }
    let machine = SimConfig::power4();
    let disk = cache_path(name, instructions, seed, &machine);
    if let Some(output) = disk.as_ref().and_then(load) {
        let run = Arc::new(BenchmarkRun { name: name.to_owned(), output });
        cache().lock().expect("cache lock").insert(key, run.clone());
        return Ok(run);
    }
    let profile = BenchmarkProfile::by_name(name)?;
    let sim = Simulator::new(machine);
    let output = sim.run(TraceGenerator::new(profile, seed), instructions)?;
    if let Some(path) = disk {
        // Cache write failures are non-fatal (read-only checkouts, races).
        let _ = store(&path, &output);
    }
    let run = Arc::new(BenchmarkRun { name: name.to_owned(), output });
    cache().lock().expect("cache lock").insert(key, run.clone());
    Ok(run)
}

/// Builds the processor-level masking trace for the cluster experiments:
/// the three unit traces (integer, FP, decode) combined with weights
/// proportional to their raw error rates, exactly as the paper applies
/// them "to the corresponding units simultaneously to determine whether
/// there is a processor-level failure" (Section 4.2).
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] if the traces disagree on period
/// (cannot happen for traces from one simulation).
pub fn processor_trace(
    run: &BenchmarkRun,
    rates: &UnitRates,
) -> Result<CompositeTrace, SerrError> {
    let t = &run.output.traces;
    let parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)> = vec![
        (rates.int_unit.per_second_value(), Arc::new(t.int_unit.clone()) as _),
        (rates.fp_unit.per_second_value(), Arc::new(t.fp_unit.clone()) as _),
        (rates.decode.per_second_value(), Arc::new(t.decode.clone()) as _),
    ];
    // FP-free integer benchmarks have an all-idle FP trace; the composite
    // handles the zero-vulnerability part fine, but every weight must be
    // positive, which the paper's rates guarantee.
    CompositeTrace::new(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_same_run() {
        let a = simulate_benchmark("gzip", 5_000, 7).unwrap();
        let b = simulate_benchmark("gzip", 5_000, 7).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = simulate_benchmark("gzip", 5_000, 8).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        assert!(matches!(
            simulate_benchmark("quake3", 1_000, 0),
            Err(SerrError::UnknownWorkload { .. })
        ));
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("serr-cache-test-{}", std::process::id()));
        let path = dir.join("probe.bin");
        let run = simulate_benchmark("vpr", 6_000, 3).unwrap();
        store(&path, &run.output).unwrap();
        let loaded = load(&path).expect("cache readable");
        assert_eq!(loaded.stats, run.output.stats);
        assert_eq!(loaded.traces.int_unit, run.output.traces.int_unit);
        assert_eq!(loaded.traces.regfile, run.output.traces.regfile);
        // Corrupt file: load degrades to None, not a panic.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(load(&path).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn config_fingerprint_tracks_machine_changes() {
        let base = SimConfig::power4();
        let mut tweaked = SimConfig::power4();
        tweaked.mshrs += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tweaked));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&SimConfig::power4()));
        let (a, b) = (
            cache_path("gzip", 1000, 1, &base).unwrap(),
            cache_path("gzip", 1000, 1, &tweaked).unwrap(),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn processor_trace_spans_simulation() {
        let run = simulate_benchmark("swim", 10_000, 1).unwrap();
        let proc = processor_trace(&run, &UnitRates::paper()).unwrap();
        assert_eq!(proc.period_cycles(), run.output.stats.cycles);
        let avf = proc.avf();
        assert!(avf > 0.0 && avf <= 1.0, "avf {avf}");
    }
}
