//! The SPEC simulation pipeline: benchmark name → timing simulation →
//! masking traces → processor-level composite trace.
//!
//! Detailed simulation is the expensive stage of the paper's methodology,
//! so runs are memoized at two levels: per `(benchmark, instructions,
//! seed)` within the process, and — for the masking traces, which are all
//! downstream estimation needs — in an on-disk cache under
//! `target/serr-trace-cache/` shared by every binary of the workspace.
//! Set `SERR_TRACE_CACHE=off` to disable the disk layer (e.g. after
//! changing the simulator) or point it at another directory.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};

use serr_obs::Event;
use serr_sim::{ProcessorMaskingTraces, SimConfig, SimOutput, SimStats, Simulator};
use serr_store::pages::{recover, write_atomic, StoreBuilder};
use serr_store::{kind as store_kind, FileBytes};
use serr_trace::{
    decode_interval_trace, encode_interval_trace, CompositeTrace, VulnerabilityTrace,
};
use serr_types::SerrError;
use serr_workload::{BenchmarkProfile, TraceGenerator};

use crate::rates::UnitRates;

/// Bump when generator or trace-format changes invalidate cached traces
/// (machine-configuration changes are covered by the config fingerprint).
/// v4: a leading FNV-1a content checksum guards the whole payload.
/// v5: the `serr-store` CRC-paged container (`.store` extension, stream
/// kind [`serr_store::kind::TRACE_CACHE`], this constant as the `app`
/// header field) with five records — the stats block and the four unit
/// traces — and memory-mapped zero-copy loads.
const CACHE_VERSION: u32 = 5;

/// FNV-1a over arbitrary bytes — the config fingerprint.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// FNV-1a over the machine configuration's debug rendering: any change to
/// the simulated machine silently invalidates old cache entries.
fn config_fingerprint(cfg: &SimConfig) -> u64 {
    fnv1a(format!("{cfg:?}").as_bytes())
}

fn cache_dir() -> Option<PathBuf> {
    match std::env::var("SERR_TRACE_CACHE") {
        Ok(v) if v == "off" => None,
        Ok(v) if !v.is_empty() => Some(PathBuf::from(v)),
        _ => Some(PathBuf::from("target/serr-trace-cache")),
    }
}

fn cache_path(name: &str, instructions: u64, seed: u64, cfg: &SimConfig) -> Option<PathBuf> {
    let fp = config_fingerprint(cfg);
    cache_dir()
        .map(|d| d.join(format!("v{CACHE_VERSION}-{fp:016x}-{name}-{instructions}-{seed}.store")))
}

/// On-disk format: a fixed-width stats header followed by the four traces
/// in the `serr-trace` binary codec.
fn encode_stats(s: &SimStats) -> [u8; 72] {
    let mut out = [0u8; 72];
    let fields = [
        s.cycles as f64,
        s.instructions as f64,
        s.l1i_miss_rate,
        s.l1d_miss_rate,
        s.l2_miss_rate,
        s.dtlb_miss_rate,
        s.branch_mispredicts as f64,
        s.dispatch_stall_cycles as f64,
        s.l1d_writebacks as f64,
    ];
    for (i, f) in fields.iter().enumerate() {
        out[i * 8..(i + 1) * 8].copy_from_slice(&f.to_le_bytes());
    }
    out
}

fn decode_stats(b: &[u8]) -> Option<SimStats> {
    if b.len() != 72 {
        return None;
    }
    let mut f = [0.0f64; 9];
    for (slot, chunk) in f.iter_mut().zip(b.chunks_exact(8)) {
        let v = f64::from_le_bytes(chunk.try_into().ok()?);
        // A NaN/∞ here means the file is corrupt (no simulator statistic is
        // non-finite); reject rather than let it poison downstream math.
        if !v.is_finite() {
            return None;
        }
        *slot = v;
    }
    // Counter fields must decode to exact non-negative integers.
    let count = |v: f64| -> Option<u64> {
        ((0.0..=9_007_199_254_740_992.0).contains(&v) && v.fract() == 0.0).then_some(v as u64)
    };
    Some(SimStats {
        cycles: count(f[0])?,
        instructions: count(f[1])?,
        l1i_miss_rate: f[2],
        l1d_miss_rate: f[3],
        l2_miss_rate: f[4],
        dtlb_miss_rate: f[5],
        branch_mispredicts: count(f[6])?,
        dispatch_stall_cycles: count(f[7])?,
        l1d_writebacks: count(f[8])?,
    })
}

pub(crate) fn store(path: &Path, out: &SimOutput) -> Result<(), SerrError> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| SerrError::io("create trace-cache directory", e.to_string()))?;
    }
    // Five records in the CRC-paged container: the stats block, then the
    // four unit traces. `write_atomic` commits via tmp + fsync + rename, so
    // a concurrent reader never sees a torn file.
    let mut builder = StoreBuilder::new(store_kind::TRACE_CACHE, CACHE_VERSION);
    builder.push_record(&encode_stats(&out.stats));
    for t in [&out.traces.int_unit, &out.traces.fp_unit, &out.traces.decode, &out.traces.regfile] {
        builder.push_record(&encode_interval_trace(t));
    }
    write_atomic(path, &builder.finish())
}

/// Decodes a cache file image (store container, five records). `None`
/// means the entry is corrupt, incomplete, or from an incompatible writer.
///
/// Unlike the checkpoint journal, a cache entry is all-or-nothing: a valid
/// *prefix* of a simulation's traces is useless, so any damage — torn tail,
/// failed page CRC, wrong record count — rejects the whole entry.
fn decode_cache_image(data: &[u8]) -> Option<SimOutput> {
    let rec = recover(data, "trace cache").ok()?;
    if rec.header.kind != store_kind::TRACE_CACHE
        || rec.header.app != CACHE_VERSION
        || rec.truncated()
        || rec.records.len() != 5
    {
        return None;
    }
    let stats = decode_stats(rec.records[0])?;
    let mut traces = Vec::with_capacity(4);
    for raw in &rec.records[1..] {
        traces.push(decode_interval_trace(raw).ok()?);
    }
    let regfile = traces.pop()?;
    let decode = traces.pop()?;
    let fp_unit = traces.pop()?;
    let int_unit = traces.pop()?;
    Some(SimOutput { stats, traces: ProcessorMaskingTraces { int_unit, fp_unit, decode, regfile } })
}

fn load_with(
    path: &Path,
    open: impl FnOnce(&Path) -> Result<FileBytes, SerrError>,
) -> Option<SimOutput> {
    // A missing file is the normal cache-miss path — leave the filesystem
    // alone. A present-but-undecodable file is corrupt: delete it so this
    // run re-simulates and rewrites a good entry instead of tripping over
    // the same bad bytes forever.
    let image = open(path).ok()?;
    let out = decode_cache_image(&image);
    if out.is_none() {
        let bytes = image.len() as u64;
        drop(image); // release the mapping before unlinking
        let _ = std::fs::remove_file(path);
        let obs = serr_obs::global();
        obs.emit(
            Event::warn("cache.evict", 0)
                .with("path", path.display().to_string())
                .with("reason", "checksum or decode failure")
                .with("bytes", bytes),
        );
        obs.metrics().add("cache.evictions", 1);
    }
    out
}

pub(crate) fn load(path: &Path) -> Option<SimOutput> {
    load_with(path, FileBytes::map)
}

/// Loads one on-disk cache entry through the memory-mapped (zero-copy)
/// path — the default the pipeline itself uses. Public for benchmarks.
#[must_use]
pub fn load_cache_entry_mmap(path: &Path) -> Option<SimOutput> {
    load_with(path, FileBytes::map)
}

/// Loads one on-disk cache entry through an ordinary buffered read —
/// the comparison baseline for [`load_cache_entry_mmap`] benchmarks.
#[must_use]
pub fn load_cache_entry_read(path: &Path) -> Option<SimOutput> {
    load_with(path, FileBytes::read)
}

/// Writes one on-disk cache entry in the v5 store format. Public for
/// benchmarks; the pipeline writes entries itself on cache misses.
///
/// # Errors
///
/// [`SerrError::Io`] when the directory or file cannot be written.
pub fn write_cache_entry(path: &Path, out: &SimOutput) -> Result<(), SerrError> {
    store(path, out)
}

/// A memoized benchmark simulation.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// The SPEC program name.
    pub name: String,
    /// Simulation statistics and the four unit masking traces.
    pub output: SimOutput,
}

type Cache = Mutex<HashMap<(String, u64, u64), Arc<BenchmarkRun>>>;

fn cache() -> &'static Cache {
    static CACHE: OnceLock<Cache> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Simulates `instructions` instructions of the named benchmark on the
/// paper's base machine (memoized).
///
/// # Errors
///
/// Returns [`SerrError::UnknownWorkload`] for an unknown benchmark name and
/// propagates simulator errors.
///
/// # Panics
///
/// Panics if the global cache mutex is poisoned (a prior panic in this
/// function).
pub fn simulate_benchmark(
    name: &str,
    instructions: u64,
    seed: u64,
) -> Result<Arc<BenchmarkRun>, SerrError> {
    let key = (name.to_owned(), instructions, seed);
    if let Some(hit) = cache().lock().expect("cache lock").get(&key) {
        return Ok(hit.clone());
    }
    let machine = SimConfig::power4();
    let disk = cache_path(name, instructions, seed, &machine);
    if let Some(output) = disk.as_deref().and_then(load) {
        let run = Arc::new(BenchmarkRun { name: name.to_owned(), output });
        cache().lock().expect("cache lock").insert(key, run.clone());
        return Ok(run);
    }
    let profile = BenchmarkProfile::by_name(name)?;
    let sim = Simulator::new(machine);
    let output = sim.run(TraceGenerator::new(profile, seed), instructions)?;
    if let Some(path) = disk {
        // Cache write failures are non-fatal (read-only checkouts, races).
        let _ = store(&path, &output);
    }
    let run = Arc::new(BenchmarkRun { name: name.to_owned(), output });
    cache().lock().expect("cache lock").insert(key, run.clone());
    Ok(run)
}

/// Builds the processor-level masking trace for the cluster experiments:
/// the three unit traces (integer, FP, decode) combined with weights
/// proportional to their raw error rates, exactly as the paper applies
/// them "to the corresponding units simultaneously to determine whether
/// there is a processor-level failure" (Section 4.2).
///
/// # Errors
///
/// Returns [`SerrError::InvalidTrace`] if the traces disagree on period
/// (cannot happen for traces from one simulation).
pub fn processor_trace(run: &BenchmarkRun, rates: &UnitRates) -> Result<CompositeTrace, SerrError> {
    let t = &run.output.traces;
    let parts: Vec<(f64, Arc<dyn VulnerabilityTrace>)> = vec![
        (rates.int_unit.per_second_value(), Arc::new(t.int_unit.clone()) as _),
        (rates.fp_unit.per_second_value(), Arc::new(t.fp_unit.clone()) as _),
        (rates.decode.per_second_value(), Arc::new(t.decode.clone()) as _),
    ];
    // FP-free integer benchmarks have an all-idle FP trace; the composite
    // handles the zero-vulnerability part fine, but every weight must be
    // positive, which the paper's rates guarantee.
    CompositeTrace::new(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoization_returns_same_run() {
        let a = simulate_benchmark("gzip", 5_000, 7).unwrap();
        let b = simulate_benchmark("gzip", 5_000, 7).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let c = simulate_benchmark("gzip", 5_000, 8).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
    }

    #[test]
    fn unknown_benchmark_is_an_error() {
        assert!(matches!(
            simulate_benchmark("quake3", 1_000, 0),
            Err(SerrError::UnknownWorkload { .. })
        ));
    }

    #[test]
    fn disk_cache_roundtrip() {
        let dir = std::env::temp_dir().join(format!("serr-cache-test-{}", std::process::id()));
        let path = dir.join("probe.bin");
        let run = simulate_benchmark("vpr", 6_000, 3).unwrap();
        store(&path, &run.output).unwrap();
        let loaded = load(&path).expect("cache readable");
        assert_eq!(loaded.stats, run.output.stats);
        assert_eq!(loaded.traces.int_unit, run.output.traces.int_unit);
        assert_eq!(loaded.traces.regfile, run.output.traces.regfile);
        // Corrupt file: load degrades to None, not a panic, and the bad
        // entry is dropped so the next run re-simulates.
        std::fs::write(&path, b"garbage").unwrap();
        assert!(load(&path).is_none());
        assert!(!path.exists(), "corrupt cache entry should be deleted");
        // A missing file is a plain miss — no error, nothing to delete.
        assert!(load(&path).is_none());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn checksum_catches_single_bit_flips() {
        let dir = std::env::temp_dir().join(format!("serr-cache-bitflip-{}", std::process::id()));
        let path = dir.join("probe.bin");
        let run = simulate_benchmark("vpr", 6_000, 4).unwrap();
        store(&path, &run.output).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flip one bit in a handful of positions spread across the file —
        // header, stats, trace payload — and in the checksum itself. Every
        // variant must be rejected (and the poisoned entry removed).
        let positions = [0, 8, 20, good.len() / 2, good.len() - 1];
        for &pos in &positions {
            let mut bad = good.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(load(&path).is_none(), "bit flip at byte {pos} went undetected");
            assert!(!path.exists(), "entry with flip at byte {pos} not deleted");
        }

        // Truncation is also caught, even at an 8-byte boundary that the
        // structural decode alone might accept.
        let mut truncated = good.clone();
        truncated.truncate(good.len() - 8);
        std::fs::write(&path, &truncated).unwrap();
        assert!(load(&path).is_none(), "truncated entry went undetected");

        // The pristine bytes still decode after all that.
        std::fs::write(&path, &good).unwrap();
        assert!(load(&path).is_some());
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn decode_stats_rejects_non_finite_and_fractional_counters() {
        let run = simulate_benchmark("gzip", 5_000, 9).unwrap();
        let good = encode_stats(&run.output.stats);
        assert!(decode_stats(&good).is_some());

        // NaN in a rate field.
        let mut bad = good;
        bad[2 * 8..3 * 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(decode_stats(&bad).is_none());

        // ∞ in a counter field.
        let mut bad = good;
        bad[0..8].copy_from_slice(&f64::INFINITY.to_le_bytes());
        assert!(decode_stats(&bad).is_none());

        // Negative or fractional counters cannot round-trip to u64.
        let mut bad = good;
        bad[0..8].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(decode_stats(&bad).is_none());
        let mut bad = good;
        bad[6 * 8..7 * 8].copy_from_slice(&1.5f64.to_le_bytes());
        assert!(decode_stats(&bad).is_none());

        // Wrong length is structurally invalid.
        assert!(decode_stats(&good[..64]).is_none());
    }

    #[test]
    fn config_fingerprint_tracks_machine_changes() {
        let base = SimConfig::power4();
        let mut tweaked = SimConfig::power4();
        tweaked.mshrs += 1;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&tweaked));
        assert_eq!(config_fingerprint(&base), config_fingerprint(&SimConfig::power4()));
        let (a, b) = (
            cache_path("gzip", 1000, 1, &base).unwrap(),
            cache_path("gzip", 1000, 1, &tweaked).unwrap(),
        );
        assert_ne!(a, b);
    }

    #[test]
    fn processor_trace_spans_simulation() {
        let run = simulate_benchmark("swim", 10_000, 1).unwrap();
        let proc = processor_trace(&run, &UnitRates::paper()).unwrap();
        assert_eq!(proc.period_cycles(), run.output.stats.cycles);
        let avf = proc.avf();
        assert!(avf > 0.0 && avf <= 1.0, "avf {avf}");
    }
}
