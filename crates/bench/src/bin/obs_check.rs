//! Validates a `--metrics` JSONL file produced by `serr` or the bench
//! binaries: every line must parse as a JSON object with an `event` string
//! and a numeric `seq`, and the stream must contain at least one per-stage
//! timing and one Monte Carlo convergence snapshot. Used by `tier1.sh` as
//! the observability smoke gate.
//!
//! Usage: `obs_check <metrics.jsonl>`
//!
//! Exit status 0 iff the file is well-formed and complete; the summary and
//! any defects print to stdout.

use std::process::ExitCode;

use serr_core::jsonio::Json;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        println!("usage: obs_check <metrics.jsonl>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            println!("obs_check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut lines = 0usize;
    let mut stage_events = 0usize;
    let mut chunk_events = 0usize;
    let mut snapshot_lines = 0usize;
    let mut defects: Vec<String> = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        lines += 1;
        let Some(v) = Json::parse(line) else {
            defects.push(format!("line {}: not valid JSON: {line}", lineno + 1));
            continue;
        };
        let Some(kind) = v.get("event").and_then(Json::as_str) else {
            defects.push(format!("line {}: missing string field `event`", lineno + 1));
            continue;
        };
        if v.get("seq").and_then(Json::as_u64).is_none() {
            defects.push(format!("line {}: missing numeric field `seq`", lineno + 1));
            continue;
        }
        match kind {
            "stage" => stage_events += 1,
            "mc.chunk" => chunk_events += 1,
            k if k.starts_with("metric.") => snapshot_lines += 1,
            _ => {}
        }
    }

    if lines == 0 {
        defects.push("file contains no JSONL records".to_owned());
    }
    if stage_events == 0 {
        defects.push("no `stage` timing events found".to_owned());
    }
    if chunk_events == 0 {
        defects.push("no `mc.chunk` convergence snapshots found".to_owned());
    }

    println!(
        "obs_check: {lines} records, {stage_events} stage timings, \
         {chunk_events} convergence snapshots, {snapshot_lines} snapshot metrics"
    );
    if defects.is_empty() {
        println!("obs_check: OK ({path})");
        ExitCode::SUCCESS
    } else {
        for d in &defects {
            println!("obs_check: DEFECT: {d}");
        }
        ExitCode::FAILURE
    }
}
