//! Prints Table 2: the explored design space.

use serr_bench::render_table;
use serr_core::design::{C_VALUES, N_VALUES, S_VALUES};
use serr_core::prelude::Workload;

fn main() {
    let fmt = |xs: &[f64]| xs.iter().map(|x| format!("{x:.0e}")).collect::<Vec<_>>().join("  ");
    let rows = vec![
        vec!["N (elements/component)".to_owned(), fmt(&N_VALUES)],
        vec![
            "S (rate scaling)".to_owned(),
            S_VALUES.iter().map(|s| format!("{s}")).collect::<Vec<_>>().join("  "),
        ],
        vec![
            "C (components)".to_owned(),
            C_VALUES.iter().map(|c| c.to_string()).collect::<Vec<_>>().join("  "),
        ],
        vec![
            "Workload".to_owned(),
            Workload::all().iter().map(|w| w.label().to_owned()).collect::<Vec<_>>().join("  "),
        ],
    ];
    println!("Table 2. The design space explored.\n");
    print!("{}", render_table(&["dimension", "values"], &rows));
}
