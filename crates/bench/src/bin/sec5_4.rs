//! Regenerates the Section 5.4 result: SoftArch vs Monte Carlo across the
//! design space. Paper: "< 1% for a single component and less than 2% for
//! the full system".

use serr_bench::{
    config_from_args, pct, render_table, sci, sweep_options_from_args, unpack_report,
};
use serr_core::experiments::sec5_4_sweep;
use serr_core::prelude::Workload;

fn main() {
    let cfg = config_from_args();
    let cs = [1u64, 2, 8, 5_000, 50_000, 500_000];
    let n_s = [1e7, 1e8, 1e9, 1e12];
    let rows = unpack_report(
        "sec5_4",
        sec5_4_sweep(&Workload::synthesized(), &cs, &n_s, &cfg, &sweep_options_from_args())
            .expect("pipeline runs"),
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.c.to_string(),
                sci(r.n_times_s),
                pct(r.softarch_error),
                pct(r.softarch_error_vs_renewal),
            ]
        })
        .collect();
    println!(
        "Section 5.4: SoftArch error relative to Monte Carlo (and to the exact\n\
         renewal reference) across the design space (trials = {}).\n",
        cfg.mc.trials
    );
    print!("{}", render_table(&["workload", "C", "N*S", "vs Monte Carlo", "vs renewal"], &table));
    let worst_mc = rows.iter().map(|r| r.softarch_error).fold(0.0, f64::max);
    let worst_exact = rows.iter().map(|r| r.softarch_error_vs_renewal).fold(0.0, f64::max);
    println!(
        "\nworst vs MC: {} (MC sampling noise included); worst vs exact: {}",
        pct(worst_mc),
        pct(worst_exact)
    );
    println!("paper: < 1% (component), < 2% (system) for every point in the space");
}
