//! Regenerates the Section 5.1 result: AVF and SOFR vs Monte Carlo for
//! today's uniprocessor running the 21 SPEC-like benchmarks.
//! Paper: "< 0.5% discrepancy for all cases".

use serr_bench::{config_from_args, pct, render_table, sweep_options_from_args, unpack_report};
use serr_core::experiments::sec5_1_sweep;
use serr_workload::BenchmarkProfile;

fn main() {
    let cfg = config_from_args();
    let names: Vec<&'static str> = BenchmarkProfile::all().iter().map(|p| p.name).collect();
    let report = sec5_1_sweep(&names, &cfg, &sweep_options_from_args())
        .expect("sec5_1 sweep infrastructure runs (is another sweep holding the journal lock?)");
    let rows = unpack_report("sec5_1", report);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let unit = |n: &str| {
                r.components.iter().find(|(name, _, _)| name == n).map_or_else(
                    || "-".to_owned(),
                    |(_, avf, err)| format!("{:.3}/{}", avf, pct(*err)),
                )
            };
            vec![
                r.benchmark.clone(),
                format!("{:.2}", r.ipc),
                unit("int"),
                unit("fp"),
                unit("decode"),
                unit("regfile"),
                pct(r.max_component_error),
                pct(r.max_component_error_exact),
                pct(r.sofr_error),
                pct(r.sofr_error_exact),
            ]
        })
        .collect();
    println!(
        "Section 5.1: AVF & SOFR vs Monte Carlo, uniprocessor running SPEC\n\
         (cells are AVF/relative-error; trials = {}, sim = {} instructions)\n",
        cfg.mc.trials, cfg.sim_instructions
    );
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "IPC",
                "int",
                "fp",
                "decode",
                "regfile",
                "AVF err (MC)",
                "AVF err (exact)",
                "SOFR err (MC)",
                "SOFR err (exact)",
            ],
            &table
        )
    );
    let worst_avf = rows.iter().map(|r| r.max_component_error).fold(0.0, f64::max);
    let worst_sofr = rows.iter().map(|r| r.sofr_error).fold(0.0, f64::max);
    let worst_avf_exact = rows.iter().map(|r| r.max_component_error_exact).fold(0.0, f64::max);
    let worst_sofr_exact = rows.iter().map(|r| r.sofr_error_exact).fold(0.0, f64::max);
    println!(
        "\nworst AVF-step error: {} vs MC ({} vs exact)   worst SOFR-step error: {} vs MC ({} vs exact)",
        pct(worst_avf),
        pct(worst_avf_exact),
        pct(worst_sofr),
        pct(worst_sofr_exact)
    );
    println!("paper: < 0.5% discrepancy for all cases (vs 1e6-trial Monte Carlo);");
    println!("the vs-MC columns are bounded by sampling noise, the vs-exact columns");
    println!("show the methodology error itself.");
}
