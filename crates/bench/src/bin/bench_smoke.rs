//! Fixed smoke benchmark with machine-readable output.
//!
//! Criterion gives statistically careful numbers but its reports are for
//! humans; this binary runs a small, fixed subset of the `engines` bench
//! plus one figure sweep and writes the timings as JSON to
//! `BENCH_engines.json` at the repository root, so successive PRs leave a
//! perf trajectory that tooling can diff.
//!
//! Usage: `cargo run --release -p serr-bench --bin bench_smoke [out.json]`

use std::time::Instant;

use serr_core::experiments::{fig5, fig5_sweep, ExperimentConfig};
use serr_core::prelude::{run_chaos, ChaosConfig, Provenance, SweepOptions, Workload};
use serr_mc::{MonteCarlo, MonteCarloConfig, SamplerKind};
use serr_obs::{Event, Obs, Value};
use serr_trace::IntervalTrace;
use serr_types::{Frequency, RawErrorRate};

/// Pulls a numeric field out of an event, NaN if absent or non-numeric.
fn field_f64(e: &Event, key: &str) -> f64 {
    e.fields
        .iter()
        .find_map(|(k, v)| {
            (*k == key).then(|| match v {
                Value::F64(x) => *x,
                Value::U64(n) => *n as f64,
                _ => f64::NAN,
            })
        })
        .unwrap_or(f64::NAN)
}

struct Timing {
    name: &'static str,
    iterations: u32,
    mean_ms: f64,
    min_ms: f64,
}

/// Times `f` over `iters` iterations after one untimed warmup.
fn time<R>(name: &'static str, iters: u32, mut f: impl FnMut() -> R) -> Timing {
    std::hint::black_box(f());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        total += dt;
        min = min.min(dt);
    }
    Timing { name, iterations: iters, mean_ms: total / f64::from(iters), min_ms: min }
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        // crates/bench -> repository root.
        format!("{}/../../BENCH_engines.json", env!("CARGO_MANIFEST_DIR"))
    });
    let freq = Frequency::base();
    let mut timings = Vec::new();

    // The `monte_carlo/fine_grained_10k_segments` criterion case, verbatim:
    // the per-event phase-lookup stress test the compiled path targets.
    let levels: Vec<f64> = (0..10_000).map(|i| f64::from(u32::from(i % 7 == 0))).collect();
    let fine = IntervalTrace::from_levels(&levels).expect("fine-grained trace levels are valid");
    let mc = MonteCarlo::new(MonteCarloConfig { trials: 2_000, threads: 1, ..Default::default() });
    let rate = RawErrorRate::per_year(100.0);
    timings.push(time("monte_carlo/fine_grained_10k_segments", 20, || {
        mc.component_mttf(&fine, rate, freq).expect("fine-grained MC case runs")
    }));

    // The day-like case: two huge segments, stresses the period-skip math
    // rather than the lookup.
    let day_like = IntervalTrace::busy_idle(1_000_000, 1_000_000).expect("day-like trace is valid");
    let mc_day =
        MonteCarlo::new(MonteCarloConfig { trials: 10_000, threads: 1, ..Default::default() });
    let day_rate = RawErrorRate::per_year(1.0e4);
    timings.push(time("monte_carlo/day_like_10k_trials", 20, || {
        mc_day.component_mttf(&day_like, rate, freq).expect("day-like MC case runs");
        mc_day.component_mttf(&day_like, day_rate, freq).expect("day-like MC case runs")
    }));

    // Three-way sampler duel on a low-AVF workload (schema v6): busy 1
    // cycle in 1000, so the event-loop walk burns ~1/AVF = 1000 thinning
    // rejections per trial, the scalar Λ-inversion sampler spends exactly
    // one Exp(1) draw, and the batched sampler amortizes that draw's RNG,
    // log transforms, and phase probe across whole chunks in SoA passes.
    // Min-of-N timings (one untimed warmup each; N = 25 for the two
    // sub-millisecond inversion samplers, where a min-of-5 is still timer
    // noise, and 5 for the ~400 ms event loop), per-trial event counts,
    // and ns-per-trial all land in the JSON; the run aborts if either
    // advertised advantage — inversion ≥10× over the event loop, batched
    // ≥5× over scalar inversion — ever regresses.
    let low_avf = IntervalTrace::busy_idle(1, 999).expect("low-AVF trace is valid");
    let duel_rate = RawErrorRate::per_year(1.0e3);
    let duel_trials = 20_000u64;
    let duel_config = |sampler| MonteCarloConfig {
        trials: duel_trials,
        threads: 1,
        sampler,
        ..Default::default()
    };
    let mc_ev = MonteCarlo::new(duel_config(SamplerKind::EventLoop));
    let mc_inv = MonteCarlo::new(duel_config(SamplerKind::Inversion));
    let mc_batched = MonteCarlo::new(duel_config(SamplerKind::BatchedInversion));
    let ev_est = mc_ev.component_mttf(&low_avf, duel_rate, freq).expect("event-loop duel runs");
    let inv_est = mc_inv.component_mttf(&low_avf, duel_rate, freq).expect("inversion duel runs");
    let batched_est =
        mc_batched.component_mttf(&low_avf, duel_rate, freq).expect("batched duel runs");
    assert_eq!(ev_est.sampler, SamplerKind::EventLoop);
    assert_eq!(inv_est.sampler, SamplerKind::Inversion);
    assert_eq!(batched_est.sampler, SamplerKind::BatchedInversion);
    let t_ev = time("sampler/event_loop_low_avf_20k_trials", 5, || {
        mc_ev.component_mttf(&low_avf, duel_rate, freq).expect("event-loop duel runs")
    });
    let t_inv = time("sampler/inversion_low_avf_20k_trials", 25, || {
        mc_inv.component_mttf(&low_avf, duel_rate, freq).expect("inversion duel runs")
    });
    let t_batched = time("sampler/batched_inversion_low_avf_20k_trials", 25, || {
        mc_batched.component_mttf(&low_avf, duel_rate, freq).expect("batched duel runs")
    });
    let ns_per_trial = |t: &Timing| t.min_ms * 1e6 / duel_trials as f64;
    let speedup = t_ev.min_ms / t_inv.min_ms;
    let batched_speedup = t_inv.min_ms / t_batched.min_ms;
    let sampler_json = format!(
        "  \"sampler_duel\": {{\"workload\": \"busy_idle_1_999\", \"avf\": 0.001, \
         \"trials\": {duel_trials}, \"event_loop_min_ms\": {:.4}, \"inversion_min_ms\": {:.4}, \
         \"batched_inversion_min_ms\": {:.4}, \
         \"event_loop_events_per_trial\": {:.2}, \"inversion_events_per_trial\": {:.2}, \
         \"batched_inversion_events_per_trial\": {:.2}, \
         \"event_loop_ns_per_trial\": {:.1}, \"inversion_ns_per_trial\": {:.1}, \
         \"batched_inversion_ns_per_trial\": {:.1}, \
         \"speedup\": {speedup:.1}, \"batched_speedup_vs_inversion\": {batched_speedup:.1}}},",
        t_ev.min_ms,
        t_inv.min_ms,
        t_batched.min_ms,
        ev_est.mean_events_per_trial,
        inv_est.mean_events_per_trial,
        batched_est.mean_events_per_trial,
        ns_per_trial(&t_ev),
        ns_per_trial(&t_inv),
        ns_per_trial(&t_batched),
    );
    println!(
        "sampler duel: event-loop {:.3} ms ({:.1} events/trial) vs inversion {:.3} ms \
         ({:.1} events/trial) vs batched {:.3} ms ({:.1} events/trial) -> \
         {speedup:.1}x scalar, {batched_speedup:.1}x batched-over-scalar",
        t_ev.min_ms,
        ev_est.mean_events_per_trial,
        t_inv.min_ms,
        inv_est.mean_events_per_trial,
        t_batched.min_ms,
        batched_est.mean_events_per_trial
    );
    assert!(
        speedup >= 10.0,
        "inversion sampler must be >=10x faster than the event loop on the low-AVF duel, \
         measured {speedup:.1}x"
    );
    assert!(
        batched_speedup >= 5.0,
        "batched inversion must be >=5x faster than the scalar sampler on the low-AVF duel, \
         measured {batched_speedup:.1}x"
    );
    timings.push(t_ev);
    timings.push(t_inv);
    timings.push(t_batched);

    // Observed re-run of the day-like case: per-stage wall time and the
    // per-chunk convergence trajectory fold into the JSON, so the perf
    // trajectory also records *where* the time goes and how fast the
    // estimator tightens.
    let (obs, sink) = Obs::memory();
    let mc_observed =
        MonteCarlo::new(MonteCarloConfig { trials: 10_000, threads: 1, ..Default::default() })
            .with_observer(obs.clone());
    mc_observed.component_mttf(&day_like, rate, freq).expect("observed MC case runs");
    let snap = obs.metrics().snapshot();
    let stage_entries: Vec<String> = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("stage."))
        .map(|(name, h)| {
            format!(
                "    {{\"stage\": \"{name}\", \"count\": {}, \"total_ms\": {:.4}}}",
                h.count(),
                h.sum()
            )
        })
        .collect();
    let stages_json = format!("  \"stages\": [\n{}\n  ],", stage_entries.join(",\n"));
    let convergence_entries: Vec<String> = sink
        .events_of("mc.chunk")
        .iter()
        .map(|e| {
            format!(
                "    {{\"chunk\": {}, \"n\": {}, \"mean_s\": {:.6e}, \"ci95_s\": {:.6e}}}",
                e.seq,
                field_f64(e, "n") as u64,
                field_f64(e, "mean_s"),
                field_f64(e, "ci95_s")
            )
        })
        .collect();
    assert!(
        !convergence_entries.is_empty(),
        "observed MC run must emit at least one convergence snapshot"
    );
    let convergence_json =
        format!("  \"mc_convergence\": [\n{}\n  ],", convergence_entries.join(",\n"));

    // One figure sweep: three Figure 5 design points on the day workload,
    // exercising the parallel fan-out in serr-core.
    let sweep_cfg = ExperimentConfig {
        mc: MonteCarloConfig { trials: 10_000, ..Default::default() },
        ..ExperimentConfig::quick()
    };
    timings.push(time("sweep/fig5_day_3_points", 5, || {
        fig5(&[Workload::Day], &[1e7, 1e10, 1e13], &sweep_cfg).expect("fig5 sweep runs")
    }));

    // Checkpoint/resume probe: the same sweep run Fresh (computes and
    // journals every point) then Resume (must restore all of them without
    // recomputation). The counts land in the JSON so a perf-tracking diff
    // also notices if resume silently stops resuming.
    let ck_dir =
        format!("{}/../../target/serr-checkpoints/bench-smoke", env!("CARGO_MANIFEST_DIR"));
    let points = [1e7, 1e10, 1e13];
    let fresh =
        fig5_sweep(&[Workload::Day], &points, &sweep_cfg, &SweepOptions::fresh().in_dir(&ck_dir))
            .expect("fresh checkpointed sweep runs");
    let resumed =
        fig5_sweep(&[Workload::Day], &points, &sweep_cfg, &SweepOptions::resume().in_dir(&ck_dir))
            .expect("resumed checkpointed sweep runs");
    let checkpoint_json = format!(
        "  \"checkpoint\": {{\"sweep\": \"fig5_day_3_points\", \"fresh_computed\": {}, \
         \"resume_restored\": {}, \"resume_recomputed\": {}}},",
        fresh.computed, resumed.resumed, resumed.computed
    );
    println!(
        "checkpoint probe: fresh computed {}, resume restored {} / recomputed {}",
        fresh.computed, resumed.resumed, resumed.computed
    );

    // Chaos smoke campaign: a small fixed fault-injection run whose
    // detect/degrade/miss counts land in the JSON, so a perf-tracking diff
    // also notices if the detect-or-degrade guarantee regresses.
    let chaos_cfg =
        ChaosConfig { campaigns: 20, seed: 0xBE5C, trials: 2_000, ..Default::default() };
    let chaos = run_chaos(&chaos_cfg).expect("chaos smoke campaign runs");
    let chaos_json = format!(
        "  \"chaos\": {{\"campaigns\": {}, \"clean\": {}, \"retried\": {}, \"degraded\": {}, \
         \"suspect\": {}, \"misses\": {}}},",
        chaos.outcomes.len(),
        chaos.count(Provenance::Clean),
        chaos.count(Provenance::Retried),
        chaos.count(Provenance::Degraded),
        chaos.count(Provenance::Suspect),
        chaos.misses()
    );
    println!(
        "chaos probe: {} campaigns -> {} clean, {} retried, {} degraded, {} suspect, {} misses",
        chaos.outcomes.len(),
        chaos.count(Provenance::Clean),
        chaos.count(Provenance::Retried),
        chaos.count(Provenance::Degraded),
        chaos.count(Provenance::Suspect),
        chaos.misses()
    );
    assert!(chaos.is_sound(), "chaos smoke campaign produced a silently wrong result");

    let entries: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"name\": \"{}\", \"iterations\": {}, \"mean_ms\": {:.4}, \"min_ms\": {:.4}}}",
                t.name, t.iterations, t.mean_ms, t.min_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": 6,\n  \"suite\": \"engines-smoke\",\n{}\n{}\n{}\n{}\n{}\n  \"timings\": [\n{}\n  ]\n}}\n",
        sampler_json,
        checkpoint_json,
        chaos_json,
        stages_json,
        convergence_json,
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    for t in &timings {
        println!(
            "{:<45} mean {:>10.3} ms   min {:>10.3} ms   ({} iters)",
            t.name, t.mean_ms, t.min_ms, t.iterations
        );
    }
    println!("\nwrote {out_path}");
}
