//! Fixed smoke benchmark with machine-readable output.
//!
//! Criterion gives statistically careful numbers but its reports are for
//! humans; this binary runs a small, fixed subset of the `engines` bench
//! plus a shared-stream sweep-kernel duel, one figure sweep, a
//! checkpoint/chaos probe, and a `serr serve` service probe, and writes
//! the results as JSON to `BENCH_engines.json`
//! at the repository root, so successive PRs leave a perf trajectory that
//! tooling can diff.
//!
//! Usage: `cargo run --release -p serr-bench --bin bench_smoke [out.json]`

use std::time::{Duration, Instant};

use serr_core::checkpoint::{fingerprint, Journal};
use serr_core::experiments::{fig5, fig5_sweep, ExperimentConfig};
use serr_core::jsonio::Json;
use serr_core::pipeline::{
    load_cache_entry_mmap, load_cache_entry_read, simulate_benchmark, write_cache_entry,
};
use serr_core::prelude::{
    run_chaos, ChaosConfig, ProtectionSpec, Provenance, SweepOptions, Validator, Workload,
    WorkloadSpec,
};
use serr_inject::{FaultKind, FaultPlan};
use serr_mc::{MonteCarlo, MonteCarloConfig, SamplerKind};
use serr_obs::{Event, Obs, Value};
use serr_serve::{Bind, Client, Request, RequestBody, Response, ServeConfig, Server};
use serr_trace::{CompiledTrace, IntervalTrace, VulnerabilityTrace};
use serr_types::{Frequency, RawErrorRate};

/// Pulls a numeric field out of an event, NaN if absent or non-numeric.
fn field_f64(e: &Event, key: &str) -> f64 {
    e.fields
        .iter()
        .find_map(|(k, v)| {
            (*k == key).then(|| match v {
                Value::F64(x) => *x,
                Value::U64(n) => *n as f64,
                _ => f64::NAN,
            })
        })
        .unwrap_or(f64::NAN)
}

struct Timing {
    name: &'static str,
    iterations: u32,
    mean_ms: f64,
    min_ms: f64,
}

/// Times `f` over `iters` iterations after one untimed warmup.
fn time<R>(name: &'static str, iters: u32, mut f: impl FnMut() -> R) -> Timing {
    std::hint::black_box(f());
    let mut total = 0.0f64;
    let mut min = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        std::hint::black_box(f());
        let dt = t0.elapsed().as_secs_f64() * 1e3;
        total += dt;
        min = min.min(dt);
    }
    Timing { name, iterations: iters, mean_ms: total / f64::from(iters), min_ms: min }
}

/// A unique estimation request for the service probe: the duty-cycle
/// spelling varies the workload and the rate varies with `i`, so no two
/// requests share a canonical body and none short-circuits through the
/// daemon's resume map.
fn serve_request(i: u64, trials: u64) -> Request {
    let duty = ["duty:0.002:0.5", "duty:0.004:0.25", "duty:0.001:0.75", "duty:0.003:0.4"]
        [usize::try_from(i % 4).expect("i % 4 fits usize")];
    Request {
        id: i,
        deadline_ms: None,
        tag: Some(i),
        body: RequestBody::Mttf {
            workload: WorkloadSpec::parse(duty).expect("duty workload parses"),
            rate_per_year: 1.0e6 * (1.0 + i as f64 / 100.0),
            trials,
            sampler: SamplerKind::default(),
        },
    }
}

/// Snapshot of the daemon's counters via a `stats` request.
fn serve_stats(client: &mut Client) -> Vec<(String, u64)> {
    let resp = client
        .roundtrip(&Request { id: 9_999, deadline_ms: None, tag: None, body: RequestBody::Stats })
        .expect("stats io")
        .expect("stats response");
    match resp {
        Response::Stats { counters, .. } => counters,
        other => panic!("stats request answered with {other:?}"),
    }
}

fn serve_counter(counters: &[(String, u64)], name: &str) -> u64 {
    counters.iter().find(|(k, _)| k == name).map_or(0, |&(_, v)| v)
}

/// Graceful shutdown: request, assert the ack, and join the daemon.
fn shut_down_service(client: &mut Client, server: Server) {
    let ack = client
        .roundtrip(&Request { id: 0, deadline_ms: None, tag: None, body: RequestBody::Shutdown })
        .expect("shutdown io")
        .expect("shutdown ack");
    assert!(matches!(ack, Response::ShutdownAck { .. }), "expected shutdown ack, got {ack:?}");
    server.wait();
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        // crates/bench -> repository root.
        format!("{}/../../BENCH_engines.json", env!("CARGO_MANIFEST_DIR"))
    });
    let freq = Frequency::base();
    let mut timings = Vec::new();

    // The `monte_carlo/fine_grained_10k_segments` criterion case, verbatim:
    // the per-event phase-lookup stress test the compiled path targets.
    let levels: Vec<f64> = (0..10_000).map(|i| f64::from(u32::from(i % 7 == 0))).collect();
    let fine = IntervalTrace::from_levels(&levels).expect("fine-grained trace levels are valid");
    let mc = MonteCarlo::new(MonteCarloConfig { trials: 2_000, threads: 1, ..Default::default() });
    let rate = RawErrorRate::per_year(100.0);
    timings.push(time("monte_carlo/fine_grained_10k_segments", 20, || {
        mc.component_mttf(&fine, rate, freq).expect("fine-grained MC case runs")
    }));

    // The day-like case: two huge segments, stresses the period-skip math
    // rather than the lookup.
    let day_like = IntervalTrace::busy_idle(1_000_000, 1_000_000).expect("day-like trace is valid");
    let mc_day =
        MonteCarlo::new(MonteCarloConfig { trials: 10_000, threads: 1, ..Default::default() });
    let day_rate = RawErrorRate::per_year(1.0e4);
    timings.push(time("monte_carlo/day_like_10k_trials", 20, || {
        mc_day.component_mttf(&day_like, rate, freq).expect("day-like MC case runs");
        mc_day.component_mttf(&day_like, day_rate, freq).expect("day-like MC case runs")
    }));

    // Three-way sampler duel on a low-AVF workload (schema v6): busy 1
    // cycle in 1000, so the event-loop walk burns ~1/AVF = 1000 thinning
    // rejections per trial, the scalar Λ-inversion sampler spends exactly
    // one Exp(1) draw, and the batched sampler amortizes that draw's RNG,
    // log transforms, and phase probe across whole chunks in SoA passes.
    // Min-of-N timings (one untimed warmup each; N = 25 for the two
    // sub-millisecond inversion samplers, where a min-of-5 is still timer
    // noise, and 5 for the ~400 ms event loop), per-trial event counts,
    // and ns-per-trial all land in the JSON; the run aborts if either
    // advertised advantage — inversion ≥10× over the event loop, batched
    // ≥5× over scalar inversion — ever regresses.
    let low_avf = IntervalTrace::busy_idle(1, 999).expect("low-AVF trace is valid");
    let duel_rate = RawErrorRate::per_year(1.0e3);
    let duel_trials = 20_000u64;
    let duel_config = |sampler| MonteCarloConfig {
        trials: duel_trials,
        threads: 1,
        sampler,
        ..Default::default()
    };
    let mc_ev = MonteCarlo::new(duel_config(SamplerKind::EventLoop));
    let mc_inv = MonteCarlo::new(duel_config(SamplerKind::Inversion));
    let mc_batched = MonteCarlo::new(duel_config(SamplerKind::BatchedInversion));
    let ev_est = mc_ev.component_mttf(&low_avf, duel_rate, freq).expect("event-loop duel runs");
    let inv_est = mc_inv.component_mttf(&low_avf, duel_rate, freq).expect("inversion duel runs");
    let batched_est =
        mc_batched.component_mttf(&low_avf, duel_rate, freq).expect("batched duel runs");
    assert_eq!(ev_est.sampler, SamplerKind::EventLoop);
    assert_eq!(inv_est.sampler, SamplerKind::Inversion);
    assert_eq!(batched_est.sampler, SamplerKind::BatchedInversion);
    let t_ev = time("sampler/event_loop_low_avf_20k_trials", 5, || {
        mc_ev.component_mttf(&low_avf, duel_rate, freq).expect("event-loop duel runs")
    });
    let t_inv = time("sampler/inversion_low_avf_20k_trials", 25, || {
        mc_inv.component_mttf(&low_avf, duel_rate, freq).expect("inversion duel runs")
    });
    let t_batched = time("sampler/batched_inversion_low_avf_20k_trials", 25, || {
        mc_batched.component_mttf(&low_avf, duel_rate, freq).expect("batched duel runs")
    });
    let ns_per_trial = |t: &Timing| t.min_ms * 1e6 / duel_trials as f64;
    let speedup = t_ev.min_ms / t_inv.min_ms;
    let batched_speedup = t_inv.min_ms / t_batched.min_ms;
    let sampler_json = format!(
        "  \"sampler_duel\": {{\"workload\": \"busy_idle_1_999\", \"avf\": 0.001, \
         \"trials\": {duel_trials}, \"event_loop_min_ms\": {:.4}, \"inversion_min_ms\": {:.4}, \
         \"batched_inversion_min_ms\": {:.4}, \
         \"event_loop_events_per_trial\": {:.2}, \"inversion_events_per_trial\": {:.2}, \
         \"batched_inversion_events_per_trial\": {:.2}, \
         \"event_loop_ns_per_trial\": {:.1}, \"inversion_ns_per_trial\": {:.1}, \
         \"batched_inversion_ns_per_trial\": {:.1}, \
         \"speedup\": {speedup:.1}, \"batched_speedup_vs_inversion\": {batched_speedup:.1}}},",
        t_ev.min_ms,
        t_inv.min_ms,
        t_batched.min_ms,
        ev_est.mean_events_per_trial,
        inv_est.mean_events_per_trial,
        batched_est.mean_events_per_trial,
        ns_per_trial(&t_ev),
        ns_per_trial(&t_inv),
        ns_per_trial(&t_batched),
    );
    println!(
        "sampler duel: event-loop {:.3} ms ({:.1} events/trial) vs inversion {:.3} ms \
         ({:.1} events/trial) vs batched {:.3} ms ({:.1} events/trial) -> \
         {speedup:.1}x scalar, {batched_speedup:.1}x batched-over-scalar",
        t_ev.min_ms,
        ev_est.mean_events_per_trial,
        t_inv.min_ms,
        inv_est.mean_events_per_trial,
        t_batched.min_ms,
        batched_est.mean_events_per_trial
    );
    assert!(
        speedup >= 10.0,
        "inversion sampler must be >=10x faster than the event loop on the low-AVF duel, \
         measured {speedup:.1}x"
    );
    assert!(
        batched_speedup >= 5.0,
        "batched inversion must be >=5x faster than the scalar sampler on the low-AVF duel, \
         measured {batched_speedup:.1}x"
    );
    timings.push(t_ev);
    timings.push(t_inv);
    timings.push(t_batched);

    // Observed re-run of the day-like case: per-stage wall time and the
    // per-chunk convergence trajectory fold into the JSON, so the perf
    // trajectory also records *where* the time goes and how fast the
    // estimator tightens.
    let (obs, sink) = Obs::memory();
    let mc_observed =
        MonteCarlo::new(MonteCarloConfig { trials: 10_000, threads: 1, ..Default::default() })
            .with_observer(obs.clone());
    mc_observed.component_mttf(&day_like, rate, freq).expect("observed MC case runs");
    let snap = obs.metrics().snapshot();
    let stage_entries: Vec<String> = snap
        .histograms
        .iter()
        .filter(|(name, _)| name.starts_with("stage."))
        .map(|(name, h)| {
            format!(
                "    {{\"stage\": \"{name}\", \"count\": {}, \"total_ms\": {:.4}}}",
                h.count(),
                h.sum()
            )
        })
        .collect();
    let stages_json = format!("  \"stages\": [\n{}\n  ],", stage_entries.join(",\n"));
    let convergence_entries: Vec<String> = sink
        .events_of("mc.chunk")
        .iter()
        .map(|e| {
            format!(
                "    {{\"chunk\": {}, \"n\": {}, \"mean_s\": {:.6e}, \"ci95_s\": {:.6e}}}",
                e.seq,
                field_f64(e, "n") as u64,
                field_f64(e, "mean_s"),
                field_f64(e, "ci95_s")
            )
        })
        .collect();
    assert!(
        !convergence_entries.is_empty(),
        "observed MC run must emit at least one convergence snapshot"
    );
    let convergence_json =
        format!("  \"mc_convergence\": [\n{}\n  ],", convergence_entries.join(",\n"));

    // One figure sweep: three Figure 5 design points on the day workload,
    // exercising the parallel fan-out in serr-core.
    let sweep_cfg = ExperimentConfig {
        mc: MonteCarloConfig { trials: 10_000, ..Default::default() },
        ..ExperimentConfig::quick()
    };
    timings.push(time("sweep/fig5_day_3_points", 5, || {
        fig5(&[Workload::Day], &[1e7, 1e10, 1e13], &sweep_cfg).expect("fig5 sweep runs")
    }));

    // Checkpoint/resume probe: the same sweep run Fresh (computes and
    // journals every point) then Resume (must restore all of them without
    // recomputation). The counts land in the JSON so a perf-tracking diff
    // also notices if resume silently stops resuming.
    let ck_dir =
        format!("{}/../../target/serr-checkpoints/bench-smoke", env!("CARGO_MANIFEST_DIR"));
    let points = [1e7, 1e10, 1e13];
    let fresh =
        fig5_sweep(&[Workload::Day], &points, &sweep_cfg, &SweepOptions::fresh().in_dir(&ck_dir))
            .expect("fresh checkpointed sweep runs");
    let resumed =
        fig5_sweep(&[Workload::Day], &points, &sweep_cfg, &SweepOptions::resume().in_dir(&ck_dir))
            .expect("resumed checkpointed sweep runs");
    let checkpoint_json = format!(
        "  \"checkpoint\": {{\"sweep\": \"fig5_day_3_points\", \"fresh_computed\": {}, \
         \"resume_restored\": {}, \"resume_recomputed\": {}}},",
        fresh.computed, resumed.resumed, resumed.computed
    );
    println!(
        "checkpoint probe: fresh computed {}, resume restored {} / recomputed {}",
        fresh.computed, resumed.resumed, resumed.computed
    );

    // Chaos smoke campaign: a small fixed fault-injection run whose
    // detect/degrade/miss counts land in the JSON, so a perf-tracking diff
    // also notices if the detect-or-degrade guarantee regresses.
    let chaos_cfg =
        ChaosConfig { campaigns: 20, seed: 0xBE5C, trials: 2_000, ..Default::default() };
    let chaos = run_chaos(&chaos_cfg).expect("chaos smoke campaign runs");
    let chaos_json = format!(
        "  \"chaos\": {{\"campaigns\": {}, \"clean\": {}, \"retried\": {}, \"degraded\": {}, \
         \"suspect\": {}, \"misses\": {}}},",
        chaos.outcomes.len(),
        chaos.count(Provenance::Clean),
        chaos.count(Provenance::Retried),
        chaos.count(Provenance::Degraded),
        chaos.count(Provenance::Suspect),
        chaos.misses()
    );
    println!(
        "chaos probe: {} campaigns -> {} clean, {} retried, {} degraded, {} suspect, {} misses",
        chaos.outcomes.len(),
        chaos.count(Provenance::Clean),
        chaos.count(Provenance::Retried),
        chaos.count(Provenance::Degraded),
        chaos.count(Provenance::Suspect),
        chaos.misses()
    );
    assert!(chaos.is_sound(), "chaos smoke campaign produced a silently wrong result");

    // Service probe (schema v7): the `serr serve` daemon exercised
    // in-process over unix sockets, three short campaigns. (a) Pipelined
    // unique requests against a healthy server measure sustained JSONL
    // throughput. (b) A worker-starved server (zero estimate slots,
    // depth-1 queues) must shed every request — through admission control
    // or the shutdown drain — never hang or drop one. (c) A chaos
    // campaign under injected worker panics must restart one estimate
    // slot per panic. The counts land in the JSON so a perf-tracking diff
    // also notices if service throughput, the backpressure contract, or
    // the supervision loop regresses.
    let serve_dir = std::env::temp_dir().join("serr-bench-smoke-serve");
    let _ = std::fs::remove_dir_all(&serve_dir);
    std::fs::create_dir_all(&serve_dir).expect("create service probe dir");

    let (serve_obs, _serve_sink) = Obs::memory();
    let mut serve_cfg = ServeConfig::new(Bind::Unix(serve_dir.join("throughput.sock")));
    serve_cfg.obs = serve_obs;
    serve_cfg.mc_threads = 1;
    let server = Server::start(serve_cfg).expect("throughput server starts");
    let mut client = Client::connect(server.bind_addr()).expect("connect throughput server");
    let serve_n = 32u64;
    let t0 = Instant::now();
    for i in 0..serve_n {
        client.send_line(&serve_request(i, 2_000).to_line()).expect("pipeline request");
    }
    for _ in 0..serve_n {
        let line = client.recv_line().expect("recv").expect("pipelined response line");
        let resp = Response::parse(&line).expect("response parses");
        assert_eq!(resp.state(), "result", "clean service request must terminate as `result`");
    }
    let throughput_rps = serve_n as f64 / t0.elapsed().as_secs_f64();
    shut_down_service(&mut client, server);

    let mut shed_cfg = ServeConfig::new(Bind::Unix(serve_dir.join("shed.sock")));
    shed_cfg.compile_workers = 1;
    shed_cfg.estimate_workers = 0;
    shed_cfg.queue_depth = 1;
    shed_cfg.journal_dir = Some(serve_dir.join("shed-journal"));
    shed_cfg.mc_threads = 1;
    let server = Server::start(shed_cfg).expect("shed server starts");
    let mut client = Client::connect(server.bind_addr()).expect("connect shed server");
    let shed_n = 6u64;
    for i in 0..shed_n {
        client.send_line(&serve_request(100 + i, 2_000).to_line()).expect("pipeline request");
    }
    client
        .send_line(
            &Request { id: 0, deadline_ms: None, tag: None, body: RequestBody::Shutdown }.to_line(),
        )
        .expect("send shutdown");
    let mut shed = 0u64;
    let mut acked = false;
    while let Some(line) = client.recv_line().expect("recv") {
        match Response::parse(&line).expect("response parses") {
            Response::Shed { .. } => shed += 1,
            Response::ShutdownAck { .. } => acked = true,
            other => panic!("worker-starved server produced {other:?}"),
        }
        if acked && shed == shed_n {
            break;
        }
    }
    assert!(acked, "shed server never acknowledged shutdown");
    assert_eq!(shed, shed_n, "a worker-starved depth-1 server must shed every request");
    server.wait();

    // The injected panics below are supervised crashes, not bugs: silence
    // the default hook for the daemon's own worker threads only, so a
    // genuine assertion failure in this binary still prints.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let in_service_worker =
            std::thread::current().name().is_some_and(|n| n.starts_with("serr-serve"));
        if !in_service_worker {
            default_hook(info);
        }
    }));
    let (panic_obs, _panic_sink) = Obs::memory();
    let mut panic_cfg = ServeConfig::new(Bind::Unix(serve_dir.join("panic.sock")));
    panic_cfg.chaos = Some(FaultPlan::new(0xB0B, FaultKind::ServeWorkerPanic));
    panic_cfg.obs = panic_obs;
    panic_cfg.mc_threads = 1;
    let server = Server::start(panic_cfg).expect("panic server starts");
    let mut client = Client::connect(server.bind_addr()).expect("connect panic server");
    let panic_n = 16u64;
    for i in 0..panic_n {
        let resp = client
            .roundtrip(&serve_request(200 + i, 1_000))
            .expect("request io")
            .expect("response under panic chaos");
        assert!(
            matches!(resp.state(), "result" | "error"),
            "panic-chaos request terminated as {}",
            resp.state()
        );
    }
    let injected_panics = serve_counter(&serve_stats(&mut client), "serve.injected_panics");
    assert!(injected_panics >= 1, "seeded plan must panic at least one of {panic_n} workers");
    // The worker answers its request before dying, so the final restart
    // may still be in flight: poll until the supervisor catches up.
    let catch_up = Instant::now() + Duration::from_secs(60);
    let worker_restarts = loop {
        let restarts = serve_counter(&serve_stats(&mut client), "serve.worker_restarts");
        if restarts >= injected_panics {
            break restarts;
        }
        assert!(
            Instant::now() < catch_up,
            "supervisor stuck at {restarts} restarts for {injected_panics} injected panics"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    shut_down_service(&mut client, server);
    let _ = std::fs::remove_dir_all(&serve_dir);

    let service_json = format!(
        "  \"service\": {{\"requests\": {}, \"throughput_rps\": {throughput_rps:.1}, \
         \"shed\": {shed}, \"worker_restarts\": {worker_restarts}, \
         \"injected_panics\": {injected_panics}}},",
        serve_n + shed_n + panic_n
    );
    println!(
        "service probe: {serve_n} pipelined requests at {throughput_rps:.1} rps, \
         {shed} shed on the starved server, {worker_restarts} worker restarts \
         for {injected_panics} injected panics"
    );

    // Storage probe (schema v8): the durable-store layer measured against
    // the format it replaced. (a) A dense checkpoint journal — 2,000 rows,
    // each carrying a 64-sample trace vector, the shape the figure sweeps
    // write — is resumed from the CRC-paged binary store and, for
    // comparison, parsed from the legacy JSONL spelling of the same rows;
    // the run aborts if the binary resume is not at least 5x faster,
    // because that advantage is the reason the binary format exists.
    // (b) One trace-cache entry loaded through the default mmap path and
    // through an ordinary buffered read, so the zero-copy claim stays
    // measured.
    let storage_dir = std::env::temp_dir().join("serr-bench-smoke-storage");
    let _ = std::fs::remove_dir_all(&storage_dir);
    std::fs::create_dir_all(&storage_dir).expect("create storage probe dir");
    let journal_rows = 2_000usize;
    let dense_row = |i: usize| -> Json {
        let trace: Vec<Json> =
            (0..64).map(|k| Json::Num(((i * 64 + k) as f64).sqrt() * 0.013 + 0.2)).collect();
        Json::Obj(vec![
            ("i".to_owned(), Json::Num(i as f64)),
            ("trace".to_owned(), Json::Arr(trace)),
        ])
    };
    let storage_fp = fingerprint(&["bench-smoke", "storage"]);
    {
        let journal = Journal::open(&storage_dir, "bench-storage", storage_fp, true)
            .expect("storage probe journal opens");
        for i in 0..journal_rows {
            journal.record(i, &dense_row(i)).expect("storage probe row records");
        }
    }
    // The legacy line format the binary journal replaced, verbatim:
    // `{"i":N,"ck":"<fnv hex>","row":<json>}` with the checksum over the
    // decimal index and the row's canonical JSON.
    let legacy_text: String = (0..journal_rows)
        .map(|i| {
            let row = dense_row(i).to_json();
            let ck = fingerprint(&[&i.to_string(), &row]);
            format!("{{\"i\":{i},\"ck\":\"{ck:016x}\",\"row\":{row}}}\n")
        })
        .collect();
    let t_binary = time("storage/binary_journal_resume_2k_rows", 5, || {
        let journal = Journal::open(&storage_dir, "bench-storage", storage_fp, false)
            .expect("binary resume opens");
        assert_eq!(journal.completed().len(), journal_rows);
    });
    let t_jsonl = time("storage/jsonl_journal_parse_2k_rows", 5, || {
        // What every resume paid before the binary store: parse each line,
        // re-serialize the row to verify its checksum, and collect the
        // completed-point map.
        let mut rows = std::collections::BTreeMap::new();
        for line in legacy_text.lines() {
            let mut v = Json::parse(line).expect("legacy line parses");
            let i = v.get("i").and_then(Json::as_u64).expect("index field") as usize;
            let row = v.get("row").expect("row field");
            let ck = v.get("ck").and_then(Json::as_str).expect("checksum field");
            let expect = format!("{:016x}", fingerprint(&[&i.to_string(), &row.to_json()]));
            assert_eq!(ck, expect, "legacy checksum holds");
            if let Json::Obj(fields) = &mut v {
                if let Some(pos) = fields.iter().position(|(k, _)| k == "row") {
                    rows.insert(i, fields.swap_remove(pos).1);
                }
            }
        }
        assert_eq!(rows.len(), journal_rows);
    });
    let binary_resume_speedup = t_jsonl.min_ms / t_binary.min_ms;
    println!(
        "storage probe: {journal_rows}-row dense journal resumes in {:.3} ms binary vs \
         {:.3} ms JSONL -> {binary_resume_speedup:.1}x",
        t_binary.min_ms, t_jsonl.min_ms
    );
    assert!(
        binary_resume_speedup >= 5.0,
        "binary journal resume must be >=5x faster than the JSONL parse it replaced on the \
         dense-trace workload, measured {binary_resume_speedup:.1}x"
    );

    let cache_entry = storage_dir.join("cache-probe.store");
    let sim = simulate_benchmark("gzip", 100_000, 7).expect("cache probe simulation runs");
    write_cache_entry(&cache_entry, &sim.output).expect("cache probe entry writes");
    let t_cache_mmap = time("storage/cache_load_mmap", 25, || {
        load_cache_entry_mmap(&cache_entry).expect("mmap cache load decodes")
    });
    let t_cache_read = time("storage/cache_load_read", 25, || {
        load_cache_entry_read(&cache_entry).expect("buffered cache load decodes")
    });
    println!(
        "storage probe: cache entry loads in {:.3} ms mmap vs {:.3} ms read",
        t_cache_mmap.min_ms, t_cache_read.min_ms
    );
    let storage_json = format!(
        "  \"storage\": {{\"journal_rows\": {journal_rows}, \
         \"jsonl_resume_ms\": {:.4}, \"binary_resume_ms\": {:.4}, \
         \"binary_resume_speedup\": {binary_resume_speedup:.1}, \
         \"cache_load_mmap_ms\": {:.4}, \"cache_load_read_ms\": {:.4}}},",
        t_jsonl.min_ms, t_binary.min_ms, t_cache_mmap.min_ms, t_cache_read.min_ms
    );
    let _ = std::fs::remove_dir_all(&storage_dir);
    timings.push(t_binary);
    timings.push(t_jsonl);
    timings.push(t_cache_mmap);
    timings.push(t_cache_read);

    // Protection-model probe (schema v9): the AVF-step-vs-MC comparison on
    // the day workload under each transform in the --protect algebra.
    // SEC-DED is a pointwise no-op on the binary day trace (every cycle is
    // fully vulnerable or not at all — there is no second-bit word state to
    // save), so its row must be bit-identical to the unprotected one;
    // scrubbing and delayed reporting are strictly protective, so their
    // MTTFs must not fall below baseline. The rows land in the JSON so the
    // perf trajectory also records how far the two-step method drifts from
    // ground truth once a protection transform reshapes the trace.
    let model_cfg = serr_core::experiments::ExperimentConfig {
        mc: MonteCarloConfig { trials: 20_000, threads: 1, ..Default::default() },
        ..serr_core::experiments::ExperimentConfig::quick()
    };
    let day_trace = WorkloadSpec::Day.trace(&model_cfg).expect("day workload trace builds");
    let model_ns = 1.0e8;
    let model_rate =
        RawErrorRate::per_year(model_ns * serr_types::BASELINE_RAW_RATE_PER_BIT_PER_YEAR);
    let model_validator = Validator::new(model_cfg.frequency, model_cfg.mc.clone());
    let model_specs = ["none", "ecc:64", "scrub:1e11", "delay:1e13"];
    let mut model_rows = Vec::new();
    let mut model_results = Vec::new();
    for spec in model_specs {
        let protect = ProtectionSpec::parse(spec).expect("model protection spec parses");
        let protected = protect.apply(day_trace.clone()).expect("model protection applies");
        let r = model_validator.component(&protected, model_rate).expect("model validation runs");
        model_rows.push(format!(
            "    {{\"protect\": \"{spec}\", \"avf\": {:.6}, \"mttf_avf_s\": {:.6e}, \
             \"mttf_mc_s\": {:.6e}, \"avf_err_vs_mc_pct\": {:.3}}}",
            r.avf,
            r.mttf_avf.as_secs(),
            r.mttf_mc.mttf.as_secs(),
            r.avf_error_vs_mc * 100.0
        ));
        println!(
            "models probe: day + {spec:<11} avf {:.4}, mttf(avf) {:.3e} s, mttf(mc) {:.3e} s",
            r.avf,
            r.mttf_avf.as_secs(),
            r.mttf_mc.mttf.as_secs()
        );
        model_results.push((spec, r));
    }
    let baseline = &model_results[0].1;
    let ecc = &model_results[1].1;
    assert!(
        ecc.avf.to_bits() == baseline.avf.to_bits()
            && ecc.mttf_mc.mttf.as_secs().to_bits() == baseline.mttf_mc.mttf.as_secs().to_bits(),
        "SEC-DED must be bit-identical to no protection on the binary day trace"
    );
    for (spec, r) in &model_results[2..] {
        assert!(
            r.mttf_mc.mttf.as_secs() >= baseline.mttf_mc.mttf.as_secs(),
            "{spec} must not report a worse MTTF than the unprotected baseline"
        );
    }

    // Transform-overhead gate: the no-protection path through the pipeline
    // (the default for every mttf/sofr run) must stay an Arc pass-through —
    // if it ever starts copying or re-deriving the trace, compilation cost
    // is the first place it shows. Real transform application cost is
    // recorded informationally alongside.
    let fine_arc: std::sync::Arc<dyn VulnerabilityTrace> = std::sync::Arc::new(fine.clone());
    let no_protection = ProtectionSpec::none();
    // Both closures compile through the same `Arc<dyn ...>` the CLI hands
    // the estimators, so the ratio isolates the pipeline's own cost rather
    // than dynamic-vs-static dispatch inside compilation.
    let t_compile_raw = time("transform/compile_raw_10k_segments", 100, || {
        CompiledTrace::compile(&fine_arc).expect("fine trace compiles")
    });
    let t_compile_identity = time("transform/identity_pipeline_compile_10k_segments", 100, || {
        let t = no_protection.apply(fine_arc.clone()).expect("identity pipeline applies");
        CompiledTrace::compile(&t).expect("fine trace compiles through identity")
    });
    let scrub_ecc = ProtectionSpec::parse("scrub:100,ecc:64").expect("probe pipeline parses");
    let t_apply = time("transform/scrub_ecc_apply_10k_segments", 25, || {
        scrub_ecc.apply(fine_arc.clone()).expect("scrub+ecc applies to the fine trace")
    });
    let transform_overhead = t_compile_identity.min_ms / t_compile_raw.min_ms - 1.0;
    println!(
        "transform probe: raw compile {:.4} ms vs identity-pipeline compile {:.4} ms \
         ({:+.1}%), scrub+ecc apply {:.4} ms",
        t_compile_raw.min_ms,
        t_compile_identity.min_ms,
        transform_overhead * 100.0,
        t_apply.min_ms
    );
    assert!(
        transform_overhead <= 0.05,
        "the no-protection transform path must add <=5% to trace compilation, \
         measured {:+.1}%",
        transform_overhead * 100.0
    );
    let models_json = format!(
        "  \"models\": {{\"workload\": \"day\", \"n_s\": {model_ns:e}, \"trials\": 20000, \
         \"protections\": [\n{}\n  ], \"transform_overhead\": {{\
         \"raw_compile_min_ms\": {:.4}, \"identity_pipeline_compile_min_ms\": {:.4}, \
         \"overhead_frac\": {transform_overhead:.4}, \"scrub_ecc_apply_min_ms\": {:.4}}}}},",
        model_rows.join(",\n"),
        t_compile_raw.min_ms,
        t_compile_identity.min_ms,
        t_apply.min_ms
    );
    timings.push(t_compile_raw);
    timings.push(t_compile_identity);
    timings.push(t_apply);

    // Sweep-kernel duel (schema v10): a 32-point Figure-5-style rate fan
    // over the fine-grained 10k-segment workload trace, estimated two ways
    // with the same seed and sampler — a loop of independent per-point
    // `component_mttf` runs (the pre-kernel sweep path, which re-compiled
    // the trace and regenerated every RNG/log plane for each point) versus
    // one `component_mttf_multi` call that compiles the trace once and
    // pays each chunk's RNG words, uniforms, and vectorized log pass once
    // for all 32 λ values; only the λ-dependent finish (mass scale, tiered
    // log, inverse lookup, statistics fold) stays per point. Common random
    // numbers make the comparison exact, not statistical: before timing,
    // every kernel point is asserted bit-identical to its independent run
    // at 1 *and* 8 threads, so the measured speedup buys literally the
    // same bits. The run aborts if the kernel's amortization advantage
    // ever drops below 3x.
    let kernel_points = 32usize;
    let kernel_trials = 2_000u64;
    let kernel_rates: Vec<RawErrorRate> = (0..kernel_points)
        .map(|i| RawErrorRate::per_year(50.0 * 1.25f64.powi(i32::try_from(i).expect("small"))))
        .collect();
    for threads in [1usize, 8] {
        let mc_t = MonteCarlo::new(MonteCarloConfig {
            trials: kernel_trials,
            threads,
            sampler: SamplerKind::BatchedInversion,
            ..Default::default()
        });
        let multi =
            mc_t.component_mttf_multi(&fine, &kernel_rates, freq).expect("sweep kernel duel runs");
        for (i, (point, &r)) in multi.iter().zip(&kernel_rates).enumerate() {
            let point = point.as_ref().expect("kernel point succeeds");
            let solo = mc_t.component_mttf(&fine, r, freq).expect("independent point runs");
            assert!(
                point.mttf.as_secs().to_bits() == solo.mttf.as_secs().to_bits()
                    && point.ttf_seconds.ci95.to_bits() == solo.ttf_seconds.ci95.to_bits(),
                "sweep kernel point {i} must be bit-identical to its independent run \
                 at {threads} threads"
            );
        }
    }
    let mc_kernel = MonteCarlo::new(MonteCarloConfig {
        trials: kernel_trials,
        threads: 1,
        sampler: SamplerKind::BatchedInversion,
        ..Default::default()
    });
    let t_sweep_per_point = time("sweep_kernel/per_point_32x2k_trials", 5, || {
        for &r in &kernel_rates {
            mc_kernel.component_mttf(&fine, r, freq).expect("per-point sweep runs");
        }
    });
    let t_sweep_kernel = time("sweep_kernel/shared_stream_32x2k_trials", 5, || {
        mc_kernel.component_mttf_multi(&fine, &kernel_rates, freq).expect("kernel sweep runs")
    });
    let kernel_speedup = t_sweep_per_point.min_ms / t_sweep_kernel.min_ms;
    let trial_points = kernel_points as f64 * kernel_trials as f64;
    println!(
        "sweep-kernel duel: {kernel_points} points x {kernel_trials} trials, per-point \
         {:.3} ms ({:.1} ns/trial-point) vs shared-stream {:.3} ms ({:.1} ns/trial-point) \
         -> {kernel_speedup:.1}x, bit-identical at 1 and 8 threads",
        t_sweep_per_point.min_ms,
        t_sweep_per_point.min_ms * 1e6 / trial_points,
        t_sweep_kernel.min_ms,
        t_sweep_kernel.min_ms * 1e6 / trial_points
    );
    assert!(
        kernel_speedup >= 3.0,
        "the shared-stream sweep kernel must be >=3x faster than independent per-point runs \
         on the 32-point duel, measured {kernel_speedup:.1}x"
    );
    let sweep_kernel_json = format!(
        "  \"sweep_kernel\": {{\"points\": {kernel_points}, \"trials\": {kernel_trials}, \
         \"per_point_min_ms\": {:.4}, \"kernel_min_ms\": {:.4}, \
         \"per_point_ns_per_trial_point\": {:.1}, \"kernel_ns_per_trial_point\": {:.1}, \
         \"speedup\": {kernel_speedup:.1}, \"bit_identical_threads\": [1, 8]}},",
        t_sweep_per_point.min_ms,
        t_sweep_kernel.min_ms,
        t_sweep_per_point.min_ms * 1e6 / trial_points,
        t_sweep_kernel.min_ms * 1e6 / trial_points
    );
    timings.push(t_sweep_per_point);
    timings.push(t_sweep_kernel);

    let entries: Vec<String> = timings
        .iter()
        .map(|t| {
            format!(
                "    {{\"name\": \"{}\", \"iterations\": {}, \"mean_ms\": {:.4}, \"min_ms\": {:.4}}}",
                t.name, t.iterations, t.mean_ms, t.min_ms
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"schema\": 10,\n  \"suite\": \"engines-smoke\",\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n{}\n  \"timings\": [\n{}\n  ]\n}}\n",
        sampler_json,
        sweep_kernel_json,
        checkpoint_json,
        chaos_json,
        service_json,
        storage_json,
        models_json,
        stages_json,
        convergence_json,
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark JSON");

    for t in &timings {
        println!(
            "{:<45} mean {:>10.3} ms   min {:>10.3} ms   ({} iters)",
            t.name, t.mean_ms, t.min_ms, t.iterations
        );
    }
    println!("\nwrote {out_path}");
}
