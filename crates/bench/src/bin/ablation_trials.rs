//! Ablation: Monte Carlo convergence — estimate error and confidence
//! interval vs trial count, against the exact renewal answer.

use serr_analytic::renewal::renewal_mttf;
use serr_bench::{pct, render_table};
use serr_mc::{MonteCarlo, MonteCarloConfig};
use serr_trace::IntervalTrace;
use serr_types::{relative_error, Frequency, RawErrorRate};

fn main() {
    let freq = Frequency::base();
    // A trace squarely in the AVF-breaking regime so the MC engine is
    // exercised where precision matters.
    let trace = IntervalTrace::busy_idle(1_000_000, 1_000_000).expect("ablation trace is valid");
    let l_seconds = 2_000_000.0 / freq.hz();
    let rate = RawErrorRate::per_second(2.0 / l_seconds); // lambda*L = 2
    let exact = renewal_mttf(&trace, rate, freq).expect("exact").as_secs();

    let mut rows = Vec::new();
    for &trials in &[1_000u64, 10_000, 100_000, 1_000_000] {
        let mc = MonteCarlo::new(MonteCarloConfig { trials, ..Default::default() });
        let est = mc.component_mttf(&trace, rate, freq).expect("mc");
        rows.push(vec![
            trials.to_string(),
            format!("{:.6e}", est.mttf.as_secs()),
            pct(relative_error(est.mttf.as_secs(), exact)),
            pct(est.relative_ci95()),
            format!("{:.2}", est.mean_events_per_trial),
        ]);
    }
    println!("Ablation: Monte Carlo convergence (exact MTTF = {exact:.6e} s)\n");
    print!(
        "{}",
        render_table(&["trials", "MTTF (s)", "error vs exact", "95% CI", "events/trial"], &rows)
    );
    println!("\nthe paper's 1e6 trials resolve MTTF to ~0.2%; 2e5 (this repo's");
    println!("default) to ~0.4% — both far below the discrepancies under study.");
}
