//! Chaos campaign driver: runs seeded fault-injection campaigns across the
//! whole estimator stack and asserts the detect-or-degrade invariant —
//! zero campaigns may produce a silently wrong (`clean`-tagged but
//! deviating) result. Exits nonzero if any campaign misses, so CI can gate
//! on it.
//!
//! Usage:
//!   cargo run --release -p serr-bench --bin chaos_campaign -- \
//!     [--campaigns N] [--seed S] [--trials N] [--threads N]
//!
//! The same seed replays the identical campaign sequence and outcome tags
//! at any thread count.

use serr_bench::render_table;
use serr_core::prelude::{run_chaos, ChaosConfig, FaultKind, Provenance};

/// The value following `name` in the argument list, if present.
fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn parsed<T: std::str::FromStr>(name: &str) -> Option<T> {
    arg_value(name)
        .map(|v| v.parse().unwrap_or_else(|_| panic!("{name}: `{v}` is not a valid value")))
}

fn main() {
    let mut cfg = ChaosConfig::default();
    if let Some(n) = parsed::<usize>("--campaigns") {
        cfg.campaigns = n;
    }
    if let Some(s) = parsed::<u64>("--seed") {
        cfg.seed = s;
    }
    if let Some(t) = parsed::<u64>("--trials") {
        cfg.trials = t;
    }
    if let Some(t) = parsed::<usize>("--threads") {
        cfg.threads = t;
    }

    println!(
        "chaos: {} campaigns, master seed {:#018x}, {} trials, {} kinds\n",
        cfg.campaigns,
        cfg.seed,
        cfg.trials,
        cfg.kinds.len()
    );
    let report = run_chaos(&cfg).expect("chaos harness infrastructure runs");

    // Outcome-tag counts per injector kind.
    let rows: Vec<Vec<String>> = FaultKind::ALL
        .iter()
        .filter(|k| cfg.kinds.contains(k))
        .map(|&kind| {
            let mut row = vec![kind.label().to_owned()];
            for tag in Provenance::ALL {
                let n =
                    report.outcomes.iter().filter(|o| o.kind == kind && o.outcome == tag).count();
                row.push(n.to_string());
            }
            let misses = report.outcomes.iter().filter(|o| o.kind == kind && o.miss).count();
            row.push(misses.to_string());
            row
        })
        .collect();
    print!(
        "{}",
        render_table(&["injector", "clean", "retried", "degraded", "suspect", "MISS"], &rows)
    );

    println!(
        "\ngolden MTTF {:.4e} s (±{:.2}% at 95%)",
        report.golden_mttf_seconds,
        report.golden_rel_ci95 * 100.0
    );
    for o in report.outcomes.iter().filter(|o| o.miss) {
        println!("MISS: campaign {} ({}, seed {:#018x}): {}", o.campaign, o.kind, o.seed, o.detail);
    }
    if report.is_sound() {
        println!(
            "detect-or-degrade invariant: PASS ({} campaigns, 0 misses)",
            report.outcomes.len()
        );
    } else {
        println!(
            "detect-or-degrade invariant: FAIL ({} of {} campaigns silently wrong)",
            report.misses(),
            report.outcomes.len()
        );
        std::process::exit(1);
    }
}
