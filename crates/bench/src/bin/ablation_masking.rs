//! Ablation: sensitivity to the paper's conservative masking assumption.
//!
//! The paper assumes every raw error striking a busy unit causes failure;
//! in reality logic masking and value-level tolerance absorb a further
//! fraction. This sweep derates the busy-cycle vulnerability uniformly and
//! asks whether the paper's conclusions (where AVF+SOFR breaks) survive.

use std::sync::Arc;

use serr_analytic::renewal::renewal_mttf;
use serr_bench::{config_from_args, pct, render_table};
use serr_core::avf::avf_step_mttf;
use serr_trace::{ScaledTrace, VulnerabilityTrace};
use serr_types::{relative_error, RawErrorRate};
use serr_workload::synthesized;

fn main() {
    let cfg = config_from_args();
    let freq = cfg.frequency;
    let day: Arc<dyn VulnerabilityTrace> = Arc::new(synthesized::day(freq));

    let mut rows = Vec::new();
    for &survive in &[1.0, 0.6, 0.3, 0.1] {
        let trace = ScaledTrace::new(day.clone(), survive).expect("factor in range");
        for &n_s in &[1e9, 1e11, 1e12] {
            let rate = RawErrorRate::baseline_per_bit().scale(n_s);
            let avf = avf_step_mttf(&trace, rate).expect("avf");
            let truth = renewal_mttf(&trace, rate, freq).expect("renewal");
            rows.push(vec![
                format!("{:.0}%", survive * 100.0),
                format!("{n_s:.0e}"),
                format!("{:.3}", trace.avf()),
                pct(relative_error(avf.as_secs(), truth.as_secs())),
            ]);
        }
    }
    println!(
        "Ablation: conservative-masking sensitivity, day workload\n\
         (busy-cycle failure probability derated; exact renewal reference)\n"
    );
    print!("{}", render_table(&["busy fails", "N*S", "AVF", "AVF-step error"], &rows));
    println!("\nextra masking rescales the effective error rate (shifting the");
    println!("breakdown threshold right by 1/p) but does not repair the AVF");
    println!("step: the discrepancy at matched lambda*AVF*L is unchanged.");
}
