//! Regenerates Figure 6(a): SOFR-step error vs Monte Carlo for clusters of
//! processors running three representative SPEC benchmarks.

use serr_bench::{
    config_from_args, pct, render_table, sci, sweep_options_from_args, unpack_report,
};
use serr_core::experiments::{fig6a_sweep, REPRESENTATIVE_BENCHMARKS};

fn main() {
    let cfg = if std::env::args().any(|a| a == "--paper") {
        serr_core::experiments::ExperimentConfig::paper_scale()
    } else {
        config_from_args()
    };
    let cs = [2u64, 8, 5_000, 50_000, 500_000];
    let n_s = [1e8, 1e9, 2e12, 5e12];
    let rows = unpack_report(
        "fig6a",
        fig6a_sweep(&REPRESENTATIVE_BENCHMARKS, &cs, &n_s, &cfg, &sweep_options_from_args())
            .expect("pipeline runs"),
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.c.to_string(),
                sci(r.n_times_s),
                sci(r.mttf_sofr_years),
                sci(r.mttf_mc_years),
                pct(r.error),
                pct(r.softarch_error),
            ]
        })
        .collect();
    println!(
        "Figure 6(a). Error in MTTF from the SOFR step relative to Monte Carlo,\n\
         SPEC benchmarks (trials = {}, sim = {} instructions).\n",
        cfg.mc.trials, cfg.sim_instructions
    );
    print!(
        "{}",
        render_table(
            &[
                "benchmark",
                "C",
                "N*S",
                "MTTF SOFR (yr)",
                "MTTF MC (yr)",
                "SOFR err",
                "SoftArch err"
            ],
            &table
        )
    );
    println!("\npaper: accurate for C in {{2, 8}}; significant errors only for");
    println!("C >= 5000 combined with very large N*S (>= ~2e12).");
}
