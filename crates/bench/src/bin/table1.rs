//! Prints Table 1: the base POWER4-like processor configuration.

use serr_bench::render_table;
use serr_sim::SimConfig;

fn main() {
    let c = SimConfig::power4();
    let rows: Vec<Vec<String>> = vec![
        vec!["Processor frequency".into(), format!("{}", c.frequency)],
        vec!["Fetch/finish rate".into(), format!("{} per cycle", c.fetch_width)],
        vec![
            "Retirement rate".into(),
            format!("1 dispatch-group (={}, max) per cycle", c.dispatch_width),
        ],
        vec![
            "Functional units".into(),
            format!(
                "{} integer, {} FP, {} load-store, {} branch",
                c.int_units, c.fp_units, c.ls_units, c.branch_units
            ),
        ],
        vec![
            "Integer FU latencies".into(),
            format!(
                "{}/{}/{} add/multiply/divide",
                c.int_alu_latency, c.int_mul_latency, c.int_div_latency
            ),
        ],
        vec![
            "FP FU latencies".into(),
            format!("{} default, {} divide (pipelined)", c.fp_latency, c.fp_div_latency),
        ],
        vec!["Reorder buffer size".into(), format!("{} entries", c.rob_size)],
        vec![
            "Register file size".into(),
            format!(
                "{} entries ({} integer, {} FP, and various control)",
                c.regfile_entries, c.int_phys_regs, c.fp_phys_regs
            ),
        ],
        vec!["Memory queue size".into(), format!("{} entries", c.mem_queue_size)],
        vec!["iTLB".into(), format!("{} entries", c.tlb_entries)],
        vec!["dTLB".into(), format!("{} entries", c.tlb_entries)],
        vec![
            "L1 Dcache".into(),
            format!("{}KB, {}-way, {}-byte line", c.l1d.0 / 1024, c.l1d.1, c.line_bytes),
        ],
        vec![
            "L1 Icache".into(),
            format!("{}KB, {}-way, {}-byte line", c.l1i.0 / 1024, c.l1i.1, c.line_bytes),
        ],
        vec![
            "L2 (Unified)".into(),
            format!("{}MB, {}-way, {}-byte line", c.l2.0 / (1024 * 1024), c.l2.1, c.line_bytes),
        ],
        vec!["L1 Latency".into(), format!("{} cycles", c.l1_latency)],
        vec!["L2 Latency".into(), format!("{} cycles", c.l2_latency)],
        vec!["Main memory Latency".into(), format!("{} cycles", c.mem_latency)],
    ];
    println!("Table 1. Base POWER4-like processor configuration.\n");
    print!("{}", render_table(&["parameter", "value"], &rows));
}
