//! Ablation: how the trial start-phase convention changes the SOFR
//! discrepancy. The paper starts every Monte-Carlo trial at the beginning
//! of the workload loop; for a long-running cluster the physically neutral
//! choice is a uniformly random ("stationary") phase, and desynchronizing
//! the processors' phases is a third option. All three are shown at the
//! paper's day-workload checkpoint (N*S = 1e8).

use std::sync::Arc;

use serr_analytic::renewal::renewal_mttf;
use serr_bench::{config_from_args, pct, render_table};
use serr_core::sofr::sofr_mttf_identical;
use serr_mc::system::SystemModel;
use serr_mc::MonteCarlo;
use serr_trace::{ShiftedTrace, VulnerabilityTrace};
use serr_types::{relative_error, RawErrorRate};
use serr_workload::synthesized;

fn main() {
    let cfg = config_from_args();
    let freq = cfg.frequency;
    let day = Arc::new(synthesized::day(freq));
    let period = day.period_cycles();
    let rate = RawErrorRate::baseline_per_bit().scale(1e8);
    let component = renewal_mttf(&day, rate, freq).expect("component MTTF");
    let mc = MonteCarlo::new(cfg.mc);

    let mut rows = Vec::new();
    for &c in &[5_000u64, 50_000] {
        let sofr = sofr_mttf_identical(component, c).expect("sofr");
        let system_rate = rate.scale(c as f64);

        // Convention 1: all processors aligned, trials start at busy onset.
        let aligned = renewal_mttf(&day, system_rate, freq).expect("aligned");

        // Convention 2: aligned processors, stationary (random) start phase:
        // average the renewal MTTF over shifted views of the trace.
        let shifts = 256u64;
        let stationary = (0..shifts)
            .map(|i| {
                let t = ShiftedTrace::new(day.clone(), i * (period / shifts));
                renewal_mttf(&t, system_rate, freq).expect("shifted").as_secs()
            })
            .sum::<f64>()
            / shifts as f64;

        // Convention 3: processors desynchronized (random per-replica
        // phases), trials from phase 0; 64 replicas groups stand in for C.
        let groups = 64u64;
        let mut builder = SystemModel::builder(freq);
        let mut prng = 0x9E37_79B9u64;
        let offsets: Vec<u64> = (0..groups)
            .map(|_| {
                prng = prng.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
                prng % period
            })
            .collect();
        builder
            .add_with_offsets("cpu", rate.scale(c as f64 / groups as f64), day.clone(), &offsets)
            .expect("offsets");
        let desync_model = builder.build().expect("model");
        let desync = mc.system_mttf(&desync_model).expect("mc").mttf;

        rows.push(vec![
            c.to_string(),
            format!("{:.3}h", sofr.as_secs() / 3600.0),
            format!(
                "{:.3}h / {}",
                aligned.as_secs() / 3600.0,
                pct(relative_error(sofr.as_secs(), aligned.as_secs()))
            ),
            format!(
                "{:.3}h / {}",
                stationary / 3600.0,
                pct(relative_error(sofr.as_secs(), stationary))
            ),
            format!(
                "{:.3}h / {}",
                desync.as_secs() / 3600.0,
                pct(relative_error(sofr.as_secs(), desync.as_secs()))
            ),
        ]);
    }
    println!(
        "Ablation: start-phase convention, day workload, N*S = 1e8\n\
         (cells: true MTTF / SOFR error under that convention)\n"
    );
    print!(
        "{}",
        render_table(
            &["C", "SOFR", "aligned busy-start", "aligned stationary", "desynchronized"],
            &rows
        )
    );
    println!("\ndesynchronizing phases washes the SOFR discrepancy out; alignment");
    println!("maximizes it — the paper's numbers sit between the conventions.");
}
