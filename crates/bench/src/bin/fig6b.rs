//! Regenerates Figure 6(b): SOFR-step error vs Monte Carlo for clusters
//! running the synthesized day/week/combined workloads.

use serr_bench::{
    config_from_args, pct, render_table, sci, sweep_options_from_args, unpack_report,
};
use serr_core::experiments::fig6b_sweep;
use serr_core::prelude::Workload;

fn main() {
    let cfg = config_from_args();
    let cs = [2u64, 8, 5_000, 50_000, 500_000];
    let n_s = [1e7, 1e8, 1e9];
    let rows = unpack_report(
        "fig6b",
        fig6b_sweep(&Workload::synthesized(), &cs, &n_s, &cfg, &sweep_options_from_args())
            .expect("pipeline runs"),
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                r.c.to_string(),
                sci(r.n_times_s),
                sci(r.mttf_sofr_years),
                sci(r.mttf_mc_years),
                pct(r.error),
                pct(r.softarch_error),
            ]
        })
        .collect();
    println!(
        "Figure 6(b). Error in MTTF from the SOFR step relative to Monte Carlo,\n\
         synthesized workloads (trials = {}).\n",
        cfg.mc.trials
    );
    print!(
        "{}",
        render_table(
            &["workload", "C", "N*S", "MTTF SOFR (yr)", "MTTF MC (yr)", "SOFR err", "SoftArch err"],
            &table
        )
    );
    println!("\npaper: day at (N*S=1e8, C=5000) ~11%, (1e8, 50000) ~50%; week larger;");
    println!("this reproduction's start-at-busy-phase convention steepens the same");
    println!("crossover — see EXPERIMENTS.md and `ablation_phase`.");
}
