//! Regenerates Figure 4: SOFR-step error for a system of N components with
//! the near-exponential time-to-failure density f(x) = 2/sqrt(pi) e^{-x^2}.

use serr_analytic::fig::fig4_series;
use serr_bench::{pct, render_table};

fn main() {
    let rows: Vec<Vec<String>> = fig4_series(32)
        .expect("quadrature converges")
        .into_iter()
        .map(|p| {
            vec![
                p.n.to_string(),
                format!("{:.6}", p.mttf_true),
                format!("{:.6}", p.mttf_sofr),
                pct(p.relative_error),
            ]
        })
        .collect();
    println!(
        "Figure 4. Relative error introduced by the SOFR step for the\n\
         synthesized near-exponential example (N components, E(X) = 1/sqrt(pi)).\n"
    );
    print!("{}", render_table(&["N", "MTTF true", "MTTF SOFR", "rel err"], &rows));
}
