//! Regenerates Figure 5: AVF-step error vs Monte Carlo for the synthesized
//! workloads at representative N*S values (C = 1).

use serr_bench::{
    config_from_args, pct, render_table, sci, sweep_options_from_args, unpack_report,
};
use serr_core::experiments::fig5_sweep;
use serr_core::prelude::Workload;

fn main() {
    let cfg = config_from_args();
    let n_s: Vec<f64> = vec![1e7, 1e8, 1e9, 1e10, 1e11, 1e12, 5e12];
    let rows = unpack_report(
        "fig5",
        fig5_sweep(&Workload::synthesized(), &n_s, &cfg, &sweep_options_from_args())
            .expect("pipeline runs"),
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.workload.clone(),
                sci(r.n_times_s),
                format!("{:.3}", r.avf),
                sci(r.mttf_avf_years),
                sci(r.mttf_mc_years),
                pct(r.error),
                pct(r.softarch_error),
            ]
        })
        .collect();
    println!(
        "Figure 5. Error in MTTF from the AVF step relative to Monte Carlo\n\
         for the synthesized workloads (trials = {}).\n",
        cfg.mc.trials
    );
    print!(
        "{}",
        render_table(
            &["workload", "N*S", "AVF", "MTTF AVF (yr)", "MTTF MC (yr)", "AVF err", "SoftArch err"],
            &table
        )
    );
    println!("\npaper: significant AVF-step errors (up to ~90%) once N*S >= 1e9;");
    println!("SoftArch within ~1% everywhere.");
}
