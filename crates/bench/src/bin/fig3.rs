//! Regenerates Figure 3: analytic AVF-step error for a 100 MB cache
//! running an L-day loop (busy the first half), for λ scalings 1x/3x/5x.

use serr_analytic::fig::fig3_series;
use serr_bench::{pct, render_table, sci};

fn main() {
    let rows: Vec<Vec<String>> = fig3_series(16)
        .into_iter()
        .map(|p| {
            vec![
                format!("{:.0}", p.l_days),
                format!("{:.0}x", p.scale),
                sci(p.lambda_per_year),
                format!("{:.4}", p.mttf_true_years),
                format!("{:.4}", p.mttf_avf_years),
                pct(p.relative_error),
            ]
        })
        .collect();
    println!(
        "Figure 3. Relative error in the AVF step for a 100MB cache,\n\
         loop of L days busy for L/2 (lambda scalings 1x/3x/5x of 0.001 FIT/bit).\n"
    );
    print!(
        "{}",
        render_table(
            &["L (days)", "scale", "lambda/yr", "MTTF true (yr)", "MTTF AVF (yr)", "rel err"],
            &rows
        )
    );
}
