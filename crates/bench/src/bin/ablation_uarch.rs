//! Ablation: microarchitectural modeling choices vs the masking traces.
//!
//! The paper takes the machine model as given; this sweep asks how much the
//! four component AVFs (and hence every downstream MTTF) move when the
//! front-end predictor, memory-level parallelism, or prefetching model
//! changes — i.e., how sensitive the reliability conclusions are to
//! simulator fidelity.

use serr_bench::render_table;
use serr_sim::predictor::BranchPredictorKind;
use serr_sim::{SimConfig, Simulator};
use serr_trace::VulnerabilityTrace;
use serr_workload::{BenchmarkProfile, TraceGenerator};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let n = if quick { 60_000 } else { 400_000 };
    let variants: [(&str, SimConfig); 5] = [
        ("baseline (annotated)", SimConfig::power4()),
        (
            "bimodal 4k",
            SimConfig {
                branch_predictor: BranchPredictorKind::Bimodal { entries: 4096 },
                ..SimConfig::power4()
            },
        ),
        (
            "gshare 4k/8",
            SimConfig {
                branch_predictor: BranchPredictorKind::Gshare { entries: 4096, history_bits: 8 },
                ..SimConfig::power4()
            },
        ),
        ("mshr=1", SimConfig { mshrs: 1, ..SimConfig::power4() }),
        ("next-line prefetch", SimConfig { l1d_next_line_prefetch: true, ..SimConfig::power4() }),
    ];

    for bench in ["gzip", "mcf", "swim"] {
        let profile = BenchmarkProfile::by_name(bench).expect("known benchmark");
        let mut rows = Vec::new();
        for (label, cfg) in &variants {
            let out = Simulator::new(cfg.clone())
                .run(TraceGenerator::new(profile.clone(), 42), n)
                .expect("simulation runs");
            let t = &out.traces;
            rows.push(vec![
                (*label).to_owned(),
                format!("{:.3}", out.stats.ipc()),
                format!("{:.1}%", out.stats.l1d_miss_rate * 100.0),
                format!("{:.4}", t.int_unit.avf()),
                format!("{:.4}", t.fp_unit.avf()),
                format!("{:.4}", t.decode.avf()),
                format!("{:.4}", t.regfile.avf()),
            ]);
        }
        println!("\n=== {bench} ({n} instructions) ===");
        print!(
            "{}",
            render_table(
                &["variant", "IPC", "L1D miss", "AVF int", "AVF fp", "AVF dec", "AVF rf"],
                &rows
            )
        );
    }
    println!("\ncomponent AVFs move with modeling fidelity roughly in proportion");
    println!("to IPC: reliability projections inherit the timing model's error.");
}
