//! Shared plumbing for the experiment binaries and Criterion benches: a
//! plain-text table printer and a `--quick`/`--full` argument convention.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper:
//!
//! | binary    | artifact | contents |
//! |-----------|----------|----------|
//! | `table1`  | Table 1  | the base POWER4-like machine configuration |
//! | `table2`  | Table 2  | the explored design space |
//! | `fig3`    | Figure 3 | analytic AVF-step error, 100 MB cache |
//! | `fig4`    | Figure 4 | analytic SOFR-step error, min-of-N system |
//! | `sec5_1`  | §5.1     | AVF & SOFR vs Monte Carlo, uniprocessor + SPEC |
//! | `fig5`    | Figure 5 | AVF-step error, synthesized workloads |
//! | `fig6a`   | Figure 6a| SOFR-step error, SPEC clusters |
//! | `fig6b`   | Figure 6b| SOFR-step error, synthesized-workload clusters |
//! | `sec5_4`  | §5.4     | SoftArch vs Monte Carlo across the space |
//! | `ablation_phase`  | — | start-phase convention sensitivity |
//! | `ablation_trials` | — | Monte Carlo convergence |

#![warn(missing_docs)]

use serr_core::checkpoint::{SweepOptions, SweepReport};
use serr_core::experiments::ExperimentConfig;
use serr_obs::{Event, Level, Obs};

/// Renders rows as an aligned plain-text table.
///
/// ```
/// use serr_bench::render_table;
/// let out = render_table(
///     &["name", "value"],
///     &[vec!["a".into(), "1".into()], vec!["bb".into(), "22".into()]],
/// );
/// assert!(out.contains("name"));
/// assert!(out.lines().count() >= 4);
/// ```
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(c.len())))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&line(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&line(row));
        out.push('\n');
    }
    out
}

/// Formats a fraction as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Formats a float in compact scientific notation.
#[must_use]
pub fn sci(x: f64) -> String {
    format!("{x:.3e}")
}

/// Resolves the experiment configuration from command-line arguments:
/// `--quick` for smoke runs, anything else (or nothing) for the full
/// reproduction settings recorded in EXPERIMENTS.md.
#[must_use]
pub fn config_from_args() -> ExperimentConfig {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::full()
    }
}

/// Resolves checkpoint behavior from command-line arguments: the figure
/// binaries resume from their journal by default (a killed multi-hour run
/// picks up where it stopped), and `--fresh` discards the journal first.
#[must_use]
pub fn sweep_options_from_args() -> SweepOptions {
    if std::env::args().any(|a| a == "--fresh") {
        SweepOptions::fresh()
    } else {
        SweepOptions::resume()
    }
}

/// Unpacks a sweep report for a figure binary: bookkeeping (resume/compute
/// counts) and any failed points become typed events on an info-level
/// stderr observer — keeping stdout a clean table — and the completed rows
/// come back for rendering.
pub fn unpack_report<R>(name: &str, report: SweepReport<R>) -> Vec<R> {
    let obs = Obs::stderr(Level::Info);
    obs.emit(
        Event::new("sweep.summary", 0)
            .with("sweep", name.to_owned())
            .with("rows", report.rows.len() as u64)
            .with("resumed", report.resumed as u64)
            .with("computed", report.computed as u64)
            .with("failed", report.failures.len() as u64),
    );
    for f in &report.failures {
        obs.emit(
            Event::warn("sweep.point_failed", f.index as u64)
                .with("sweep", name.to_owned())
                .with("point", f.index as u64)
                .with("error", f.error.to_string()),
        );
    }
    report.rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["a", "long-header"],
            &[vec!["xxxx".into(), "1".into()], vec!["y".into(), "2".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows end aligned on the last column.
        assert!(lines[0].ends_with("long-header"));
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].ends_with('2'));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.1234), "12.34%");
        assert_eq!(sci(12345.678), "1.235e4");
    }
}
