//! Criterion benchmarks for the figure/table regeneration paths — one per
//! paper artifact, at reduced parameters so the benches stay snappy.

use criterion::{criterion_group, criterion_main, Criterion};
use serr_analytic::fig::{fig3_series, fig4_series};
use serr_core::experiments::{fig5, fig6b, sec5_1, sec5_4, ExperimentConfig};
use serr_core::prelude::Workload;
use serr_mc::MonteCarloConfig;

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig {
        sim_instructions: 20_000,
        seed: 42,
        mc: MonteCarloConfig { trials: 5_000, threads: 1, ..Default::default() },
        ..ExperimentConfig::quick()
    }
}

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig3_analytic", |b| b.iter(|| fig3_series(16)));
    g.bench_function("fig4_numeric", |b| b.iter(|| fig4_series(32).unwrap()));

    let cfg = tiny_cfg();
    // Warm the benchmark-simulation cache so per-iteration cost reflects the
    // estimation path the figures actually sweep.
    sec5_1(&["gzip"], &cfg).unwrap();
    g.bench_function("sec5_1_one_benchmark", |b| b.iter(|| sec5_1(&["gzip"], &cfg).unwrap()));
    g.bench_function("fig5_day_three_points", |b| {
        b.iter(|| fig5(&[Workload::Day], &[1e7, 1e9, 1e12], &cfg).unwrap())
    });
    g.bench_function("fig6b_day_two_points", |b| {
        b.iter(|| fig6b(&[Workload::Day], &[2, 5_000], &[1e8], &cfg).unwrap())
    });
    g.bench_function("sec5_4_week_point", |b| {
        b.iter(|| sec5_4(&[Workload::Week], &[5_000], &[1e8], &cfg).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
