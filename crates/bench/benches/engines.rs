//! Criterion benchmarks for the MTTF estimation engines: Monte Carlo
//! trials, renewal closed forms, and SoftArch block algebra.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use serr_analytic::renewal::renewal_mttf_cycles;
use serr_mc::{MonteCarlo, MonteCarloConfig};
use serr_softarch::SoftArch;
use serr_trace::IntervalTrace;
use serr_types::{Frequency, RawErrorRate};

fn bench_monte_carlo(c: &mut Criterion) {
    let mut g = c.benchmark_group("monte_carlo");
    let trace = IntervalTrace::busy_idle(1_000_000, 1_000_000).unwrap();
    let freq = Frequency::base();
    for &trials in &[1_000u64, 10_000] {
        g.bench_with_input(BenchmarkId::new("day_like", trials), &trials, |b, &trials| {
            let mc = MonteCarlo::new(MonteCarloConfig { trials, threads: 1, ..Default::default() });
            let rate = RawErrorRate::per_year(1.0e4);
            b.iter(|| mc.component_mttf(&trace, rate, freq).unwrap());
        });
    }
    // A fine-grained trace stresses the per-event phase lookup.
    let levels: Vec<f64> = (0..10_000).map(|i| f64::from(u32::from(i % 7 == 0))).collect();
    let fine = IntervalTrace::from_levels(&levels).unwrap();
    g.bench_function("fine_grained_10k_segments", |b| {
        let mc =
            MonteCarlo::new(MonteCarloConfig { trials: 2_000, threads: 1, ..Default::default() });
        let rate = RawErrorRate::per_year(100.0);
        b.iter(|| mc.component_mttf(&fine, rate, freq).unwrap());
    });
    g.finish();
}

fn bench_naive_vs_fast(c: &mut Criterion) {
    // The paper's "impractically slow" point: per-trial cost of the naive
    // cycle-stepping reference vs the event-driven sampler at the same
    // accuracy, on the same trace.
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    let mut g = c.benchmark_group("naive_vs_fast");
    let trace = IntervalTrace::busy_idle(500, 500).unwrap();
    let lambda = 1e-4; // mean TTF ~ 1.3e4 cycles: naive stays feasible
    g.bench_function("naive_trial", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            serr_mc::naive::sample_time_to_failure_naive(&trace, lambda, 100_000_000, &mut rng, 0)
                .unwrap()
        });
    });
    g.bench_function("fast_trial", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            serr_mc::sampler::sample_time_to_failure(&trace, lambda, 1_000_000, &mut rng, 0.0)
                .unwrap()
        });
    });
    g.bench_function("inversion_trial", |b| {
        let compiled = serr_trace::CompiledTrace::compile(&trace).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            serr_mc::inversion::sample_time_to_failure_inversion(&compiled, lambda, &mut rng, 0.0)
        });
    });
    g.finish();
}

fn bench_renewal(c: &mut Criterion) {
    let mut g = c.benchmark_group("renewal");
    for &segments in &[10usize, 1_000, 100_000] {
        let levels: Vec<f64> =
            (0..segments).flat_map(|i| [f64::from(u32::from(i % 2 == 0)), 0.5]).collect();
        let trace = IntervalTrace::from_levels(&levels).unwrap();
        g.bench_with_input(BenchmarkId::new("segments", segments), &trace, |b, t| {
            b.iter(|| renewal_mttf_cycles(t, 1e-6));
        });
    }
    g.finish();
}

fn bench_softarch(c: &mut Criterion) {
    let mut g = c.benchmark_group("softarch");
    let trace = IntervalTrace::busy_idle(700_000, 300_000).unwrap();
    let sa = SoftArch::new(Frequency::base());
    g.bench_function("component", |b| {
        b.iter(|| sa.component_mttf(&trace, RawErrorRate::per_year(10.0)).unwrap());
    });
    g.bench_function("combined_tiled_40M", |b| {
        // The closed-form tiling: two benchmarks, 12 simulated hours each.
        let bench_a = IntervalTrace::busy_idle(700_000, 300_000).unwrap();
        let bench_b = IntervalTrace::busy_idle(200_000, 800_000).unwrap();
        b.iter(|| {
            sa.tiled_mttf(
                &[(&bench_a, 43_200_000), (&bench_b, 43_200_000)],
                RawErrorRate::per_year(10.0),
            )
            .unwrap()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_monte_carlo, bench_naive_vs_fast, bench_renewal, bench_softarch);
criterion_main!(benches);
