//! Criterion benchmarks for the timing-simulator substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use serr_sim::{SimConfig, Simulator};
use serr_workload::{BenchmarkProfile, TraceGenerator};

fn bench_simulator(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.sample_size(10);
    for name in ["gzip", "mcf", "swim"] {
        let n = 50_000u64;
        g.throughput(Throughput::Elements(n));
        g.bench_with_input(BenchmarkId::new("instructions", name), &name, |b, &name| {
            let profile = BenchmarkProfile::by_name(name).unwrap();
            let sim = Simulator::new(SimConfig::power4());
            b.iter(|| sim.run(TraceGenerator::new(profile.clone(), 42), n).unwrap());
        });
    }
    g.finish();
}

fn bench_generator(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generator");
    let n = 100_000usize;
    g.throughput(Throughput::Elements(n as u64));
    g.bench_function("gcc_100k", |b| {
        let profile = BenchmarkProfile::by_name("gcc").unwrap();
        b.iter(|| TraceGenerator::new(profile.clone(), 7).take(n).count());
    });
    g.finish();
}

criterion_group!(benches, bench_simulator, bench_generator);
criterion_main!(benches);
