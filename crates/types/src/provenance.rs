//! Provenance tags for reliability estimates.
//!
//! Every number the guarded estimation path emits carries a [`Provenance`]
//! tag describing how much of the normal pipeline actually produced it. The
//! tags form a severity lattice — `Clean < Retried < Degraded < Suspect` —
//! and combine with [`Provenance::worse`], so a result that was both retried
//! and deadline-truncated ends up `Degraded`, not `Retried`.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How an estimate was produced, ordered from best to worst.
///
/// The derived `Ord` is the severity order used by [`Provenance::worse`]:
/// `Clean < Retried < Degraded < Suspect`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum Provenance {
    /// The primary estimator ran once and passed every consistency check.
    #[default]
    Clean,
    /// The primary estimator failed at least once but a retry (fresh seed,
    /// recompiled trace) produced a value that passed every check.
    Retried,
    /// The primary estimator never produced an acceptable value; the result
    /// is a labeled fallback (analytic renewal estimate, truncated partial
    /// estimate, or a journal-less sweep).
    Degraded,
    /// Independent references disagree beyond tolerance, so no single value
    /// can be trusted; the reported number is best-effort only.
    Suspect,
}

impl Provenance {
    /// Every tag, in severity order. Handy for exhaustive reports.
    pub const ALL: [Provenance; 4] =
        [Provenance::Clean, Provenance::Retried, Provenance::Degraded, Provenance::Suspect];

    /// The lowercase label used in CLI output and JSONL rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Provenance::Clean => "clean",
            Provenance::Retried => "retried",
            Provenance::Degraded => "degraded",
            Provenance::Suspect => "suspect",
        }
    }

    /// Combines two tags, keeping the more severe one.
    #[must_use]
    pub fn worse(self, other: Provenance) -> Provenance {
        self.max(other)
    }

    /// True for the only tag that claims the full pipeline succeeded.
    #[must_use]
    pub fn is_clean(self) -> bool {
        self == Provenance::Clean
    }
}

impl fmt::Display for Provenance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_order_is_clean_retried_degraded_suspect() {
        let [a, b, c, d] = Provenance::ALL;
        assert!(a < b && b < c && c < d);
        assert_eq!(a, Provenance::Clean);
        assert_eq!(d, Provenance::Suspect);
    }

    #[test]
    fn worse_keeps_the_more_severe_tag() {
        assert_eq!(Provenance::Clean.worse(Provenance::Retried), Provenance::Retried);
        assert_eq!(Provenance::Suspect.worse(Provenance::Degraded), Provenance::Suspect);
        assert_eq!(Provenance::Degraded.worse(Provenance::Degraded), Provenance::Degraded);
    }

    #[test]
    fn labels_are_lowercase_and_display_matches() {
        for p in Provenance::ALL {
            assert_eq!(p.label(), p.to_string());
            assert!(p.label().chars().all(|c| c.is_ascii_lowercase()));
        }
        assert!(Provenance::Clean.is_clean());
        assert!(!Provenance::Retried.is_clean());
    }

    #[test]
    fn default_is_clean() {
        assert_eq!(Provenance::default(), Provenance::Clean);
    }
}
