//! Shared vocabulary for architecture-level soft error analysis.
//!
//! This crate defines the units and identities used by every other crate in
//! the workspace: time ([`Seconds`], [`Cycles`], [`Frequency`]), error rates
//! ([`FitRate`], [`RawErrorRate`], [`FailureRate`]), reliability metrics
//! ([`Mttf`]), and the hardware [`Component`] descriptions over which the
//! paper's design space (Table 2) is defined.
//!
//! # Conventions
//!
//! * The canonical internal time unit is the **second**; the canonical rate
//!   unit is **events per second**. Constructors and accessors are provided
//!   for years, hours, days, and FIT so call sites can speak the paper's
//!   language (e.g. `0.001 FIT/bit`, `10 errors/year`).
//! * `Cycles` are tied to a [`Frequency`] for conversion; the paper's base
//!   processor runs at 2.0 GHz.
//!
//! # Example
//!
//! ```
//! use serr_types::{FitRate, RawErrorRate, SECONDS_PER_YEAR};
//!
//! // The paper's baseline raw error rate: 0.001 FIT per bit ~ 1e-8 errors/year.
//! let per_bit = RawErrorRate::per_year(1.0e-8);
//! let cache_bits = 8.0 * 100.0 * 1024.0 * 1024.0; // 100 MB cache
//! let cache_rate = per_bit.scale(cache_bits);
//! assert!((cache_rate.events_per_year() - 8.388608).abs() < 1e-9);
//! assert!(cache_rate.per_second_value() * SECONDS_PER_YEAR - cache_rate.events_per_year() < 1e-12);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod component;
mod error;
mod provenance;
mod rate;
mod time;

pub use component::{Component, ComponentId, ComponentKind};
pub use error::SerrError;
pub use provenance::Provenance;
pub use rate::{FailureRate, FitRate, RawErrorRate};
pub use time::{Cycles, Frequency, Mttf, Seconds};

/// Seconds in one hour.
pub const SECONDS_PER_HOUR: f64 = 3600.0;
/// Seconds in one (24 hour) day.
pub const SECONDS_PER_DAY: f64 = 24.0 * SECONDS_PER_HOUR;
/// Hours in one (365 day) year, the convention used by FIT arithmetic.
pub const HOURS_PER_YEAR: f64 = 8760.0;
/// Seconds in one (365 day) year.
pub const SECONDS_PER_YEAR: f64 = HOURS_PER_YEAR * SECONDS_PER_HOUR;

/// The paper's baseline terrestrial raw error rate for one bit of on-chip
/// storage under ~2007 technology: `1e-8` errors/year (~0.001 FIT).
pub const BASELINE_RAW_RATE_PER_BIT_PER_YEAR: f64 = 1.0e-8;

/// The paper's base processor frequency (Table 1): 2.0 GHz.
pub const BASE_FREQUENCY_HZ: f64 = 2.0e9;

/// Relative error of an estimate against a reference value, as used
/// throughout the paper's figures: `|estimate - truth| / truth`.
///
/// # Panics
///
/// Panics if `truth` is zero or either argument is not finite.
#[must_use]
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(
        estimate.is_finite() && truth.is_finite(),
        "relative_error requires finite inputs, got estimate={estimate}, truth={truth}"
    );
    assert!(truth != 0.0, "relative_error reference value must be nonzero");
    (estimate - truth).abs() / truth.abs()
}

/// Signed relative error `(estimate - truth) / truth`; the paper notes that
/// the AVF step may either over- or under-estimate MTTF, so sign matters for
/// some reports.
///
/// # Panics
///
/// Panics if `truth` is zero or either argument is not finite.
#[must_use]
pub fn signed_relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(
        estimate.is_finite() && truth.is_finite(),
        "signed_relative_error requires finite inputs, got estimate={estimate}, truth={truth}"
    );
    assert!(truth != 0.0, "signed_relative_error reference value must be nonzero");
    (estimate - truth) / truth.abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relative_error_basic() {
        assert_eq!(relative_error(110.0, 100.0), 0.1);
        assert_eq!(relative_error(90.0, 100.0), 0.1);
        assert_eq!(relative_error(100.0, 100.0), 0.0);
    }

    #[test]
    fn signed_relative_error_keeps_sign() {
        assert_eq!(signed_relative_error(110.0, 100.0), 0.1);
        assert_eq!(signed_relative_error(90.0, 100.0), -0.1);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn relative_error_rejects_zero_truth() {
        let _ = relative_error(1.0, 0.0);
    }

    #[test]
    fn constants_are_consistent() {
        assert_eq!(SECONDS_PER_DAY, 86_400.0);
        assert_eq!(SECONDS_PER_YEAR, 31_536_000.0);
        // 0.001 FIT/bit and 1e-8 errors/year/bit agree to ~15%,
        // the approximation the paper itself makes.
        let fit = FitRate::new(0.001);
        let per_year = fit.to_raw_rate().events_per_year();
        assert!((per_year - BASELINE_RAW_RATE_PER_BIT_PER_YEAR).abs() / 1e-8 < 0.15);
    }
}
