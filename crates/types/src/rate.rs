//! Error and failure rates: FIT, raw soft error rates, and derated failure
//! rates.

use std::fmt;
use std::ops::{Add, Mul};

use serde::{Deserialize, Serialize};

use crate::{Mttf, SerrError, HOURS_PER_YEAR, SECONDS_PER_YEAR};

/// Failures In Time: the number of failures per one billion device-hours
/// (paper Section 2.1).
///
/// ```
/// use serr_types::FitRate;
/// let fit = FitRate::new(114.155); // ~1e-3 failures/year
/// assert!((fit.to_raw_rate().events_per_year() - 1e-3).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct FitRate(f64);

impl FitRate {
    /// Creates a FIT rate.
    ///
    /// # Panics
    ///
    /// Panics if `fit` is negative or not finite.
    #[must_use]
    pub fn new(fit: f64) -> Self {
        assert!(fit >= 0.0 && fit.is_finite(), "FIT rate must be non-negative, got {fit}");
        FitRate(fit)
    }

    /// Fallible variant of [`FitRate::new`] for boundary inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `fit` is NaN, infinite, or
    /// negative.
    pub fn try_new(fit: f64) -> Result<Self, SerrError> {
        SerrError::require_finite_non_negative("FIT rate", fit).map(FitRate)
    }

    /// The raw FIT value (failures per 10⁹ hours).
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Converts to a [`RawErrorRate`] using `FIT × 8760 / 1e9` errors/year.
    #[must_use]
    pub fn to_raw_rate(self) -> RawErrorRate {
        RawErrorRate::per_year(self.0 * HOURS_PER_YEAR / 1.0e9)
    }
}

impl fmt::Display for FitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6} FIT", self.0)
    }
}

/// The raw soft error rate λ of a component: the rate of raw error events
/// *before* any architectural masking, assumed exponentially distributed
/// (paper Section 3, assumption 1).
///
/// Internally stored per second. The paper usually quotes errors/year.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct RawErrorRate(f64);

impl RawErrorRate {
    /// A rate of zero events (a component that never sees raw errors).
    pub const ZERO: RawErrorRate = RawErrorRate(0.0);

    /// Creates a rate of `r` events per second.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or not finite.
    #[must_use]
    pub fn per_second(r: f64) -> Self {
        assert!(r >= 0.0 && r.is_finite(), "raw error rate must be non-negative, got {r}");
        RawErrorRate(r)
    }

    /// Fallible variant of [`RawErrorRate::per_second`] for boundary inputs
    /// (CLI arguments, config files): rejects NaN/∞/negative instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `r` is NaN, infinite, or
    /// negative.
    pub fn try_per_second(r: f64) -> Result<Self, SerrError> {
        SerrError::require_finite_non_negative("raw error rate", r).map(RawErrorRate)
    }

    /// Creates a rate of `r` events per (365-day) year, the paper's usual
    /// unit (e.g. `1e-8` errors/year per bit).
    #[must_use]
    pub fn per_year(r: f64) -> Self {
        RawErrorRate::per_second(r / SECONDS_PER_YEAR)
    }

    /// Fallible variant of [`RawErrorRate::per_year`].
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `r` is NaN, infinite, or
    /// negative.
    pub fn try_per_year(r: f64) -> Result<Self, SerrError> {
        SerrError::require_finite_non_negative("raw error rate", r)
            .map(|r| RawErrorRate(r / SECONDS_PER_YEAR))
    }

    /// The paper's baseline per-bit rate: `1e-8` errors/year (0.001 FIT).
    #[must_use]
    pub fn baseline_per_bit() -> Self {
        RawErrorRate::per_year(crate::BASELINE_RAW_RATE_PER_BIT_PER_YEAR)
    }

    /// Rate in events per second.
    #[must_use]
    pub fn per_second_value(self) -> f64 {
        self.0
    }

    /// Rate in events per year.
    #[must_use]
    pub fn events_per_year(self) -> f64 {
        self.0 * SECONDS_PER_YEAR
    }

    /// Scales the rate by a dimensionless factor — used for the paper's `N`
    /// (elements per component) and `S` (technology/altitude scaling) axes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    #[must_use]
    pub fn scale(self, factor: f64) -> Self {
        assert!(factor >= 0.0 && factor.is_finite(), "scale factor must be non-negative");
        RawErrorRate(self.0 * factor)
    }

    /// Fallible variant of [`RawErrorRate::scale`] — the `N` and `S` axes of
    /// the paper's sweeps come straight from the CLI, so they go through
    /// this.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `factor` is NaN, infinite, or
    /// negative, or if the scaled rate overflows to infinity.
    pub fn try_scale(self, factor: f64) -> Result<Self, SerrError> {
        SerrError::require_finite_non_negative("scale factor", factor)?;
        let scaled = self.0 * factor;
        SerrError::require_finite_non_negative("scaled raw error rate", scaled).map(RawErrorRate)
    }

    /// Converts to FIT.
    #[must_use]
    pub fn to_fit(self) -> FitRate {
        FitRate::new(self.events_per_year() * 1.0e9 / HOURS_PER_YEAR)
    }

    /// Whether this rate is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for RawErrorRate {
    type Output = RawErrorRate;
    fn add(self, rhs: RawErrorRate) -> RawErrorRate {
        RawErrorRate(self.0 + rhs.0)
    }
}

impl Mul<f64> for RawErrorRate {
    type Output = RawErrorRate;
    fn mul(self, rhs: f64) -> RawErrorRate {
        self.scale(rhs)
    }
}

impl fmt::Display for RawErrorRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} errors/year", self.events_per_year())
    }
}

/// A *derated* failure rate — the output of the AVF step
/// (`λ × AVF`) or the SOFR sum. Internally per second.
///
/// ```
/// use serr_types::{FailureRate, RawErrorRate};
/// let raw = RawErrorRate::per_year(10.0);
/// let derated = FailureRate::from_avf(raw, 0.5);
/// assert!((derated.to_mttf().as_years() - 0.2).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct FailureRate(f64);

impl FailureRate {
    /// A failure rate of zero (a component that never fails).
    pub const ZERO: FailureRate = FailureRate(0.0);

    /// Creates a failure rate of `r` failures per second.
    ///
    /// # Panics
    ///
    /// Panics if `r` is negative or not finite.
    #[must_use]
    pub fn per_second(r: f64) -> Self {
        assert!(r >= 0.0 && r.is_finite(), "failure rate must be non-negative, got {r}");
        FailureRate(r)
    }

    /// Creates a failure rate of `r` failures per year.
    #[must_use]
    pub fn per_year_rate(r: f64) -> Self {
        FailureRate::per_second(r / SECONDS_PER_YEAR)
    }

    /// The AVF step (paper Equation 1, rearranged): failure rate =
    /// raw rate × AVF.
    ///
    /// # Panics
    ///
    /// Panics if `avf` is outside `[0, 1]`.
    #[must_use]
    pub fn from_avf(raw: RawErrorRate, avf: f64) -> Self {
        assert!((0.0..=1.0).contains(&avf), "AVF must lie in [0,1], got {avf}");
        FailureRate(raw.per_second_value() * avf)
    }

    /// Fallible variant of [`FailureRate::from_avf`]: rejects NaN and
    /// out-of-range AVF with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `avf` is NaN or outside
    /// `[0, 1]`.
    pub fn try_from_avf(raw: RawErrorRate, avf: f64) -> Result<Self, SerrError> {
        if (0.0..=1.0).contains(&avf) {
            Ok(FailureRate(raw.per_second_value() * avf))
        } else {
            Err(SerrError::invalid_value("AVF (must lie in [0,1])", avf))
        }
    }

    /// Failures per second.
    #[must_use]
    pub fn per_second_value(self) -> f64 {
        self.0
    }

    /// Failures per year.
    #[must_use]
    pub fn events_per_year(self) -> f64 {
        self.0 * SECONDS_PER_YEAR
    }

    /// MTTF = 1 / failure rate (the reciprocal step of SOFR, Equation 3).
    ///
    /// # Panics
    ///
    /// Panics if the rate is zero.
    #[must_use]
    pub fn to_mttf(self) -> Mttf {
        assert!(self.0 > 0.0, "cannot take MTTF of a zero failure rate");
        Mttf::from_secs(1.0 / self.0)
    }

    /// Whether this rate is exactly zero.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for FailureRate {
    type Output = FailureRate;
    fn add(self, rhs: FailureRate) -> FailureRate {
        FailureRate(self.0 + rhs.0)
    }
}

impl std::iter::Sum for FailureRate {
    fn sum<I: Iterator<Item = FailureRate>>(iter: I) -> Self {
        iter.fold(FailureRate::ZERO, Add::add)
    }
}

impl fmt::Display for FailureRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3e} failures/year", self.events_per_year())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_and_raw_rate_roundtrip() {
        let r = RawErrorRate::per_year(2.5e-6);
        let back = r.to_fit().to_raw_rate();
        assert!((back.events_per_year() - 2.5e-6).abs() < 1e-18);
    }

    #[test]
    fn baseline_matches_paper() {
        let b = RawErrorRate::baseline_per_bit();
        assert!((b.events_per_year() - 1e-8).abs() < 1e-20);
        // ~0.001 FIT per the paper's equivalence
        assert!((b.to_fit().value() - 0.001).abs() < 2e-4);
    }

    #[test]
    fn scaling_by_n_and_s() {
        // 100MB cache at baseline: the paper quotes ~10 errors/year.
        let bits = 8.0 * 100.0 * 1024.0 * 1024.0;
        let cache = RawErrorRate::baseline_per_bit().scale(bits);
        assert!((cache.events_per_year() - 8.388608).abs() < 1e-9);
        let high_altitude = cache * 5.0;
        assert!((high_altitude.events_per_year() - 41.94304).abs() < 1e-9);
    }

    #[test]
    fn avf_step_derates() {
        let raw = RawErrorRate::per_year(4.0);
        let fr = FailureRate::from_avf(raw, 0.25);
        assert!((fr.events_per_year() - 1.0).abs() < 1e-12);
        assert!((fr.to_mttf().as_years() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "AVF must lie in [0,1]")]
    fn avf_out_of_range_panics() {
        let _ = FailureRate::from_avf(RawErrorRate::per_year(1.0), 1.5);
    }

    #[test]
    fn failure_rates_sum() {
        let rates = vec![
            FailureRate::per_year_rate(1.0),
            FailureRate::per_year_rate(2.0),
            FailureRate::per_year_rate(3.0),
        ];
        let total: FailureRate = rates.into_iter().sum();
        assert!((total.events_per_year() - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero failure rate")]
    fn zero_rate_has_no_mttf() {
        let _ = FailureRate::ZERO.to_mttf();
    }

    #[test]
    fn display_formats() {
        let r = RawErrorRate::per_year(1.0);
        assert_eq!(format!("{r}"), "1.000e0 errors/year");
    }

    #[test]
    fn try_constructors_reject_nan_inf_negative() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            assert!(FitRate::try_new(bad).is_err(), "FIT accepted {bad}");
            assert!(RawErrorRate::try_per_second(bad).is_err(), "per_second accepted {bad}");
            assert!(RawErrorRate::try_per_year(bad).is_err(), "per_year accepted {bad}");
            assert!(RawErrorRate::per_year(1.0).try_scale(bad).is_err(), "scale accepted {bad}");
        }
        for bad in [f64::NAN, f64::INFINITY, -0.5, 1.0 + 1e-9] {
            assert!(
                FailureRate::try_from_avf(RawErrorRate::per_year(1.0), bad).is_err(),
                "AVF accepted {bad}"
            );
        }
    }

    #[test]
    fn try_constructors_accept_valid_inputs() {
        let r = RawErrorRate::try_per_year(10.0).unwrap();
        assert_eq!(r, RawErrorRate::per_year(10.0));
        assert_eq!(r.try_scale(2.0).unwrap(), r.scale(2.0));
        let fr = FailureRate::try_from_avf(r, 0.5).unwrap();
        assert_eq!(fr, FailureRate::from_avf(r, 0.5));
        assert!(RawErrorRate::try_per_second(0.0).unwrap().is_zero());
    }

    #[test]
    fn try_scale_rejects_overflow_to_infinity() {
        let r = RawErrorRate::per_second(1e300);
        assert!(r.try_scale(1e300).is_err());
    }
}
