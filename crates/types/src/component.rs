//! Hardware components: the granularity at which architectural masking is
//! analyzed (paper Section 4.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::RawErrorRate;

/// Identifies a component within a system.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ComponentId(pub u32);

impl ComponentId {
    /// Creates a component id.
    #[must_use]
    pub const fn new(id: u32) -> Self {
        ComponentId(id)
    }

    /// The raw id.
    #[must_use]
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Display for ComponentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "component#{}", self.0)
    }
}

impl From<u32> for ComponentId {
    fn from(id: u32) -> Self {
        ComponentId(id)
    }
}

/// The kind of processor structure a component models.
///
/// The paper studies four microarchitectural components in detail (integer,
/// floating-point, and instruction-decode units, plus the register file) and
/// treats whole processors or caches as single components in the broad
/// design-space exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum ComponentKind {
    /// Integer functional unit.
    IntegerUnit,
    /// Floating-point functional unit.
    FloatingPointUnit,
    /// Instruction decode unit.
    DecodeUnit,
    /// Architectural register file (errors strike entries uniformly).
    RegisterFile,
    /// An on-chip cache treated as one component (e.g. Figure 3's 100 MB cache).
    Cache,
    /// A whole processor treated as one component (cluster experiments).
    Processor,
    /// Anything else.
    Other,
}

impl ComponentKind {
    /// A short lowercase label, used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ComponentKind::IntegerUnit => "int",
            ComponentKind::FloatingPointUnit => "fp",
            ComponentKind::DecodeUnit => "decode",
            ComponentKind::RegisterFile => "regfile",
            ComponentKind::Cache => "cache",
            ComponentKind::Processor => "processor",
            ComponentKind::Other => "other",
        }
    }
}

impl fmt::Display for ComponentKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A hardware component subject to raw soft errors.
///
/// Per the paper's masking-trace methodology, a component couples an identity
/// and kind with the raw error rate of all its elements combined
/// (`N × S × baseline` in the Table 2 design space).
///
/// ```
/// use serr_types::{Component, ComponentKind, RawErrorRate};
/// let c = Component::new(0, ComponentKind::Cache, RawErrorRate::per_year(10.0))
///     .with_name("L3 victim cache");
/// assert_eq!(c.name(), "L3 victim cache");
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Component {
    id: ComponentId,
    kind: ComponentKind,
    raw_rate: RawErrorRate,
    name: String,
}

impl Component {
    /// Creates a component with a default name derived from its kind and id.
    #[must_use]
    pub fn new(id: impl Into<ComponentId>, kind: ComponentKind, raw_rate: RawErrorRate) -> Self {
        let id = id.into();
        Component { id, kind, raw_rate, name: format!("{}-{}", kind.label(), id.index()) }
    }

    /// Builds a component whose rate is `elements × per_element × scale`, the
    /// N × S parameterization of the paper's Table 2.
    #[must_use]
    pub fn from_elements(
        id: impl Into<ComponentId>,
        kind: ComponentKind,
        elements: f64,
        per_element: RawErrorRate,
        scale: f64,
    ) -> Self {
        Component::new(id, kind, per_element.scale(elements).scale(scale))
    }

    /// Replaces the display name.
    #[must_use]
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The component id.
    #[must_use]
    pub fn id(&self) -> ComponentId {
        self.id
    }

    /// The component kind.
    #[must_use]
    pub fn kind(&self) -> ComponentKind {
        self.kind
    }

    /// The total raw soft error rate of the component.
    #[must_use]
    pub fn raw_rate(&self) -> RawErrorRate {
        self.raw_rate
    }

    /// The display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({}, {})", self.name, self.kind, self.raw_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn component_from_elements_matches_table2() {
        // N = 1e8 bits, S = 5: rate should be 5e8 × baseline.
        let c = Component::from_elements(
            7u32,
            ComponentKind::Processor,
            1.0e8,
            RawErrorRate::baseline_per_bit(),
            5.0,
        );
        assert!((c.raw_rate().events_per_year() - 5.0).abs() < 1e-9);
        assert_eq!(c.id(), ComponentId::new(7));
    }

    #[test]
    fn default_names_are_stable() {
        let c = Component::new(3u32, ComponentKind::DecodeUnit, RawErrorRate::ZERO);
        assert_eq!(c.name(), "decode-3");
        assert_eq!(format!("{}", c.id()), "component#3");
    }

    #[test]
    fn kind_labels_are_distinct() {
        use ComponentKind::*;
        let kinds =
            [IntegerUnit, FloatingPointUnit, DecodeUnit, RegisterFile, Cache, Processor, Other];
        let labels: std::collections::HashSet<_> = kinds.iter().map(|k| k.label()).collect();
        assert_eq!(labels.len(), kinds.len());
    }
}
