//! Time units: seconds, cycles, frequency, and MTTF.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{SerrError, SECONDS_PER_DAY, SECONDS_PER_HOUR, SECONDS_PER_YEAR};

/// A duration in seconds, the canonical time unit of the workspace.
///
/// ```
/// use serr_types::Seconds;
/// let day = Seconds::from_hours(24.0);
/// assert_eq!(day.as_days(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Seconds(f64);

impl Seconds {
    /// A zero-length duration.
    pub const ZERO: Seconds = Seconds(0.0);

    /// Creates a duration of `secs` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or NaN.
    #[must_use]
    pub fn new(secs: f64) -> Self {
        assert!(secs >= 0.0 && !secs.is_nan(), "duration must be non-negative, got {secs}");
        Seconds(secs)
    }

    /// Fallible variant of [`Seconds::new`] for boundary inputs. Unlike
    /// `new` (which tolerates `+∞` for limit results such as the MTTF of an
    /// unfailable system), this rejects infinities too: a *configured*
    /// duration must be finite.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `secs` is NaN, infinite, or
    /// negative.
    pub fn try_new(secs: f64) -> Result<Self, SerrError> {
        SerrError::require_finite_non_negative("duration in seconds", secs).map(Seconds)
    }

    /// Creates a duration from hours.
    #[must_use]
    pub fn from_hours(hours: f64) -> Self {
        Seconds::new(hours * SECONDS_PER_HOUR)
    }

    /// Creates a duration from 24-hour days.
    #[must_use]
    pub fn from_days(days: f64) -> Self {
        Seconds::new(days * SECONDS_PER_DAY)
    }

    /// Creates a duration from 365-day years.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Seconds::new(years * SECONDS_PER_YEAR)
    }

    /// The raw number of seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// This duration expressed in hours.
    #[must_use]
    pub fn as_hours(self) -> f64 {
        self.0 / SECONDS_PER_HOUR
    }

    /// This duration expressed in days.
    #[must_use]
    pub fn as_days(self) -> f64 {
        self.0 / SECONDS_PER_DAY
    }

    /// This duration expressed in years.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.0 / SECONDS_PER_YEAR
    }

    /// Number of whole-and-fractional processor cycles this duration spans at
    /// frequency `f`.
    #[must_use]
    pub fn to_cycles(self, f: Frequency) -> f64 {
        self.0 * f.hz()
    }
}

impl Add for Seconds {
    type Output = Seconds;
    fn add(self, rhs: Seconds) -> Seconds {
        Seconds(self.0 + rhs.0)
    }
}

impl AddAssign for Seconds {
    fn add_assign(&mut self, rhs: Seconds) {
        self.0 += rhs.0;
    }
}

impl Sub for Seconds {
    type Output = Seconds;
    fn sub(self, rhs: Seconds) -> Seconds {
        Seconds::new(self.0 - rhs.0)
    }
}

impl Mul<f64> for Seconds {
    type Output = Seconds;
    fn mul(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 * rhs)
    }
}

impl Div<f64> for Seconds {
    type Output = Seconds;
    fn div(self, rhs: f64) -> Seconds {
        Seconds::new(self.0 / rhs)
    }
}

impl fmt::Display for Seconds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= SECONDS_PER_YEAR {
            write!(f, "{:.4} years", self.as_years())
        } else if self.0 >= SECONDS_PER_DAY {
            write!(f, "{:.4} days", self.as_days())
        } else {
            write!(f, "{:.4} s", self.0)
        }
    }
}

/// A count of processor cycles.
///
/// Cycle counts are the granularity at which masking traces are recorded: for
/// a given cycle, a raw error is either masked or not (paper Section 3).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// The raw count.
    #[must_use]
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Duration of this many cycles at frequency `f`.
    #[must_use]
    pub fn to_seconds(self, f: Frequency) -> Seconds {
        Seconds::new(self.0 as f64 / f.hz())
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.checked_sub(rhs.0).expect("cycle subtraction underflow"))
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

/// A clock frequency in hertz.
///
/// ```
/// use serr_types::{Cycles, Frequency};
/// let f = Frequency::ghz(2.0); // the paper's base processor
/// assert_eq!(Cycles::new(2_000_000_000).to_seconds(f).as_secs(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

impl Frequency {
    /// Creates a frequency of `hz` hertz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not strictly positive and finite.
    #[must_use]
    pub fn new(hz: f64) -> Self {
        assert!(hz > 0.0 && hz.is_finite(), "frequency must be positive and finite, got {hz}");
        Frequency(hz)
    }

    /// Fallible variant of [`Frequency::new`] for boundary inputs.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `hz` is NaN, infinite, zero,
    /// or negative.
    pub fn try_new(hz: f64) -> Result<Self, SerrError> {
        SerrError::require_finite_positive("frequency in Hz", hz).map(Frequency)
    }

    /// Creates a frequency of `g` gigahertz.
    #[must_use]
    pub fn ghz(g: f64) -> Self {
        Frequency::new(g * 1.0e9)
    }

    /// The frequency in hertz.
    #[must_use]
    pub fn hz(self) -> f64 {
        self.0
    }

    /// The paper's base processor frequency, 2.0 GHz (Table 1).
    #[must_use]
    pub fn base() -> Self {
        Frequency::new(crate::BASE_FREQUENCY_HZ)
    }
}

impl Default for Frequency {
    fn default() -> Self {
        Frequency::base()
    }
}

impl fmt::Display for Frequency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GHz", self.0 / 1.0e9)
    }
}

/// Mean time to failure.
///
/// A thin wrapper over [`Seconds`] that also supports the reciprocal
/// relationship with [`crate::FailureRate`] used by the SOFR model.
///
/// ```
/// use serr_types::Mttf;
/// let m = Mttf::from_years(10.0);
/// assert!((m.to_failure_rate().events_per_year() - 0.1).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Mttf(Seconds);

impl Mttf {
    /// Creates an MTTF from a duration.
    ///
    /// # Panics
    ///
    /// Panics if the duration is zero (an MTTF of zero would make the SOFR
    /// reciprocal undefined).
    #[must_use]
    pub fn new(t: Seconds) -> Self {
        assert!(t.as_secs() > 0.0, "MTTF must be strictly positive, got {t}");
        Mttf(t)
    }

    /// Creates an MTTF of `secs` seconds.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        Mttf::new(Seconds::new(secs))
    }

    /// Fallible variant of [`Mttf::from_secs`]: rejects NaN and non-positive
    /// durations with a typed error. Like [`Seconds::new`], `+∞` is accepted
    /// — an infinite MTTF is the honest answer for an unfailable system.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] if `secs` is NaN, zero, or
    /// negative.
    pub fn try_from_secs(secs: f64) -> Result<Self, SerrError> {
        if secs > 0.0 {
            Ok(Mttf(Seconds::new(secs)))
        } else {
            Err(SerrError::invalid_value("MTTF in seconds (must be positive)", secs))
        }
    }

    /// Creates an MTTF of `years` years.
    #[must_use]
    pub fn from_years(years: f64) -> Self {
        Mttf::new(Seconds::from_years(years))
    }

    /// The MTTF as a duration.
    #[must_use]
    pub fn as_seconds(self) -> Seconds {
        self.0
    }

    /// The MTTF in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0.as_secs()
    }

    /// The MTTF in years.
    #[must_use]
    pub fn as_years(self) -> f64 {
        self.0.as_years()
    }

    /// The failure rate `1/MTTF`, valid under the constant-rate assumption
    /// that the paper examines.
    #[must_use]
    pub fn to_failure_rate(self) -> crate::FailureRate {
        crate::FailureRate::per_second(1.0 / self.0.as_secs())
    }
}

impl fmt::Display for Mttf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MTTF {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversions_roundtrip() {
        let s = Seconds::from_days(7.0);
        assert!((s.as_hours() - 168.0).abs() < 1e-9);
        assert!((s.as_years() - 7.0 / 365.0).abs() < 1e-12);
    }

    #[test]
    fn seconds_arithmetic() {
        let a = Seconds::new(10.0);
        let b = Seconds::new(4.0);
        assert_eq!((a + b).as_secs(), 14.0);
        assert_eq!((a - b).as_secs(), 6.0);
        assert_eq!((a * 2.0).as_secs(), 20.0);
        assert_eq!((a / 2.0).as_secs(), 5.0);
        let mut c = a;
        c += b;
        assert_eq!(c.as_secs(), 14.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn seconds_rejects_negative() {
        let _ = Seconds::new(-1.0);
    }

    #[test]
    fn cycles_at_base_frequency() {
        let f = Frequency::base();
        let c = Cycles::new(2_000_000_000);
        assert_eq!(c.to_seconds(f).as_secs(), 1.0);
        assert_eq!(Seconds::new(1.0).to_cycles(f), 2.0e9);
    }

    #[test]
    fn cycles_arithmetic_and_ordering() {
        assert_eq!(Cycles::new(3) + Cycles::new(4), Cycles::new(7));
        assert_eq!(Cycles::new(4) - Cycles::new(3), Cycles::new(1));
        assert!(Cycles::new(3) < Cycles::new(4));
        let mut c = Cycles::new(1);
        c += Cycles::new(2);
        assert_eq!(c, Cycles::new(3));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn cycles_subtraction_underflow_panics() {
        let _ = Cycles::new(1) - Cycles::new(2);
    }

    #[test]
    fn mttf_reciprocal() {
        let m = Mttf::from_years(2.0);
        let r = m.to_failure_rate();
        assert!((r.events_per_year() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn try_constructors_reject_invalid_inputs() {
        for bad in [f64::NAN, f64::INFINITY, -1.0] {
            assert!(Seconds::try_new(bad).is_err(), "Seconds accepted {bad}");
            assert!(Frequency::try_new(bad).is_err(), "Frequency accepted {bad}");
        }
        assert!(Frequency::try_new(0.0).is_err());
        assert!(Mttf::try_from_secs(0.0).is_err());
        assert!(Mttf::try_from_secs(f64::NAN).is_err());
        assert!(Mttf::try_from_secs(-3.0).is_err());
        // Valid inputs round-trip to the panicking constructors' values.
        assert_eq!(Seconds::try_new(2.5).unwrap(), Seconds::new(2.5));
        assert_eq!(Frequency::try_new(2.0e9).unwrap(), Frequency::base());
        assert_eq!(Mttf::try_from_secs(10.0).unwrap(), Mttf::from_secs(10.0));
        // Infinite MTTF is a legal limit result.
        assert!(Mttf::try_from_secs(f64::INFINITY).is_ok());
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Seconds::new(1.5)), "1.5000 s");
        assert_eq!(format!("{}", Seconds::from_days(2.0)), "2.0000 days");
        assert_eq!(format!("{}", Frequency::base()), "2.000 GHz");
        assert_eq!(format!("{}", Cycles::new(5)), "5 cycles");
    }
}
