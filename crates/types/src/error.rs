//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the soft-error-analysis crates.
///
/// Most APIs in this workspace enforce their invariants statically or by
/// panicking on programmer error per the validation guidelines; `SerrError`
/// covers the genuinely runtime-fallible operations (parsing, configuration
/// validation, non-converging numerics).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SerrError {
    /// A configuration value was inconsistent or out of range.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A trace was malformed (empty, zero period, vulnerability out of range).
    InvalidTrace {
        /// What was wrong.
        reason: String,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// The routine that failed.
        what: String,
        /// Iterations or subdivisions consumed before giving up.
        after: usize,
    },
    /// A named workload or benchmark was not recognized.
    UnknownWorkload {
        /// The requested name.
        name: String,
    },
    /// One design point of a parallel sweep panicked. The sweep itself
    /// completes; this variant names the poisoned point and carries the
    /// panic payload so partial results stay usable.
    PointFailed {
        /// Input-order index of the failed design point.
        index: usize,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// A numeric boundary value was NaN, infinite, or out of its valid
    /// range. Produced by the `try_*` constructors so deep numeric code can
    /// assume finite, in-range inputs.
    InvalidValue {
        /// What the value was supposed to be.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// An estimation engine failed internally: a worker panicked, a sanity
    /// check on its output tripped, or a cross-engine consistency check
    /// rejected the result.
    EngineFault {
        /// Where the fault surfaced (e.g. `monte carlo worker`).
        site: String,
        /// What went wrong, rendered to a string.
        detail: String,
    },
    /// The wall-clock budget was exhausted before the engine completed its
    /// first unit of work, so not even a truncated estimate exists.
    DeadlineExhausted {
        /// The budget that was granted, in seconds.
        budget_s: f64,
        /// Wall-clock seconds actually spent before the engine gave up, so
        /// the caller can tell a zero budget from a badly blown one.
        elapsed_s: f64,
    },
    /// Another live process holds the advisory lock on a checkpoint journal
    /// with the same configuration fingerprint; concurrent writers would
    /// interleave and corrupt the journal.
    JournalLocked {
        /// The lock file that names the holder.
        path: String,
    },
    /// An I/O operation failed in a context where silently degrading is not
    /// an option.
    Io {
        /// The operation that failed (e.g. `open checkpoint journal`).
        site: String,
        /// The underlying error, rendered to a string.
        detail: String,
    },
    /// A binary store file is structurally damaged beyond prefix recovery:
    /// bad magic, a failed header checksum, or an undecodable record inside
    /// a checksum-valid page. Deterministic — retrying the open cannot help.
    StoreCorrupt {
        /// The file or logical store that was damaged.
        site: String,
        /// What the reader tripped over, rendered to a string.
        detail: String,
    },
    /// A binary store file carries a format version this build does not
    /// speak (stale file from an older build, or one from the future).
    /// Deterministic — retrying the open cannot help.
    StoreVersion {
        /// The file or logical store that was rejected.
        site: String,
        /// The version found in the file header.
        found: u32,
        /// The version this build writes and reads.
        expected: u32,
    },
}

impl SerrError {
    /// Convenience constructor for [`SerrError::InvalidConfig`].
    #[must_use]
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SerrError::InvalidConfig { reason: reason.into() }
    }

    /// Convenience constructor for [`SerrError::InvalidTrace`].
    #[must_use]
    pub fn invalid_trace(reason: impl Into<String>) -> Self {
        SerrError::InvalidTrace { reason: reason.into() }
    }

    /// Convenience constructor for [`SerrError::InvalidValue`].
    #[must_use]
    pub fn invalid_value(what: impl Into<String>, value: f64) -> Self {
        SerrError::InvalidValue { what: what.into(), value }
    }

    /// Checks that `value` is finite and non-negative, the common contract
    /// for rates and durations at system boundaries.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] naming `what` otherwise.
    pub fn require_finite_non_negative(what: &str, value: f64) -> Result<f64, SerrError> {
        if value.is_finite() && value >= 0.0 {
            Ok(value)
        } else {
            Err(SerrError::invalid_value(what, value))
        }
    }

    /// Convenience constructor for [`SerrError::EngineFault`].
    #[must_use]
    pub fn engine_fault(site: impl Into<String>, detail: impl Into<String>) -> Self {
        SerrError::EngineFault { site: site.into(), detail: detail.into() }
    }

    /// Convenience constructor for [`SerrError::Io`].
    #[must_use]
    pub fn io(site: impl Into<String>, detail: impl Into<String>) -> Self {
        SerrError::Io { site: site.into(), detail: detail.into() }
    }

    /// Convenience constructor for [`SerrError::StoreCorrupt`].
    #[must_use]
    pub fn store_corrupt(site: impl Into<String>, detail: impl Into<String>) -> Self {
        SerrError::StoreCorrupt { site: site.into(), detail: detail.into() }
    }

    /// True for errors that describe deterministic on-disk damage — wrong
    /// bytes, not a transient condition — so retry loops can fail fast
    /// instead of burning their backoff budget re-reading the same file.
    #[must_use]
    pub fn is_deterministic_corruption(&self) -> bool {
        matches!(self, SerrError::StoreCorrupt { .. } | SerrError::StoreVersion { .. })
    }

    /// Checks that `value` is finite and strictly positive.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidValue`] naming `what` otherwise.
    pub fn require_finite_positive(what: &str, value: f64) -> Result<f64, SerrError> {
        if value.is_finite() && value > 0.0 {
            Ok(value)
        } else {
            Err(SerrError::invalid_value(what, value))
        }
    }
}

impl fmt::Display for SerrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerrError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SerrError::InvalidTrace { reason } => write!(f, "invalid trace: {reason}"),
            SerrError::NoConvergence { what, after } => {
                write!(f, "{what} did not converge after {after} steps")
            }
            SerrError::UnknownWorkload { name } => write!(f, "unknown workload `{name}`"),
            SerrError::PointFailed { index, payload } => {
                write!(f, "design point {index} panicked: {payload}")
            }
            SerrError::InvalidValue { what, value } => {
                write!(f, "invalid value for {what}: {value}")
            }
            SerrError::EngineFault { site, detail } => {
                write!(f, "engine fault in {site}: {detail}")
            }
            SerrError::DeadlineExhausted { budget_s, elapsed_s } => {
                write!(
                    f,
                    "deadline of {budget_s} s exhausted before the first trial chunk \
                     ({elapsed_s} s elapsed)"
                )
            }
            SerrError::JournalLocked { path } => {
                write!(f, "checkpoint journal locked by another process: {path}")
            }
            SerrError::Io { site, detail } => write!(f, "i/o error during {site}: {detail}"),
            SerrError::StoreCorrupt { site, detail } => {
                write!(f, "corrupt store {site}: {detail}")
            }
            SerrError::StoreVersion { site, found, expected } => {
                write!(f, "store {site} has format version {found}, expected {expected}")
            }
        }
    }
}

impl Error for SerrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let e = SerrError::invalid_config("retirement rate is zero");
        assert_eq!(e.to_string(), "invalid configuration: retirement rate is zero");
        let e = SerrError::NoConvergence { what: "adaptive simpson".into(), after: 40 };
        assert_eq!(e.to_string(), "adaptive simpson did not converge after 40 steps");
    }

    #[test]
    fn new_variants_display_lowercase_without_punctuation() {
        let e = SerrError::PointFailed { index: 7, payload: "boom".into() };
        assert_eq!(e.to_string(), "design point 7 panicked: boom");
        let e = SerrError::invalid_value("raw error rate", f64::NAN);
        assert_eq!(e.to_string(), "invalid value for raw error rate: NaN");
        let e = SerrError::engine_fault("monte carlo worker", "worker panicked");
        assert_eq!(e.to_string(), "engine fault in monte carlo worker: worker panicked");
        let e = SerrError::DeadlineExhausted { budget_s: 0.5, elapsed_s: 0.75 };
        assert_eq!(
            e.to_string(),
            "deadline of 0.5 s exhausted before the first trial chunk (0.75 s elapsed)"
        );
        let e = SerrError::JournalLocked { path: "/tmp/j.lock".into() };
        assert_eq!(e.to_string(), "checkpoint journal locked by another process: /tmp/j.lock");
        let e = SerrError::io("open checkpoint journal", "permission denied");
        assert_eq!(e.to_string(), "i/o error during open checkpoint journal: permission denied");
        let e = SerrError::store_corrupt("/tmp/j.store", "header checksum mismatch");
        assert_eq!(e.to_string(), "corrupt store /tmp/j.store: header checksum mismatch");
        let e = SerrError::StoreVersion { site: "/tmp/j.store".into(), found: 9, expected: 1 };
        assert_eq!(e.to_string(), "store /tmp/j.store has format version 9, expected 1");
    }

    #[test]
    fn corruption_errors_are_classified_deterministic() {
        assert!(SerrError::store_corrupt("f", "bad").is_deterministic_corruption());
        let v = SerrError::StoreVersion { site: "f".into(), found: 2, expected: 1 };
        assert!(v.is_deterministic_corruption());
        assert!(!SerrError::io("open", "eintr").is_deterministic_corruption());
        assert!(!SerrError::JournalLocked { path: "l".into() }.is_deterministic_corruption());
    }

    #[test]
    fn finite_guards_reject_nan_inf_and_sign() {
        assert!(SerrError::require_finite_non_negative("x", 0.0).is_ok());
        assert!(SerrError::require_finite_non_negative("x", 3.5).is_ok());
        assert!(SerrError::require_finite_non_negative("x", -1.0).is_err());
        assert!(SerrError::require_finite_non_negative("x", f64::NAN).is_err());
        assert!(SerrError::require_finite_non_negative("x", f64::INFINITY).is_err());
        assert!(SerrError::require_finite_positive("x", 1e-300).is_ok());
        assert!(SerrError::require_finite_positive("x", 0.0).is_err());
        assert!(SerrError::require_finite_positive("x", f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SerrError>();
    }
}
