//! The workspace-wide error type.

use std::error::Error;
use std::fmt;

/// Errors produced by the soft-error-analysis crates.
///
/// Most APIs in this workspace enforce their invariants statically or by
/// panicking on programmer error per the validation guidelines; `SerrError`
/// covers the genuinely runtime-fallible operations (parsing, configuration
/// validation, non-converging numerics).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SerrError {
    /// A configuration value was inconsistent or out of range.
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A trace was malformed (empty, zero period, vulnerability out of range).
    InvalidTrace {
        /// What was wrong.
        reason: String,
    },
    /// An iterative numerical routine failed to converge.
    NoConvergence {
        /// The routine that failed.
        what: String,
        /// Iterations or subdivisions consumed before giving up.
        after: usize,
    },
    /// A named workload or benchmark was not recognized.
    UnknownWorkload {
        /// The requested name.
        name: String,
    },
}

impl SerrError {
    /// Convenience constructor for [`SerrError::InvalidConfig`].
    #[must_use]
    pub fn invalid_config(reason: impl Into<String>) -> Self {
        SerrError::InvalidConfig { reason: reason.into() }
    }

    /// Convenience constructor for [`SerrError::InvalidTrace`].
    #[must_use]
    pub fn invalid_trace(reason: impl Into<String>) -> Self {
        SerrError::InvalidTrace { reason: reason.into() }
    }
}

impl fmt::Display for SerrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SerrError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            SerrError::InvalidTrace { reason } => write!(f, "invalid trace: {reason}"),
            SerrError::NoConvergence { what, after } => {
                write!(f, "{what} did not converge after {after} steps")
            }
            SerrError::UnknownWorkload { name } => write!(f, "unknown workload `{name}`"),
        }
    }
}

impl Error for SerrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let e = SerrError::invalid_config("retirement rate is zero");
        assert_eq!(e.to_string(), "invalid configuration: retirement rate is zero");
        let e = SerrError::NoConvergence { what: "adaptive simpson".into(), after: 40 };
        assert_eq!(e.to_string(), "adaptive simpson did not converge after 40 steps");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SerrError>();
    }
}
