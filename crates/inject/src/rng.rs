//! SplitMix64 hashing used to derive every injection parameter.
//!
//! All fault-plan queries are pure functions of `(plan seed, salt, inputs)`
//! mixed through SplitMix64, so a campaign replays bit-identically from its
//! seed on any thread count — no shared RNG state, no ordering sensitivity.

/// One SplitMix64 scramble round: a bijective avalanche over `u64`.
#[must_use]
pub fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hashes a sequence of words into one well-mixed value by folding each part
/// through [`splitmix`].
#[must_use]
pub fn mix(parts: &[u64]) -> u64 {
    let mut h = 0x2545_F491_4F6C_DD1D_u64;
    for &p in parts {
        h = splitmix(h ^ splitmix(p));
    }
    h
}

/// Maps a hash to a uniform `f64` in `[0, 1)` using the top 53 bits.
#[must_use]
pub fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_avalanches() {
        assert_eq!(splitmix(42), splitmix(42));
        // Flipping one input bit flips roughly half the output bits.
        let d = (splitmix(42) ^ splitmix(43)).count_ones();
        assert!((16..=48).contains(&d), "weak avalanche: {d} bits");
    }

    #[test]
    fn mix_is_order_sensitive() {
        assert_ne!(mix(&[1, 2]), mix(&[2, 1]));
        assert_ne!(mix(&[0]), mix(&[0, 0]));
    }

    #[test]
    fn unit_stays_in_half_open_interval() {
        for x in [0u64, 1, u64::MAX, 0xDEAD_BEEF] {
            let u = unit(splitmix(x));
            assert!((0.0..1.0).contains(&u));
        }
    }
}
