//! Deterministic seeded fault injection for the soft-error-analysis stack.
//!
//! The paper's thesis is that silent assumptions make reliability estimates
//! silently wrong; this crate lets the stack hold itself to that standard.
//! A [`FaultPlan`] is a tiny, serializable spec — one seed plus one
//! [`FaultKind`] — from which every injection decision (which chunk panics,
//! which bit flips, where a journal is corrupted) is derived as a pure
//! SplitMix64 hash. The same plan therefore reproduces the identical fault
//! sequence on any thread count, which is what makes chaos campaigns
//! replayable and their outcome tags comparable across runs.
//!
//! This crate only *decides* faults; it never performs them. The hooks that
//! consult a plan live next to the code they sabotage: `serr-mc` asks
//! [`FaultPlan::chunk_panics`] and [`FaultPlan::deadline_cut_chunk`] inside
//! its worker loop, `serr-core::checkpoint` asks [`FaultPlan::io_fault_site`],
//! and the guard layer in `serr-core` applies [`FaultPlan::trace_fault`] /
//! [`FaultPlan::rate_poison_factor`] before estimation. Keeping the decision
//! pure and the application local means production paths pay one `Option`
//! check and no global state exists to leak between tests.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod rng;

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::rng::{mix, unit};

/// Number of chunk slots the chunk-level injectors target. Victim indices
/// are drawn from `0..CHUNK_VICTIM_SLOTS`, so plans whose victim lands past
/// the end of a short run simply never fire — which is how a retry with a
/// fresh seed can heal an injected panic.
pub const CHUNK_VICTIM_SLOTS: u64 = 4;

// Domain-separation salts: each query hashes its own salt so the same seed
// yields independent decisions per injector.
const SALT_PANIC: u64 = 0x01;
const SALT_DEADLINE: u64 = 0x02;
const SALT_TRACE: u64 = 0x03;
const SALT_RATE: u64 = 0x04;
const SALT_IO: u64 = 0x05;
const SALT_FILE: u64 = 0x06;
const SALT_SERVE: u64 = 0x07;
const SALT_STORE: u64 = 0x08;
const SALT_TRANSFORM: u64 = 0x09;

/// The injector families a [`FaultPlan`] can select.
///
/// One plan injects exactly one kind of fault; campaigns cycle through all
/// kinds so coverage is uniform and attribution is unambiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Flip one high mantissa/exponent bit of a `CompiledTrace` segment
    /// value. Must be caught by the trace structural verifier.
    TraceValueFlip,
    /// Add a large perturbation to one entry of the compiled prefix-sum
    /// table. The event-loop sampler never reads the prefix sums, so under
    /// it only the verifier can catch this; the default inversion sampler
    /// inverts the prefix table on *every trial*, so the corruption must
    /// be caught by the verifier (or, failing that, the guard's event-loop
    /// oracle vote) before it poisons the estimate.
    TracePrefixPerturb,
    /// Scale the dominant segment value and recompute every derived field
    /// consistently. Passes structural checks by construction; only the
    /// cross-engine consistency check can catch it.
    TraceConsistentCorrupt,
    /// Corrupt the compiled form of a *protection-transformed* trace (the
    /// output of the ECC/scrub/delay pipeline). The fault itself is one of
    /// the three trace faults above, plan-chosen; the point is that the
    /// transform algebra's output must be defended by the same verifier and
    /// cross-engine votes as any raw workload trace — its many-segment
    /// scrub staircases and fractional ECC values buy no exemption.
    TraceTransform,
    /// Panic inside one Monte Carlo chunk worker.
    ChunkPanic,
    /// Exhaust the Monte Carlo deadline artificially after a plan-chosen
    /// number of chunks (possibly zero).
    DeadlineExhaust,
    /// Multiply the raw error rate seen by one reference estimator, making
    /// independent references disagree.
    RatePoison,
    /// Simulate an I/O failure opening or writing a checkpoint journal.
    CheckpointIo,
    /// Corrupt or truncate a checkpoint journal file on disk between runs.
    JournalCorrupt,
    /// Hold the advisory journal lock so a concurrent sweep must refuse.
    JournalLock,
    /// Corrupt or truncate a trace-cache file on disk.
    CacheCorrupt,
    /// Tear the final append of a `serr-store` container: truncate the file
    /// mid-page, as a crash between `write` and `fsync` would. Recovery
    /// must drop the torn tail and resume from the last valid page.
    StoreTornTail,
    /// Flip one bit inside a store page body. The page CRC must catch it
    /// and recovery must degrade to the valid prefix before that page.
    StoreBitFlip,
    /// Flip one bit inside the store's fixed header. The header CRC (or
    /// magic check) must reject the whole file with a typed error.
    StoreHeaderCorrupt,
    /// Rewrite the store's format version to a foreign value with a valid
    /// CRC — a file from a different release. Readers must refuse it with
    /// a typed version error, never guess at its layout.
    StoreStaleVersion,
    /// Panic inside a service estimation worker mid-request; the worker
    /// thread dies and the supervisor must restart it.
    ServeWorkerPanic,
    /// Stall a service worker for a plan-chosen number of milliseconds
    /// before it touches its request, modeling a slow or wedged worker.
    ServeWorkerStall,
    /// Deliver a malformed or oversized request frame to the service.
    ServeFrameCorrupt,
    /// Drop the client socket mid-response, after the estimate computed.
    ServeSocketDrop,
}

impl FaultKind {
    /// Every injector kind, in a fixed order campaigns cycle through.
    pub const ALL: [FaultKind; 19] = [
        FaultKind::TraceValueFlip,
        FaultKind::TracePrefixPerturb,
        FaultKind::TraceConsistentCorrupt,
        FaultKind::TraceTransform,
        FaultKind::ChunkPanic,
        FaultKind::DeadlineExhaust,
        FaultKind::RatePoison,
        FaultKind::CheckpointIo,
        FaultKind::JournalCorrupt,
        FaultKind::JournalLock,
        FaultKind::CacheCorrupt,
        FaultKind::StoreTornTail,
        FaultKind::StoreBitFlip,
        FaultKind::StoreHeaderCorrupt,
        FaultKind::StoreStaleVersion,
        FaultKind::ServeWorkerPanic,
        FaultKind::ServeWorkerStall,
        FaultKind::ServeFrameCorrupt,
        FaultKind::ServeSocketDrop,
    ];

    /// The estimator- and disk-level kinds `serr_core`'s chaos campaigns
    /// exercise. The serve-layer kinds below are injected by the `serr-serve`
    /// request soak instead: they need a running service to mean anything.
    pub const CORE: [FaultKind; 15] = [
        FaultKind::TraceValueFlip,
        FaultKind::TracePrefixPerturb,
        FaultKind::TraceConsistentCorrupt,
        FaultKind::TraceTransform,
        FaultKind::ChunkPanic,
        FaultKind::DeadlineExhaust,
        FaultKind::RatePoison,
        FaultKind::CheckpointIo,
        FaultKind::JournalCorrupt,
        FaultKind::JournalLock,
        FaultKind::CacheCorrupt,
        FaultKind::StoreTornTail,
        FaultKind::StoreBitFlip,
        FaultKind::StoreHeaderCorrupt,
        FaultKind::StoreStaleVersion,
    ];

    /// The service-layer kinds, in the order the serve soak cycles through.
    pub const SERVE: [FaultKind; 4] = [
        FaultKind::ServeWorkerPanic,
        FaultKind::ServeWorkerStall,
        FaultKind::ServeFrameCorrupt,
        FaultKind::ServeSocketDrop,
    ];

    /// True for the service-layer kinds (injected per request by
    /// `serr-serve`, not per chunk/file by the estimator campaigns).
    #[must_use]
    pub fn is_serve(self) -> bool {
        FaultKind::SERVE.contains(&self)
    }

    /// Stable kebab-case label used in CLI output and JSONL rows.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TraceValueFlip => "trace-value-flip",
            FaultKind::TracePrefixPerturb => "trace-prefix-perturb",
            FaultKind::TraceConsistentCorrupt => "trace-consistent-corrupt",
            FaultKind::TraceTransform => "trace-transform",
            FaultKind::ChunkPanic => "chunk-panic",
            FaultKind::DeadlineExhaust => "deadline-exhaust",
            FaultKind::RatePoison => "rate-poison",
            FaultKind::CheckpointIo => "checkpoint-io",
            FaultKind::JournalCorrupt => "journal-corrupt",
            FaultKind::JournalLock => "journal-lock",
            FaultKind::CacheCorrupt => "cache-corrupt",
            FaultKind::StoreTornTail => "store-torn-tail",
            FaultKind::StoreBitFlip => "store-bit-flip",
            FaultKind::StoreHeaderCorrupt => "store-header-corrupt",
            FaultKind::StoreStaleVersion => "store-stale-version",
            FaultKind::ServeWorkerPanic => "serve-worker-panic",
            FaultKind::ServeWorkerStall => "serve-worker-stall",
            FaultKind::ServeFrameCorrupt => "serve-frame-corrupt",
            FaultKind::ServeSocketDrop => "serve-socket-drop",
        }
    }

    /// Parses a [`FaultKind::label`] back into the kind.
    #[must_use]
    pub fn parse(s: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.label() == s)
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A trace-level fault to apply to a `CompiledTrace`, fully parameterized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceFault {
    /// XOR bit `bit` into the IEEE-754 representation of the dominant
    /// segment's value. Bits 30..=62 guarantee a relative change far above
    /// the verifier's 1e-9 tolerance without touching the sign bit.
    ValueBitFlip {
        /// Which bit of the `f64` bit pattern to flip (30..=62).
        bit: u32,
    },
    /// Add `delta_frac` of the trace's total vulnerability mass to prefix
    /// entry `selector % len`.
    PrefixPerturb {
        /// Chooses the poisoned prefix entry.
        selector: u64,
        /// Perturbation as a fraction of total mass (0.05..0.5).
        delta_frac: f64,
    },
    /// Multiply the dominant segment's value by `factor` and recompute all
    /// derived fields so the trace stays self-consistent.
    ConsistentScale {
        /// Scale factor (0.25..0.5) — far enough from 1 that the corrupted
        /// estimate must exceed any reasonable cross-engine tolerance.
        factor: f64,
    },
}

/// Which checkpoint I/O operation a [`FaultKind::CheckpointIo`] plan fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoSite {
    /// Opening the journal fails; the sweep must run journal-less.
    Open,
    /// Every per-row record write fails; the sweep must still finish.
    Record,
}

/// A deterministic corruption of an on-disk file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileCorruption {
    /// Byte offset the corruption targets (always `< len` for `len > 0`).
    pub offset: usize,
    /// Nonzero mask XORed into the byte at `offset` (flip style).
    pub xor_mask: u8,
    /// If true, truncate the file at `offset` instead of flipping a byte.
    pub truncate: bool,
}

impl FileCorruption {
    /// Applies the corruption to an in-memory copy of the file.
    pub fn apply(&self, data: &mut Vec<u8>) {
        if self.truncate {
            data.truncate(self.offset);
        } else if let Some(b) = data.get_mut(self.offset) {
            *b ^= self.xor_mask;
        }
    }
}

/// A deterministic fault against a `serr-store` container file, fully
/// parameterized (see [`FaultPlan::store_fault`]). The applier owns the
/// byte-level mechanics; this type only carries the decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFault {
    /// Truncate the file `drop_bytes` short of its end — a torn final
    /// append. Always leaves the fixed header intact (`drop_bytes` never
    /// exceeds the body length), because a decapitated file is
    /// [`StoreFault::HeaderCorrupt`]'s job.
    TornTail {
        /// How many trailing bytes the tear removes (≥ 1).
        drop_bytes: usize,
    },
    /// XOR `xor_mask` into the byte at `offset`, which always lands in the
    /// page body (at or past the header length given to the query).
    BitFlip {
        /// Absolute byte offset of the flip.
        offset: usize,
        /// Nonzero single-bit mask.
        xor_mask: u8,
    },
    /// XOR `xor_mask` into a byte inside the fixed header
    /// (`offset < header_len`).
    HeaderCorrupt {
        /// Byte offset within the header.
        offset: usize,
        /// Nonzero single-bit mask.
        xor_mask: u8,
    },
    /// Rewrite the container's format version to `current + bump` (with a
    /// refreshed header CRC, so only the version check can object).
    StaleVersion {
        /// Nonzero amount to add to the current format version.
        bump: u32,
    },
}

/// A service-layer fault to inject while handling one request, fully
/// parameterized (see [`FaultPlan::serve_fault`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeFault {
    /// Panic inside the estimation worker before it computes the request;
    /// the worker thread dies and the supervisor must restart it while the
    /// request still reaches a typed terminal state.
    WorkerPanic,
    /// Sleep `stall_ms` milliseconds before touching the request (5..30 —
    /// long enough to back up a bounded queue, short enough for soaks).
    WorkerStall {
        /// The injected stall, in milliseconds.
        stall_ms: u64,
    },
    /// Mangle the request frame before it is sent: either garbage bytes
    /// (`oversized == false`) or a frame longer than the protocol's limit.
    FrameCorrupt {
        /// If true, inflate the frame past the size limit instead of
        /// corrupting its bytes.
        oversized: bool,
    },
    /// Drop the client connection mid-response, after the estimate
    /// computed — the server-side ledger must still record the terminal
    /// state exactly once.
    SocketDrop,
}

/// A replayable fault-injection campaign spec: one seed, one injector kind.
///
/// Every query below is a pure function of the plan (plus explicit inputs),
/// so a plan can be freely copied across threads and serialized into
/// configs; there is no hidden injection state anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed every injection parameter is derived from.
    pub seed: u64,
    /// The single injector family this plan exercises.
    pub kind: FaultKind,
}

impl FaultPlan {
    /// Creates a plan injecting faults of `kind` derived from `seed`.
    #[must_use]
    pub fn new(seed: u64, kind: FaultKind) -> Self {
        FaultPlan { seed, kind }
    }

    fn h(&self, salt: u64) -> u64 {
        mix(&[self.seed, salt])
    }

    /// True when the Monte Carlo worker processing `chunk` under engine seed
    /// `run_seed` must panic. The victim chunk depends on `run_seed`, so a
    /// guarded retry with a fresh seed has a real chance of healing —
    /// exercising the `Retried` path, not just `Degraded`.
    #[must_use]
    pub fn chunk_panics(&self, run_seed: u64, chunk: u64) -> bool {
        self.kind == FaultKind::ChunkPanic
            && chunk == mix(&[self.seed, SALT_PANIC, run_seed]) % CHUNK_VICTIM_SLOTS
    }

    /// For [`FaultKind::DeadlineExhaust`] plans, the chunk index at which the
    /// deadline is considered exhausted: `Some(0)` means before any work (the
    /// engine must return the typed deadline error), `Some(k > 0)` means the
    /// run is truncated to the chunks claimed before slot `k`.
    #[must_use]
    pub fn deadline_cut_chunk(&self) -> Option<u64> {
        (self.kind == FaultKind::DeadlineExhaust)
            .then(|| self.h(SALT_DEADLINE) % CHUNK_VICTIM_SLOTS)
    }

    /// The trace-level fault this plan applies, if it is a trace plan.
    /// [`FaultKind::TraceTransform`] plans draw one of the three trace
    /// faults (salted independently, so a transform campaign and a plain
    /// trace campaign on the same seed differ), to be applied to the
    /// compiled form of a protection-transformed trace.
    #[must_use]
    pub fn trace_fault(&self) -> Option<TraceFault> {
        let h = self.h(SALT_TRACE);
        let fault = match self.kind {
            FaultKind::TraceValueFlip => TraceFault::ValueBitFlip { bit: 30 + (h % 33) as u32 },
            FaultKind::TracePrefixPerturb => TraceFault::PrefixPerturb {
                selector: mix(&[h, SALT_TRACE]),
                delta_frac: 0.05 + 0.45 * unit(h),
            },
            FaultKind::TraceConsistentCorrupt => {
                TraceFault::ConsistentScale { factor: 0.25 + 0.25 * unit(h) }
            }
            FaultKind::TraceTransform => {
                let t = self.h(SALT_TRANSFORM);
                match t % 3 {
                    0 => TraceFault::ValueBitFlip { bit: 30 + (t % 33) as u32 },
                    1 => TraceFault::PrefixPerturb {
                        selector: mix(&[t, SALT_TRANSFORM]),
                        delta_frac: 0.05 + 0.45 * unit(t),
                    },
                    _ => TraceFault::ConsistentScale { factor: 0.25 + 0.25 * unit(t) },
                }
            }
            _ => return None,
        };
        if let TraceFault::ValueBitFlip { bit } = fault {
            debug_assert!((30..=62).contains(&bit), "bit flip outside detectable range: {bit}");
        }
        Some(fault)
    }

    /// For [`FaultKind::RatePoison`] plans, the factor (1.5..3.0) by which
    /// one reference estimator's raw error rate is silently multiplied.
    #[must_use]
    pub fn rate_poison_factor(&self) -> Option<f64> {
        (self.kind == FaultKind::RatePoison).then(|| {
            let f = 1.5 + 1.5 * unit(self.h(SALT_RATE));
            debug_assert!((1.5..3.0).contains(&f), "rate poison factor out of range: {f}");
            f
        })
    }

    /// For [`FaultKind::CheckpointIo`] plans, which journal operation fails.
    #[must_use]
    pub fn io_fault_site(&self) -> Option<IoSite> {
        (self.kind == FaultKind::CheckpointIo).then(|| {
            if self.h(SALT_IO) & 1 == 0 {
                IoSite::Open
            } else {
                IoSite::Record
            }
        })
    }

    /// For the serve-layer kinds, the fault to inject while handling
    /// request number `request` (the service's admission counter), or
    /// `None` when this request is spared. Roughly one request in four is
    /// a victim, so a soak sees healthy and faulted requests interleaved;
    /// the victim set is a pure function of `(seed, kind, request)` and so
    /// identical at any worker count.
    #[must_use]
    pub fn serve_fault(&self, request: u64) -> Option<ServeFault> {
        if !self.kind.is_serve() {
            return None;
        }
        let h = mix(&[self.seed, SALT_SERVE, request]);
        if !h.is_multiple_of(4) {
            return None;
        }
        let detail = mix(&[h, SALT_SERVE]);
        Some(match self.kind {
            FaultKind::ServeWorkerPanic => ServeFault::WorkerPanic,
            FaultKind::ServeWorkerStall => ServeFault::WorkerStall { stall_ms: 5 + detail % 25 },
            FaultKind::ServeFrameCorrupt => ServeFault::FrameCorrupt { oversized: detail & 1 == 0 },
            FaultKind::ServeSocketDrop => ServeFault::SocketDrop,
            _ => unreachable!("is_serve() gated above"),
        })
    }

    /// For the on-disk corruption kinds, the deterministic corruption to
    /// apply to a file of `len` bytes. Returns `None` for other kinds or for
    /// empty files.
    #[must_use]
    pub fn file_corruption(&self, len: usize) -> Option<FileCorruption> {
        if !matches!(self.kind, FaultKind::JournalCorrupt | FaultKind::CacheCorrupt) || len == 0 {
            return None;
        }
        let h = self.h(SALT_FILE);
        let offset = (mix(&[h, SALT_FILE]) % len as u64) as usize;
        let c = FileCorruption {
            offset,
            xor_mask: 1 + (h % 255) as u8,
            truncate: h.rotate_right(17).is_multiple_of(4),
        };
        debug_assert!(c.offset < len, "corruption offset past end: {} >= {len}", c.offset);
        debug_assert!(c.xor_mask != 0, "xor mask must actually change the byte");
        Some(c)
    }

    /// For the `Store*` kinds, the deterministic store fault to apply to a
    /// container file of `file_len` bytes whose fixed header occupies the
    /// first `header_len`. Returns `None` for other kinds. Offsets are
    /// placed so each kind hits its own layer: tears and bit flips stay in
    /// the page body, header corruption stays in the header.
    #[must_use]
    pub fn store_fault(&self, file_len: usize, header_len: usize) -> Option<StoreFault> {
        let h = self.h(SALT_STORE);
        let body = file_len.saturating_sub(header_len).max(1);
        let at = (mix(&[h, SALT_STORE]) % body as u64) as usize;
        let mask = 1u8 << (h % 8);
        let fault = match self.kind {
            FaultKind::StoreTornTail => StoreFault::TornTail { drop_bytes: 1 + at },
            FaultKind::StoreBitFlip => {
                StoreFault::BitFlip { offset: header_len + at, xor_mask: mask }
            }
            FaultKind::StoreHeaderCorrupt => StoreFault::HeaderCorrupt {
                offset: (h % header_len.max(1) as u64) as usize,
                xor_mask: mask,
            },
            FaultKind::StoreStaleVersion => StoreFault::StaleVersion { bump: 1 + (h % 64) as u32 },
            _ => return None,
        };
        if let StoreFault::TornTail { drop_bytes } = fault {
            debug_assert!(drop_bytes <= body, "tear must not reach into the header");
        }
        Some(fault)
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (seed {:#018x})", self.kind, self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn queries_fire_only_for_their_own_kind() {
        for kind in FaultKind::ALL {
            let p = FaultPlan::new(7, kind);
            assert_eq!(p.deadline_cut_chunk().is_some(), kind == FaultKind::DeadlineExhaust);
            assert_eq!(p.rate_poison_factor().is_some(), kind == FaultKind::RatePoison);
            assert_eq!(p.io_fault_site().is_some(), kind == FaultKind::CheckpointIo);
            assert_eq!(
                p.trace_fault().is_some(),
                matches!(
                    kind,
                    FaultKind::TraceValueFlip
                        | FaultKind::TracePrefixPerturb
                        | FaultKind::TraceConsistentCorrupt
                        | FaultKind::TraceTransform
                )
            );
            assert_eq!(
                p.file_corruption(100).is_some(),
                matches!(kind, FaultKind::JournalCorrupt | FaultKind::CacheCorrupt)
            );
            assert_eq!(
                p.store_fault(500, 24).is_some(),
                matches!(
                    kind,
                    FaultKind::StoreTornTail
                        | FaultKind::StoreBitFlip
                        | FaultKind::StoreHeaderCorrupt
                        | FaultKind::StoreStaleVersion
                )
            );
            if kind != FaultKind::ChunkPanic {
                assert!(!(0..64).any(|c| p.chunk_panics(1, c)));
            }
            assert_eq!((0..64).any(|r| p.serve_fault(r).is_some()), kind.is_serve());
        }
    }

    #[test]
    fn core_and_serve_partition_the_kinds() {
        assert_eq!(FaultKind::CORE.len() + FaultKind::SERVE.len(), FaultKind::ALL.len());
        for kind in FaultKind::ALL {
            assert_eq!(
                FaultKind::CORE.contains(&kind),
                !FaultKind::SERVE.contains(&kind),
                "{kind} must be in exactly one family"
            );
            assert_eq!(kind.is_serve(), FaultKind::SERVE.contains(&kind));
        }
    }

    #[test]
    fn serve_faults_spare_most_requests_and_match_their_kind() {
        for kind in FaultKind::SERVE {
            let p = FaultPlan::new(0x5E4E, kind);
            let victims: Vec<u64> = (0..400).filter(|&r| p.serve_fault(r).is_some()).collect();
            // Roughly one in four; generous bounds keep this seed-robust.
            assert!(
                (40..=200).contains(&victims.len()),
                "{kind}: {} victims out of 400",
                victims.len()
            );
            for &r in &victims {
                let fault = p.serve_fault(r).expect("victim");
                assert_eq!(p.serve_fault(r), Some(fault), "pure query");
                match (kind, fault) {
                    (FaultKind::ServeWorkerPanic, ServeFault::WorkerPanic)
                    | (FaultKind::ServeFrameCorrupt, ServeFault::FrameCorrupt { .. })
                    | (FaultKind::ServeSocketDrop, ServeFault::SocketDrop) => {}
                    (FaultKind::ServeWorkerStall, ServeFault::WorkerStall { stall_ms }) => {
                        assert!((5..30).contains(&stall_ms), "stall out of range: {stall_ms}");
                    }
                    (k, f) => panic!("kind {k} produced mismatched fault {f:?}"),
                }
            }
        }
    }

    #[test]
    fn labels_round_trip_and_are_unique() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::parse(kind.label()), Some(kind));
        }
        assert!(FaultKind::parse("no-such-injector").is_none());
        let mut labels: Vec<_> = FaultKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FaultKind::ALL.len());
    }

    #[test]
    fn panic_victim_depends_on_run_seed_so_retries_can_heal() {
        let p = FaultPlan::new(0xABCD, FaultKind::ChunkPanic);
        let victim = |rs: u64| (0..CHUNK_VICTIM_SLOTS).find(|&c| p.chunk_panics(rs, c));
        // Every run seed has exactly one victim slot...
        for rs in 0..64 {
            assert!(victim(rs).is_some());
        }
        // ...and different run seeds hit different slots.
        let distinct: std::collections::HashSet<_> = (0..64).filter_map(victim).collect();
        assert!(distinct.len() > 1, "victim slot never moved across 64 run seeds");
    }

    proptest! {
        #[test]
        fn all_parameters_are_deterministic_and_in_range(seed in any::<u64>(), len in 1usize..4096) {
            for kind in FaultKind::ALL {
                let p = FaultPlan::new(seed, kind);
                prop_assert_eq!(p.trace_fault(), p.trace_fault());
                match p.trace_fault() {
                    Some(TraceFault::ValueBitFlip { bit }) => prop_assert!((30..=62).contains(&bit)),
                    Some(TraceFault::PrefixPerturb { delta_frac, .. }) =>
                        prop_assert!((0.05..0.5).contains(&delta_frac)),
                    Some(TraceFault::ConsistentScale { factor }) =>
                        prop_assert!((0.25..0.5).contains(&factor)),
                    None => {}
                }
                if let Some(f) = p.rate_poison_factor() {
                    prop_assert!((1.5..3.0).contains(&f));
                }
                if let Some(k) = p.deadline_cut_chunk() {
                    prop_assert!(k < CHUNK_VICTIM_SLOTS);
                }
                if let Some(c) = p.file_corruption(len) {
                    prop_assert!(c.offset < len);
                    prop_assert!(c.xor_mask != 0);
                    prop_assert_eq!(p.file_corruption(len), Some(c));
                }
                let header_len = 24usize;
                if let Some(f) = p.store_fault(len.max(header_len + 1), header_len) {
                    prop_assert_eq!(p.store_fault(len.max(header_len + 1), header_len), Some(f));
                    let body = len.max(header_len + 1) - header_len;
                    match f {
                        StoreFault::TornTail { drop_bytes } => {
                            prop_assert!(drop_bytes >= 1 && drop_bytes <= body);
                        }
                        StoreFault::BitFlip { offset, xor_mask } => {
                            prop_assert!(offset >= header_len);
                            prop_assert!(offset < len.max(header_len + 1));
                            prop_assert!(xor_mask.count_ones() == 1);
                        }
                        StoreFault::HeaderCorrupt { offset, xor_mask } => {
                            prop_assert!(offset < header_len);
                            prop_assert!(xor_mask.count_ones() == 1);
                        }
                        StoreFault::StaleVersion { bump } => {
                            prop_assert!(bump >= 1);
                        }
                    }
                }
                for r in 0..16u64 {
                    prop_assert_eq!(p.serve_fault(r), p.serve_fault(r));
                    if let Some(ServeFault::WorkerStall { stall_ms }) = p.serve_fault(r) {
                        prop_assert!((5..30).contains(&stall_ms));
                    }
                }
            }
        }

        #[test]
        fn file_corruption_always_changes_the_bytes(seed in any::<u64>(), len in 1usize..256) {
            let p = FaultPlan::new(seed, FaultKind::JournalCorrupt);
            let original: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut data = original.clone();
            let c = p.file_corruption(len).expect("journal plans always corrupt");
            c.apply(&mut data);
            // Truncation at offset 0 empties the file; a byte flip always
            // changes exactly one byte. Either way the content differs
            // unless truncation cut zero bytes (offset == len, impossible).
            prop_assert_ne!(data, original);
        }
    }
}
