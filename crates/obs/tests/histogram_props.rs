//! Property tests for the metrics layer's aggregation laws.
//!
//! Thread-count invariance of metrics rests on merge being commutative
//! and associative: workers may fold partial histograms in any grouping,
//! and the result must not depend on it. Bucket counts must agree
//! *exactly*; Kahan-compensated totals may differ by rounding on the
//! order of one ulp per merge, so they get an epsilon.

use proptest::prelude::*;
use serr_obs::Log2Histogram;

fn hist(values: &[f64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.observe(v);
    }
    h
}

fn merged(a: &Log2Histogram, b: &Log2Histogram) -> Log2Histogram {
    let mut out = *a;
    out.merge(b);
    out
}

fn sums_close(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= 1e-9 * scale
}

/// Observation values spanning many decades, including subnormal-ish and
/// huge magnitudes plus the absorbing bucket-0 cases.
fn value() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => (-200.0f64..200.0).prop_map(|e| (e / 10.0).exp2()),
        1 => Just(0.0),
        1 => (-100.0f64..0.0),
    ]
}

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(value(), 0..64)
}

proptest! {
    #[test]
    fn merge_is_commutative(xs in values(), ys in values()) {
        let (a, b) = (hist(&xs), hist(&ys));
        let ab = merged(&a, &b);
        let ba = merged(&b, &a);
        prop_assert_eq!(ab.bucket_counts(), ba.bucket_counts());
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!(sums_close(ab.sum(), ba.sum()),
            "sums diverged: {} vs {}", ab.sum(), ba.sum());
    }

    #[test]
    fn merge_is_associative(xs in values(), ys in values(), zs in values()) {
        let (a, b, c) = (hist(&xs), hist(&ys), hist(&zs));
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        prop_assert_eq!(left.bucket_counts(), right.bucket_counts());
        prop_assert_eq!(left.count(), right.count());
        prop_assert!(sums_close(left.sum(), right.sum()),
            "sums diverged: {} vs {}", left.sum(), right.sum());
    }

    #[test]
    fn merge_of_splits_equals_whole(xs in values(), split in 0usize..64) {
        // Chunked accumulation (what per-worker partials do) must agree
        // with a single accumulator on counts.
        let cut = split.min(xs.len());
        let whole = hist(&xs);
        let pieces = merged(&hist(&xs[..cut]), &hist(&xs[cut..]));
        prop_assert_eq!(whole.bucket_counts(), pieces.bucket_counts());
        prop_assert!(sums_close(whole.sum(), pieces.sum()));
    }

    #[test]
    fn identity_merge_is_noop(xs in values()) {
        let a = hist(&xs);
        let with_empty = merged(&a, &Log2Histogram::new());
        prop_assert_eq!(a.bucket_counts(), with_empty.bucket_counts());
        prop_assert_eq!(a.count(), with_empty.count());
        prop_assert!(sums_close(a.sum(), with_empty.sum()));
    }

    #[test]
    fn bucket_index_is_total(v in prop::num::f64::ANY) {
        // Every f64, including NaN and infinities, maps to a valid bucket.
        let i = Log2Histogram::bucket_index(v);
        prop_assert!(i < serr_obs::BUCKETS);
    }
}
