//! Observability substrate for the soft-error analysis stack.
//!
//! `serr-obs` is std-only (plus `serr-numeric` for compensated sums) and
//! provides the two halves of "show your work":
//!
//! * **Events** — typed records with a deterministic sequence key, fanned
//!   out through an [`EventSink`] (JSONL file, stderr, in-memory capture,
//!   or nothing). Replaces ad-hoc `eprintln!` diagnostics.
//! * **Metrics** — monotonic counters, gauges, and fixed-bucket log2
//!   histograms with Kahan-summed totals, aggregated commutatively so
//!   values do not depend on worker interleaving.
//!
//! The [`Obs`] handle bundles both and is cheap to clone (two `Arc`s). A
//! process-wide default ([`global()`]) renders warnings to stderr so
//! library code always has somewhere to report; opting into `--metrics`
//! swaps in a JSONL sink.
//!
//! # Determinism contract
//!
//! Event sequence keys (`(kind, seq)`) must be derived from the work
//! itself — chunk index, sweep point index, fallback step — never from
//! wall clock or thread identity. Emitters fold worker output in a
//! deterministic order before emitting, so the event stream for a given
//! computation is identical at `SERR_THREADS=1` and `SERR_THREADS=8`.
//! Field *values* carrying wall-clock measurements (stage timings,
//! samples/sec) naturally vary run to run; the keys do not.

mod event;
mod metrics;

pub use event::{Event, EventSink, JsonlSink, Level, MemorySink, NullSink, StderrSink, Value};
pub use metrics::{Log2Histogram, Metrics, MetricsSnapshot, BUCKETS};

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A cloneable handle bundling an event sink and a metrics registry.
#[derive(Debug, Clone)]
pub struct Obs {
    sink: Arc<dyn EventSink>,
    metrics: Arc<Metrics>,
    stage_seq: Arc<AtomicU64>,
}

impl Obs {
    /// Wraps an arbitrary sink with a fresh metrics registry.
    #[must_use]
    pub fn with_sink(sink: Arc<dyn EventSink>) -> Self {
        Obs { sink, metrics: Arc::new(Metrics::new()), stage_seq: Arc::new(AtomicU64::new(0)) }
    }

    /// Discards events; metrics still accumulate.
    #[must_use]
    pub fn disabled() -> Self {
        Obs::with_sink(Arc::new(NullSink))
    }

    /// Renders events at or above `min_level` to stderr.
    #[must_use]
    pub fn stderr(min_level: Level) -> Self {
        Obs::with_sink(Arc::new(StderrSink::new(min_level)))
    }

    /// Captures events in memory; returns the sink for inspection.
    #[must_use]
    pub fn memory() -> (Self, Arc<MemorySink>) {
        let sink = Arc::new(MemorySink::new());
        (Obs::with_sink(sink.clone()), sink)
    }

    /// Streams events as JSON lines to the file at `path` (truncating it).
    ///
    /// # Errors
    /// Propagates the underlying file-creation failure.
    pub fn jsonl(path: &Path) -> std::io::Result<Self> {
        Ok(Obs::with_sink(Arc::new(JsonlSink::create(path)?)))
    }

    /// Sends one event to the sink.
    pub fn emit(&self, event: Event) {
        self.sink.emit(&event);
    }

    /// The metrics registry attached to this handle.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The underlying sink (for sharing with another handle).
    #[must_use]
    pub fn sink(&self) -> Arc<dyn EventSink> {
        self.sink.clone()
    }

    /// Flushes the sink.
    pub fn flush(&self) {
        self.sink.flush();
    }

    /// Runs `f`, records its wall time into the `stage.<name>_ms`
    /// histogram, and emits a `stage` event. Stage events get sequential
    /// keys in program order; call this from deterministic (single-thread)
    /// control flow only, so the key sequence is thread-count invariant.
    pub fn time_stage<R>(&self, name: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let out = f();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        self.record_stage(name, ms);
        out
    }

    /// Records an externally measured stage duration (milliseconds).
    pub fn record_stage(&self, name: &'static str, ms: f64) {
        self.metrics.observe(&format!("stage.{name}_ms"), ms);
        let seq = self.stage_seq.fetch_add(1, Ordering::Relaxed);
        self.emit(Event::new("stage", seq).with("name", name).with("ms", ms));
    }

    /// Emits the current metrics snapshot as one event-per-metric JSONL
    /// block through the sink, then flushes. Used at the end of a CLI run
    /// so `--metrics out.jsonl` files are self-contained.
    pub fn emit_metrics_snapshot(&self) {
        let snap = self.metrics.snapshot();
        for (i, (name, value)) in snap.counters.iter().enumerate() {
            self.emit(
                Event::new("metric.counter", i as u64)
                    .with("name", name.as_str())
                    .with("value", *value),
            );
        }
        for (i, (name, value)) in snap.gauges.iter().enumerate() {
            self.emit(
                Event::new("metric.gauge", i as u64)
                    .with("name", name.as_str())
                    .with("value", *value),
            );
        }
        for (i, (name, hist)) in snap.histograms.iter().enumerate() {
            self.emit(
                Event::new("metric.histogram", i as u64)
                    .with("name", name.as_str())
                    .with("count", hist.count())
                    .with("sum", hist.sum())
                    .with("mean", hist.mean().unwrap_or(f64::NAN))
                    .with("buckets", hist.sparse_buckets()),
            );
        }
        self.flush();
    }
}

static GLOBAL: OnceLock<Obs> = OnceLock::new();

/// The process-wide default handle. Until [`try_set_global`] installs
/// something else, warnings render to stderr and info events are dropped,
/// matching the old `eprintln!` behaviour of library crates.
pub fn global() -> &'static Obs {
    GLOBAL.get_or_init(|| Obs::stderr(Level::Warn))
}

/// Installs `obs` as the process-wide default. Returns `false` if a
/// default was already installed (first caller wins).
pub fn try_set_global(obs: Obs) -> bool {
    GLOBAL.set(obs).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_stage_records_histogram_and_event() {
        let (obs, sink) = Obs::memory();
        let out = obs.time_stage("renewal_quadrature", || 21 * 2);
        assert_eq!(out, 42);
        let snap = obs.metrics().snapshot();
        assert_eq!(snap.histograms["stage.renewal_quadrature_ms"].count(), 1);
        let events = sink.events_of("stage");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].fields[0], ("name", Value::Str("renewal_quadrature".to_owned())));
    }

    #[test]
    fn stage_sequence_keys_are_program_ordered() {
        let (obs, sink) = Obs::memory();
        obs.time_stage("a", || ());
        obs.time_stage("b", || ());
        let seqs: Vec<u64> = sink.events_of("stage").iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
    }

    #[test]
    fn clones_share_sink_and_metrics() {
        let (obs, sink) = Obs::memory();
        let clone = obs.clone();
        clone.emit(Event::new("x", 0));
        clone.metrics().add("n", 1);
        assert_eq!(sink.events().len(), 1);
        assert_eq!(obs.metrics().snapshot().counters["n"], 1);
    }

    #[test]
    fn metrics_snapshot_events_cover_all_families() {
        let (obs, sink) = Obs::memory();
        obs.metrics().add("c", 1);
        obs.metrics().set_gauge("g", 2.0);
        obs.metrics().observe("h", 3.0);
        obs.emit_metrics_snapshot();
        assert_eq!(sink.events_of("metric.counter").len(), 1);
        assert_eq!(sink.events_of("metric.gauge").len(), 1);
        assert_eq!(sink.events_of("metric.histogram").len(), 1);
    }

    #[test]
    fn global_default_exists() {
        // First touch initialises the stderr default; both calls must hand
        // back the same registry.
        let a = global().metrics() as *const Metrics;
        let b = global().metrics() as *const Metrics;
        assert_eq!(a, b);
    }
}
