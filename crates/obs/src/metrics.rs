//! Counters, gauges, and fixed-bucket log2 histograms.
//!
//! All aggregation is commutative: counters add, gauges keep the last
//! written value under a total order on writes (callers write gauges from
//! one thread), and histograms merge bucket-wise with Kahan-compensated
//! totals. That keeps metric values independent of worker interleaving,
//! matching the engine's thread-count-invariance contract.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;

use serr_numeric::KahanSum;

use crate::event::{push_json_f64, push_json_str};

/// Number of fixed buckets. Bucket `i` covers values in
/// `[2^(i - ZERO_BUCKET), 2^(i - ZERO_BUCKET + 1))`; values that are not
/// finite and positive land in bucket 0.
pub const BUCKETS: usize = 64;
const ZERO_BUCKET: i32 = 32;

/// A fixed-bucket base-2 histogram with a Kahan-compensated running total.
///
/// Bucket boundaries are powers of two from `2^-32` to `2^31`, which spans
/// sub-nanosecond stage timings (in ms) up to multi-week MTTFs (in hours)
/// without configuration. Merging is bucket-wise and therefore exactly
/// associative and commutative on counts; totals are compensated, so merge
/// order perturbs them by at most one ulp-scale rounding per merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Log2Histogram {
    counts: [u64; BUCKETS],
    total: KahanSum,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram { counts: [0; BUCKETS], total: KahanSum::new() }
    }
}

impl Log2Histogram {
    #[must_use]
    pub fn new() -> Self {
        Log2Histogram::default()
    }

    /// The fixed bucket index for `value`.
    #[must_use]
    pub fn bucket_index(value: f64) -> usize {
        if value.is_finite() && value > 0.0 {
            let exp = value.log2().floor() as i32 + ZERO_BUCKET;
            exp.clamp(0, BUCKETS as i32 - 1) as usize
        } else {
            0
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: f64) {
        self.counts[Self::bucket_index(value)] += 1;
        if value.is_finite() {
            self.total.add(value);
        }
    }

    /// Merges another histogram into this one. Counts merge exactly;
    /// totals merge with Kahan compensation.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(other.counts.iter()) {
            *mine += theirs;
        }
        self.total.merge(&other.total);
    }

    /// Total number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Compensated sum of all finite observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.total.sum()
    }

    /// Mean of the finite observations, or `None` if empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        self.total.mean()
    }

    /// The raw bucket counts.
    #[must_use]
    pub fn bucket_counts(&self) -> &[u64; BUCKETS] {
        &self.counts
    }

    /// Lower edge of bucket `i` (bucket 0 also collects non-positive and
    /// non-finite observations).
    #[must_use]
    pub fn bucket_lower_edge(i: usize) -> f64 {
        (2.0f64).powi(i as i32 - ZERO_BUCKET)
    }

    /// Non-empty buckets as `"index:count"` pairs joined by commas — a
    /// compact, order-stable rendering for JSONL metric rows.
    #[must_use]
    pub fn sparse_buckets(&self) -> String {
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 {
                if !out.is_empty() {
                    out.push(',');
                }
                let _ = write!(out, "{i}:{c}");
            }
        }
        out
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, f64>,
    pub histograms: BTreeMap<String, Log2Histogram>,
}

impl MetricsSnapshot {
    /// Renders the snapshot as JSONL rows (one metric per line), sorted by
    /// metric name within each family so output is deterministic.
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str("{\"metric\":");
            push_json_str(&mut out, name);
            let _ = writeln!(out, ",\"type\":\"counter\",\"value\":{value}}}");
        }
        for (name, value) in &self.gauges {
            out.push_str("{\"metric\":");
            push_json_str(&mut out, name);
            out.push_str(",\"type\":\"gauge\",\"value\":");
            push_json_f64(&mut out, *value);
            out.push_str("}\n");
        }
        for (name, hist) in &self.histograms {
            out.push_str("{\"metric\":");
            push_json_str(&mut out, name);
            let _ = write!(out, ",\"type\":\"histogram\",\"count\":{}", hist.count());
            out.push_str(",\"sum\":");
            push_json_f64(&mut out, hist.sum());
            out.push_str(",\"mean\":");
            push_json_f64(&mut out, hist.mean().unwrap_or(f64::NAN));
            out.push_str(",\"buckets\":");
            push_json_str(&mut out, &hist.sparse_buckets());
            out.push_str("}\n");
        }
        out
    }
}

#[derive(Debug, Default)]
struct Registry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Log2Histogram>,
}

/// A thread-safe metrics registry. One short mutex hold per update; the
/// intended usage pattern is coarse (per chunk / per stage), not per
/// sample, so contention is negligible.
#[derive(Debug, Default)]
pub struct Metrics {
    inner: Mutex<Registry>,
}

impl Metrics {
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    fn registry(&self) -> std::sync::MutexGuard<'_, Registry> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Adds `delta` to the monotonic counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut reg = self.registry();
        *reg.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Sets the gauge `name` to `value` (last write wins).
    pub fn set_gauge(&self, name: &str, value: f64) {
        self.registry().gauges.insert(name.to_owned(), value);
    }

    /// Records one observation into the histogram `name`.
    pub fn observe(&self, name: &str, value: f64) {
        self.registry().histograms.entry(name.to_owned()).or_default().observe(value);
    }

    /// Merges a whole histogram into `name` (commutative bucket-wise add).
    pub fn merge_histogram(&self, name: &str, hist: &Log2Histogram) {
        self.registry().histograms.entry(name.to_owned()).or_default().merge(hist);
    }

    /// A copy of the current state of every metric.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let reg = self.registry();
        MetricsSnapshot {
            counters: reg.counters.clone(),
            gauges: reg.gauges.clone(),
            histograms: reg.histograms.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_mapping_covers_the_line() {
        assert_eq!(Log2Histogram::bucket_index(1.0), 32);
        assert_eq!(Log2Histogram::bucket_index(2.0), 33);
        assert_eq!(Log2Histogram::bucket_index(1.5), 32);
        assert_eq!(Log2Histogram::bucket_index(0.5), 31);
        // Out-of-range, non-positive, and non-finite inputs are absorbed,
        // never panicking.
        assert_eq!(Log2Histogram::bucket_index(0.0), 0);
        assert_eq!(Log2Histogram::bucket_index(-3.0), 0);
        assert_eq!(Log2Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Log2Histogram::bucket_index(1e300), BUCKETS - 1);
        assert_eq!(Log2Histogram::bucket_index(1e-300), 0);
    }

    #[test]
    fn histogram_counts_and_means() {
        let mut h = Log2Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 10.0);
        assert_eq!(h.mean(), Some(2.5));
        assert_eq!(h.bucket_counts()[32], 1); // 1.0
        assert_eq!(h.bucket_counts()[33], 2); // 2.0, 3.0
        assert_eq!(h.bucket_counts()[34], 1); // 4.0
        assert_eq!(h.sparse_buckets(), "32:1,33:2,34:1");
    }

    #[test]
    fn counters_and_gauges_round_trip() {
        let m = Metrics::new();
        m.add("mc.chunks", 3);
        m.add("mc.chunks", 4);
        m.set_gauge("mc.samples_per_sec", 123.5);
        m.observe("stage.mc_run_ms", 8.0);
        let snap = m.snapshot();
        assert_eq!(snap.counters["mc.chunks"], 7);
        assert_eq!(snap.gauges["mc.samples_per_sec"], 123.5);
        assert_eq!(snap.histograms["stage.mc_run_ms"].count(), 1);
        let jsonl = snap.to_jsonl();
        assert!(jsonl.contains("{\"metric\":\"mc.chunks\",\"type\":\"counter\",\"value\":7}"));
        assert!(jsonl.contains("\"type\":\"gauge\",\"value\":123.5"));
        assert!(jsonl.contains("\"type\":\"histogram\",\"count\":1"));
    }

    #[test]
    fn empty_histogram_serialises_mean_as_null() {
        let m = Metrics::new();
        m.merge_histogram("empty", &Log2Histogram::new());
        assert!(m.snapshot().to_jsonl().contains("\"mean\":null"));
    }
}
