//! Structured events and the sinks that receive them.
//!
//! An [`Event`] is a typed record — a static kind, a severity, a
//! *deterministic* sequence key, and a flat list of fields. The sequence
//! key is chosen by the emitter from the work being described (a chunk
//! index, a sweep point index, a fallback step number), never from wall
//! clock or thread identity, so the event stream for a given computation
//! is identical at any thread count.
//!
//! Sinks are deliberately boring: [`NullSink`] drops everything,
//! [`StderrSink`] renders a one-line human form, [`JsonlSink`] appends one
//! JSON object per line, and [`MemorySink`] captures events for tests.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// A field value. Floats that are not finite serialise as JSON `null`
/// rather than panicking, since events must never take a process down.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Str(String),
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Event severity. `Info` is progress/telemetry; `Warn` is something an
/// operator should see even without opting into metrics capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Info,
    Warn,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One structured event. `(kind, seq)` is the deterministic ordering key.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub kind: &'static str,
    pub level: Level,
    pub seq: u64,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// An informational event with the given deterministic sequence key.
    #[must_use]
    pub fn new(kind: &'static str, seq: u64) -> Self {
        Event { kind, level: Level::Info, seq, fields: Vec::new() }
    }

    /// A warning event with the given deterministic sequence key.
    #[must_use]
    pub fn warn(kind: &'static str, seq: u64) -> Self {
        Event { kind, level: Level::Warn, seq, fields: Vec::new() }
    }

    /// Attaches a field (builder style).
    #[must_use]
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// The deterministic ordering key: identical across thread counts for
    /// the same computation.
    #[must_use]
    pub fn sequence_key(&self) -> (&'static str, u64) {
        (self.kind, self.seq)
    }

    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"event\":");
        push_json_str(&mut out, self.kind);
        let _ = write!(out, ",\"seq\":{},\"level\":\"{}\"", self.seq, self.level.as_str());
        for (key, value) in &self.fields {
            out.push(',');
            push_json_str(&mut out, key);
            out.push(':');
            push_json_value(&mut out, value);
        }
        out.push('}');
        out
    }

    /// Renders a compact single-line human form for stderr.
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut out = format!("serr[{}#{}]", self.kind, self.seq);
        if self.level == Level::Warn {
            out.push_str(" WARN");
        }
        for (key, value) in &self.fields {
            match value {
                Value::U64(v) => {
                    let _ = write!(out, " {key}={v}");
                }
                Value::F64(v) => {
                    let _ = write!(out, " {key}={v}");
                }
                Value::Str(v) => {
                    let _ = write!(out, " {key}={v:?}");
                }
                Value::Bool(v) => {
                    let _ = write!(out, " {key}={v}");
                }
            }
        }
        out
    }
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` round-trips f64 exactly and always includes a decimal
        // point or exponent, keeping the value a float on re-parse.
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

fn push_json_value(out: &mut String, value: &Value) {
    match value {
        Value::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Value::F64(v) => push_json_f64(out, *v),
        Value::Str(v) => push_json_str(out, v),
        Value::Bool(v) => {
            let _ = write!(out, "{v}");
        }
    }
}

/// Receives events. Implementations must be cheap enough to call from a
/// fold loop (one short critical section per event at most) and must
/// never panic: observability cannot be allowed to take the run down.
pub trait EventSink: Send + Sync + std::fmt::Debug {
    fn emit(&self, event: &Event);
    /// Flushes any buffered output. Default: nothing to flush.
    fn flush(&self) {}
}

/// Drops every event.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Writes one human-readable line per event at or above `min_level`.
///
/// Uses an explicit `stderr()` handle rather than the `eprintln!` macro:
/// library crates in this workspace deny `clippy::print_stderr`, and the
/// sink is the single sanctioned escape hatch.
#[derive(Debug, Clone, Copy)]
pub struct StderrSink {
    min_level: Level,
}

impl StderrSink {
    #[must_use]
    pub fn new(min_level: Level) -> Self {
        StderrSink { min_level }
    }
}

impl EventSink for StderrSink {
    fn emit(&self, event: &Event) {
        if event.level >= self.min_level {
            let mut line = event.to_line();
            line.push('\n');
            // Best-effort: a broken stderr must not abort the computation.
            let _ = std::io::stderr().lock().write_all(line.as_bytes());
        }
    }
}

/// Appends one JSON object per line to a file, buffered behind a mutex.
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the JSONL file at `path`.
    ///
    /// # Errors
    /// Propagates the underlying `File::create` failure.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink { writer: Mutex::new(BufWriter::new(file)) })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut line = event.to_json();
        line.push('\n');
        let mut writer = self.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writer.write_all(line.as_bytes());
    }

    fn flush(&self) {
        let mut writer = self.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let _ = writer.flush();
    }
}

/// Captures events in memory, for tests and for `bench_smoke`.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    #[must_use]
    pub fn new() -> Self {
        MemorySink::default()
    }

    /// A snapshot of everything emitted so far, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Events of one kind, in emission order.
    #[must_use]
    pub fn events_of(&self, kind: &str) -> Vec<Event> {
        self.events().into_iter().filter(|e| e.kind == kind).collect()
    }
}

impl EventSink for MemorySink {
    fn emit(&self, event: &Event) {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_flat_and_ordered() {
        let e = Event::warn("checkpoint.warn", 3)
            .with("sweep", "fig5")
            .with("reason", "journal unavailable")
            .with("points", 7u64)
            .with("ratio", 0.5f64);
        assert_eq!(
            e.to_json(),
            "{\"event\":\"checkpoint.warn\",\"seq\":3,\"level\":\"warn\",\
             \"sweep\":\"fig5\",\"reason\":\"journal unavailable\",\
             \"points\":7,\"ratio\":0.5}"
        );
    }

    #[test]
    fn non_finite_floats_serialise_as_null() {
        let e = Event::new("x", 0).with("v", f64::NAN).with("w", f64::INFINITY);
        assert_eq!(
            e.to_json(),
            "{\"event\":\"x\",\"seq\":0,\"level\":\"info\",\"v\":null,\"w\":null}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let e = Event::new("x", 0).with("p", "a\"b\\c\nd");
        assert!(e.to_json().contains("\"p\":\"a\\\"b\\\\c\\nd\""));
    }

    #[test]
    fn memory_sink_preserves_order_and_filters_by_kind() {
        let sink = MemorySink::new();
        sink.emit(&Event::new("a", 0));
        sink.emit(&Event::new("b", 0));
        sink.emit(&Event::new("a", 1));
        assert_eq!(sink.events().len(), 3);
        let a: Vec<u64> = sink.events_of("a").iter().map(|e| e.seq).collect();
        assert_eq!(a, vec![0, 1]);
    }

    #[test]
    fn sequence_key_ignores_fields() {
        let a = Event::new("mc.chunk", 7).with("mean_s", 1.0);
        let b = Event::new("mc.chunk", 7).with("mean_s", 2.0);
        assert_eq!(a.sequence_key(), b.sequence_key());
    }
}
