//! Per-value error-probability bookkeeping (SoftArch's generation and
//! propagation rules).

use serde::{Deserialize, Serialize};

/// The probability that a value is erroneous.
///
/// SoftArch's two rules:
///
/// * **generation** — a value residing in or produced by a structure with
///   raw error rate λ for time `t` acquires error probability
///   `1 − e^{−λt}`, combined with whatever it already carried;
/// * **propagation** — a value computed from erroneous inputs is erroneous:
///   `p_out = 1 − ∏(1 − p_inᵢ)` (independence of the underlying raw
///   events, as in the paper's simple probability theory).
///
/// ```
/// use serr_softarch::ErrorProb;
/// let a = ErrorProb::new(0.1);
/// let b = ErrorProb::new(0.2);
/// let out = a.propagate(b);
/// assert!((out.value() - (1.0 - 0.9 * 0.8)).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct ErrorProb(f64);

impl ErrorProb {
    /// A certainly-correct value.
    pub const ZERO: ErrorProb = ErrorProb(0.0);

    /// Creates a probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
        ErrorProb(p)
    }

    /// The raw probability.
    #[must_use]
    pub fn value(self) -> f64 {
        self.0
    }

    /// Generation: exposure to a structure with rate `lambda_per_cycle` for
    /// `cycles` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_per_cycle` is negative.
    #[must_use]
    pub fn generate(self, lambda_per_cycle: f64, cycles: f64) -> Self {
        assert!(lambda_per_cycle >= 0.0 && cycles >= 0.0, "exposure must be non-negative");
        let fresh = -(-lambda_per_cycle * cycles).exp_m1();
        self.propagate(ErrorProb(fresh))
    }

    /// Propagation: combining with another (independent) possibly-erroneous
    /// value.
    #[must_use]
    pub fn propagate(self, other: ErrorProb) -> Self {
        // 1 - (1-a)(1-b) = a + b - ab, computed to preserve tiny values.
        ErrorProb((self.0 + other.0 - self.0 * other.0).clamp(0.0, 1.0))
    }

    /// Whether the value is certainly correct.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl std::fmt::Display for ErrorProb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3e}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn propagation_matches_inclusion_exclusion() {
        let p = ErrorProb::new(0.25).propagate(ErrorProb::new(0.5));
        assert!((p.value() - 0.625).abs() < 1e-15);
        assert_eq!(ErrorProb::ZERO.propagate(ErrorProb::ZERO), ErrorProb::ZERO);
        assert!(ErrorProb::ZERO.is_zero());
    }

    #[test]
    fn generation_accumulates_exposure() {
        // Two exposures of t each equal one exposure of 2t.
        let twice = ErrorProb::ZERO.generate(1e-6, 100.0).generate(1e-6, 100.0);
        let once = ErrorProb::ZERO.generate(1e-6, 200.0);
        assert!((twice.value() - once.value()).abs() < 1e-18);
    }

    #[test]
    fn tiny_probabilities_keep_precision() {
        let p = ErrorProb::ZERO.generate(1e-20, 1.0);
        assert!((p.value() - 1e-20).abs() < 1e-32);
    }

    proptest! {
        #[test]
        fn propagate_commutative_associative(
            a in 0.0f64..1.0, b in 0.0f64..1.0, c in 0.0f64..1.0,
        ) {
            let (a, b, c) = (ErrorProb::new(a), ErrorProb::new(b), ErrorProb::new(c));
            prop_assert!((a.propagate(b).value() - b.propagate(a).value()).abs() < 1e-15);
            let left = a.propagate(b).propagate(c).value();
            let right = a.propagate(b.propagate(c)).value();
            prop_assert!((left - right).abs() < 1e-12);
        }

        #[test]
        fn propagate_bounded_and_monotone(a in 0.0f64..1.0, b in 0.0f64..1.0) {
            let out = ErrorProb::new(a).propagate(ErrorProb::new(b)).value();
            prop_assert!(out >= a.max(b) - 1e-15);
            prop_assert!(out <= 1.0);
        }
    }
}
