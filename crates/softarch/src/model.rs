//! The SoftArch estimator front end.

use serr_sim::ProcessorMaskingTraces;
use serr_trace::VulnerabilityTrace;
use serr_types::{Frequency, Mttf, RawErrorRate, SerrError};

use crate::Block;

/// SoftArch-style MTTF estimation from masking traces and raw error rates.
///
/// Internally, per-cycle failure probabilities (`1 − e^{−λ·v(c)/f}`) are
/// folded into [`Block`]s span by span and the expected time to first
/// failure is read off the composed block — no uniformity (AVF) or
/// exponentiality (SOFR) assumption anywhere.
#[derive(Debug, Clone, Copy)]
pub struct SoftArch {
    frequency: Frequency,
}

impl SoftArch {
    /// Creates an estimator for a machine clocked at `frequency`.
    #[must_use]
    pub fn new(frequency: Frequency) -> Self {
        SoftArch { frequency }
    }

    /// The clock frequency.
    #[must_use]
    pub fn frequency(&self) -> Frequency {
        self.frequency
    }

    /// Folds one period of `trace` into a [`Block`] under raw error rate
    /// `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for a zero rate.
    ///
    pub fn block_for(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
    ) -> Result<Block, SerrError> {
        if rate.is_zero() {
            return Err(SerrError::invalid_config("raw error rate is zero; MTTF is infinite"));
        }
        // Tiled representations (the `combined` workload) compose in closed
        // form: fold each part's block and tile it.
        if let Some(parts) = trace.tiling() {
            let mut whole: Option<Block> = None;
            for (part, tiles) in parts {
                let b = self.block_for(&*part, rate)?.tile(tiles);
                whole = Some(match whole {
                    Some(w) => w.then(&b),
                    None => b,
                });
            }
            return whole.ok_or_else(|| SerrError::invalid_trace("empty tiling"));
        }
        let lambda_cycle = rate.per_second_value() / self.frequency.hz();
        let mut block: Option<Block> = None;
        let mut start = 0u64;
        for end in trace.breakpoints() {
            let v = trace.vulnerability_at(start);
            let seg = Block::constant(lambda_cycle * v, end - start);
            block = Some(match block {
                Some(b) => b.then(&seg),
                None => seg,
            });
            start = end;
        }
        block.ok_or_else(|| SerrError::invalid_trace("trace has no breakpoints"))
    }

    /// MTTF of a single component running `trace` forever.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidTrace`] for an AVF-0 trace and
    /// [`SerrError::InvalidConfig`] for a zero rate.
    pub fn component_mttf(
        &self,
        trace: &dyn VulnerabilityTrace,
        rate: RawErrorRate,
    ) -> Result<Mttf, SerrError> {
        if trace.is_never_vulnerable() {
            return Err(SerrError::invalid_trace(
                "trace has AVF = 0; the component can never fail",
            ));
        }
        let block = self.block_for(trace, rate)?;
        Ok(Mttf::from_secs(block.mttf_cycles() / self.frequency.hz()))
    }

    /// MTTF of a workload built by tiling each `(trace, tiles)` part in
    /// sequence and looping — the paper's `combined` workload, where each
    /// 12-hour half tiles one benchmark's masking trace tens of millions of
    /// times.
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] for empty parts, a zero tile
    /// count, or a zero rate; [`SerrError::InvalidTrace`] if nothing can
    /// ever fail.
    pub fn tiled_mttf(
        &self,
        parts: &[(&dyn VulnerabilityTrace, u64)],
        rate: RawErrorRate,
    ) -> Result<Mttf, SerrError> {
        if parts.is_empty() {
            return Err(SerrError::invalid_config("at least one part required"));
        }
        let mut whole: Option<Block> = None;
        for &(trace, tiles) in parts {
            if tiles == 0 {
                return Err(SerrError::invalid_config("tile count must be positive"));
            }
            let part = self.block_for(trace, rate)?.tile(tiles);
            whole = Some(match whole {
                Some(b) => b.then(&part),
                None => part,
            });
        }
        let whole = whole.expect("non-empty by check above");
        if whole.fail_prob() == 0.0 {
            return Err(SerrError::invalid_trace(
                "workload has AVF = 0; the component can never fail",
            ));
        }
        Ok(Mttf::from_secs(whole.mttf_cycles() / self.frequency.hz()))
    }

    /// Processor-level MTTF from a simulation's masking traces: the four
    /// studied components (integer, FP, decode, register file) contribute
    /// additive per-cycle failure intensities, exactly as in the paper's
    /// processor-level failure definition (Section 4.2).
    ///
    /// # Errors
    ///
    /// Returns [`SerrError::InvalidConfig`] if every rate is zero, plus the
    /// errors of [`SoftArch::component_mttf`].
    pub fn processor_mttf(
        &self,
        traces: &ProcessorMaskingTraces,
        int_rate: RawErrorRate,
        fp_rate: RawErrorRate,
        decode_rate: RawErrorRate,
        regfile_rate: RawErrorRate,
    ) -> Result<Mttf, SerrError> {
        let lambda = |r: RawErrorRate| r.per_second_value() / self.frequency.hz();
        let units: [(&dyn VulnerabilityTrace, f64); 4] = [
            (&traces.int_unit, lambda(int_rate)),
            (&traces.fp_unit, lambda(fp_rate)),
            (&traces.decode, lambda(decode_rate)),
            (&traces.regfile, lambda(regfile_rate)),
        ];
        let period = traces.int_unit.period_cycles();
        if units.iter().any(|(t, _)| t.period_cycles() != period) {
            return Err(SerrError::invalid_trace("unit traces must share one period"));
        }
        // Merge all units' breakpoints; within each span every unit's
        // vulnerability is constant and intensities add.
        let mut bps: Vec<u64> = units.iter().flat_map(|(t, _)| t.breakpoints()).collect();
        bps.sort_unstable();
        bps.dedup();
        let mut block: Option<Block> = None;
        let mut start = 0u64;
        for end in bps {
            let rho: f64 = units.iter().map(|(t, l)| l * t.vulnerability_at(start)).sum();
            let seg = Block::constant(rho, end - start);
            block = Some(match block {
                Some(b) => b.then(&seg),
                None => seg,
            });
            start = end;
        }
        let block = block.ok_or_else(|| SerrError::invalid_trace("empty traces"))?;
        if block.fail_prob() == 0.0 {
            return Err(SerrError::invalid_config("all components have zero failure intensity"));
        }
        Ok(Mttf::from_secs(block.mttf_cycles() / self.frequency.hz()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serr_trace::IntervalTrace;

    fn sa() -> SoftArch {
        SoftArch::new(Frequency::base())
    }

    #[test]
    fn agrees_with_renewal_across_regimes() {
        // The paper's Section 5.4 result in miniature: SoftArch matches the
        // first-principles MTTF everywhere, including where AVF fails.
        let freq = Frequency::base();
        let trace = IntervalTrace::busy_idle(600_000, 400_000).unwrap();
        for &per_year in &[1e-2, 1.0, 1e3, 1e6, 1e9] {
            let rate = RawErrorRate::per_year(per_year);
            let soft = sa().component_mttf(&trace, rate).unwrap();
            let renewal = serr_analytic::renewal::renewal_mttf(&trace, rate, freq).unwrap();
            let err = (soft.as_secs() - renewal.as_secs()).abs() / renewal.as_secs();
            assert!(err < 1e-6, "rate {per_year}/yr: err {err}");
        }
    }

    #[test]
    fn fractional_vulnerability_supported() {
        let trace =
            IntervalTrace::from_levels(&[0.5, 0.25, 0.0, 1.0, 0.125, 0.0, 0.0, 0.0]).unwrap();
        let rate = RawErrorRate::per_year(50.0);
        let soft = sa().component_mttf(&trace, rate).unwrap();
        let renewal =
            serr_analytic::renewal::renewal_mttf(&trace, rate, Frequency::base()).unwrap();
        let err = (soft.as_secs() - renewal.as_secs()).abs() / renewal.as_secs();
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn tiled_combined_workload_matches_concat_trace_renewal() {
        use std::sync::Arc;
        let freq = Frequency::base();
        let bench_a = IntervalTrace::busy_idle(700, 300).unwrap();
        let bench_b = IntervalTrace::busy_idle(100, 900).unwrap();
        // 5000 tiles each — small enough for the renewal reference to
        // enumerate, big enough to exercise the closed form.
        let concat = serr_trace::ConcatTrace::new(vec![
            (Arc::new(bench_a.clone()) as Arc<dyn VulnerabilityTrace>, 5000),
            (Arc::new(bench_b.clone()) as Arc<dyn VulnerabilityTrace>, 5000),
        ])
        .unwrap();
        let rate = RawErrorRate::per_year(2.0e5);
        let soft = sa().tiled_mttf(&[(&bench_a, 5000), (&bench_b, 5000)], rate).unwrap();
        let renewal = serr_analytic::renewal::renewal_mttf(&concat, rate, freq).unwrap();
        let err = (soft.as_secs() - renewal.as_secs()).abs() / renewal.as_secs();
        assert!(err < 1e-5, "err {err}");
    }

    #[test]
    fn processor_mttf_combines_unit_intensities() {
        // One busy unit and one half-busy unit with equal rates: the
        // processor must fail faster than either alone.
        let always = IntervalTrace::constant(1000, 1.0).unwrap();
        let half = IntervalTrace::busy_idle(500, 500).unwrap();
        let idle = IntervalTrace::constant(1000, 0.0).unwrap();
        let traces = ProcessorMaskingTraces {
            int_unit: always.clone(),
            fp_unit: half,
            decode: idle.clone(),
            regfile: idle,
        };
        let r = RawErrorRate::per_year(10.0);
        let proc = sa().processor_mttf(&traces, r, r, r, r).unwrap();
        let int_only = sa().component_mttf(&always, r).unwrap();
        assert!(proc.as_secs() < int_only.as_secs());
        // λL tiny: intensities average, MTTF ≈ 1/(λ_int + λ_fp·0.5).
        let want = 1.0 / (r.per_second_value() * 1.5);
        assert!((proc.as_secs() - want).abs() / want < 1e-6);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let live = IntervalTrace::constant(10, 1.0).unwrap();
        let dead = IntervalTrace::constant(10, 0.0).unwrap();
        assert!(sa().component_mttf(&live, RawErrorRate::ZERO).is_err());
        assert!(sa().component_mttf(&dead, RawErrorRate::per_year(1.0)).is_err());
        assert!(sa().tiled_mttf(&[], RawErrorRate::per_year(1.0)).is_err());
        assert!(sa().tiled_mttf(&[(&live, 0)], RawErrorRate::per_year(1.0)).is_err());
        assert!(sa().tiled_mttf(&[(&dead, 5)], RawErrorRate::per_year(1.0)).is_err());
    }
}
