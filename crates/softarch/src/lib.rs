//! A SoftArch-style first-principles MTTF estimator (paper Section 5.4,
//! after Li et al., "SoftArch: An Architecture-Level Tool for Modeling and
//! Analyzing Soft Errors", DSN 2005).
//!
//! SoftArch "keeps track of the probability of error in each instruction or
//! data bit that is generated or communicated by different processor
//! structures [...] and is able to determine the mean time to (first)
//! failure" **without** the AVF uniformity assumption or the SOFR
//! exponentiality assumption.
//!
//! This crate reimplements that approach in discrete time:
//!
//! * [`ErrorProb`] is the per-value error-probability bookkeeping —
//!   generation while a value resides in or passes through a structure,
//!   propagation when values combine.
//! * [`Block`] aggregates per-cycle failure probabilities into
//!   `(survival, expected-failure-time)` summaries that compose under
//!   concatenation and tiling — the algebra that lets a 24-hour `combined`
//!   workload (tens of millions of benchmark iterations) be evaluated
//!   exactly in microseconds.
//! * [`SoftArch`] turns masking traces and raw error rates into MTTFs.
//!
//! The estimator is an *independent implementation* from the renewal
//! solver in `serr-analytic` (discrete per-cycle probabilities vs.
//! continuous-time integration); the two agreeing to ~1e-6, and both
//! agreeing with Monte Carlo, is the cross-validation behind the paper's
//! "SoftArch does not exhibit the discrepancies" result.
//!
//! # Example
//!
//! ```
//! use serr_softarch::SoftArch;
//! use serr_trace::IntervalTrace;
//! use serr_types::{Frequency, RawErrorRate};
//!
//! let trace = IntervalTrace::busy_idle(1000, 1000).unwrap();
//! let sa = SoftArch::new(Frequency::base());
//! let mttf = sa.component_mttf(&trace, RawErrorRate::per_year(10.0)).unwrap();
//! // λL is tiny here, so the first-principles answer matches 1/(λ·AVF).
//! assert!((mttf.as_years() - 0.2).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod model;
mod prob;

pub use block::Block;
pub use model::SoftArch;
pub use prob::ErrorProb;
